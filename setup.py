"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` in offline environments
whose setuptools predates the built-in bdist_wheel (no ``wheel``
package available).  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
