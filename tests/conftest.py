"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import ScenarioEstimator
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.rib import RoutingTable
from repro.iplookup.synth import SyntheticTableConfig, generate_table
from repro.iplookup.trie import UnibitTrie


@pytest.fixture(scope="session")
def small_table() -> RoutingTable:
    """A hand-written table covering nesting, defaults and /32s."""
    return RoutingTable.from_strings(
        [
            ("0.0.0.0/0", 0),
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.1.0/24", 3),
            ("10.1.1.128/25", 4),
            ("10.1.1.129/32", 5),
            ("192.168.0.0/16", 6),
            ("192.168.100.0/24", 7),
            ("172.16.0.0/12", 8),
        ],
        name="small",
    )


@pytest.fixture(scope="session")
def small_trie(small_table) -> UnibitTrie:
    return UnibitTrie(small_table)


@pytest.fixture(scope="session")
def small_pushed(small_trie) -> UnibitTrie:
    return leaf_push(small_trie)


@pytest.fixture(scope="session")
def medium_config() -> SyntheticTableConfig:
    """A medium synthetic table config, fast enough for many tests."""
    return SyntheticTableConfig(n_prefixes=500, seed=42)


@pytest.fixture(scope="session")
def medium_table(medium_config) -> RoutingTable:
    return generate_table(medium_config)


@pytest.fixture(scope="session")
def estimator() -> ScenarioEstimator:
    return ScenarioEstimator()


@pytest.fixture(scope="session")
def random_addresses() -> np.ndarray:
    """A fixed batch of lookup addresses spanning the space."""
    rng = np.random.default_rng(2012)
    return rng.integers(0, 2**32, size=512, dtype=np.uint64).astype(np.uint32)
