"""Property tests: place-and-route invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import ReproError
from repro.fpga.placer import EngineNetlist, PlaceAndRoute
from repro.fpga.power_report import XPowerAnalyzer
from repro.fpga.speedgrade import SpeedGrade, grade_data

stage_arrays = st.lists(
    st.integers(min_value=0, max_value=200_000), min_size=1, max_size=32
)


def netlists_from(stage_lists) -> list[EngineNetlist]:
    return [
        EngineNetlist(label=f"e{i}", stage_memory_bits=np.array(stages, dtype=np.int64))
        for i, stages in enumerate(stage_lists)
    ]


@given(st.lists(stage_arrays, min_size=1, max_size=6), st.sampled_from(list(SpeedGrade)))
@settings(max_examples=60, deadline=None)
def test_placed_design_invariants(stage_lists, grade):
    engines = netlists_from(stage_lists)
    pnr = PlaceAndRoute(grade=grade)
    try:
        placed = pnr.place(engines, name="prop")
    except ReproError:
        assume(False)  # resource-exhausted inputs are out of scope here
        return
    # capacity: allocated BRAM covers every stage's bits
    for engine in placed.engines:
        for packing, bits in zip(
            engine.stage_packings, engine.netlist.stage_memory_bits
        ):
            assert packing.capacity_bits >= bits
    # fmax never exceeds the grade's base and is positive
    assert 0 < placed.fmax_mhz <= grade_data(grade).base_fmax_mhz
    # optimization factors stay in their envelopes
    assert 0.9 <= placed.logic_opt_factor <= 1.0
    assert 0.9 <= placed.static_opt_factor <= 1.0
    assert 0.9 <= placed.bram_opt_factor <= 1.0
    assert 0.98 <= placed.jitter_factor <= 1.02
    # total usage at least the sum of engine BRAM
    total_equiv = sum(e.bram18_equivalent for e in placed.engines)
    assert placed.total_usage.bram18_equivalent == total_equiv


@given(st.lists(stage_arrays, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_power_report_consistency(stage_lists):
    engines = netlists_from(stage_lists)
    try:
        placed = PlaceAndRoute().place(engines, name="prop-power")
    except ReproError:
        assume(False)
        return
    report = XPowerAnalyzer().report(placed, frequency_mhz=200.0)
    assert report.total_w == pytest.approx(report.static_w + report.dynamic_w)
    assert report.static_w > 0
    assert report.bram_w >= 0 and report.logic_w > 0
    # halving every activity halves dynamic power exactly
    half = XPowerAnalyzer().report(
        placed, frequency_mhz=200.0, engine_activities=np.full(len(engines), 0.5)
    )
    assert half.dynamic_w == pytest.approx(report.dynamic_w / 2)


@given(stage_arrays)
@settings(max_examples=40, deadline=None)
def test_placement_deterministic(stages):
    engines = [EngineNetlist(label="e", stage_memory_bits=np.array(stages))]
    try:
        a = PlaceAndRoute().place(engines, name="same")
        b = PlaceAndRoute().place(engines, name="same")
    except ReproError:
        assume(False)
        return
    assert a.fmax_mhz == b.fmax_mhz
    assert a.jitter_factor == b.jitter_factor
    assert a.used_area_fraction == b.used_area_fraction
