"""Property tests: BRAM packing and power quantization (hypothesis)."""

from hypothesis import given, strategies as st

from repro.fpga.bram import (
    BramKind,
    blocks_required,
    bram_dynamic_power_uw,
    pack_stage_memory,
)
from repro.fpga.speedgrade import SpeedGrade
from repro.units import BRAM18K_BITS, BRAM36K_BITS

bits = st.integers(min_value=0, max_value=30_000_000)
widths = st.integers(min_value=1, max_value=200)


@given(bits, widths)
def test_packing_capacity_always_covers_demand(b, w):
    p = pack_stage_memory(b, w)
    assert p.capacity_bits >= b
    assert p.waste_bits >= 0


@given(bits, widths)
def test_packing_never_wastes_a_whole_36k_block(b, w):
    """Minimality: removing any 36 Kb block (or demoting it) must break
    either capacity or the port-width floor."""
    p = pack_stage_memory(b, w)
    min_primitives = -(-w // 36)
    if p.blocks36 > 0:
        reduced_capacity = p.capacity_bits - BRAM36K_BITS + BRAM18K_BITS
        reduced_primitives = 2 * p.blocks36 + p.blocks18 - 1
        assert reduced_capacity < b or reduced_primitives < min_primitives


@given(bits)
def test_packing_matches_table3_quantization(b):
    """With the default 18-bit port, total capacity in 18 Kb units is
    exactly ⌈M/18K⌉ or its 36 Kb-rounded equivalent."""
    p = pack_stage_memory(b)
    needed = blocks_required(b, BramKind.B18)
    assert needed <= p.total_blocks18_equivalent <= needed + 1


@given(bits, st.integers(min_value=50, max_value=500))
def test_power_monotone_in_memory(b, f):
    """More memory never costs less power (paper: monotone in size)."""
    small = pack_stage_memory(b)
    large = pack_stage_memory(b + BRAM36K_BITS)

    def power(p):
        return bram_dynamic_power_uw(
            f, SpeedGrade.G2, BramKind.B36, p.blocks36
        ) + bram_dynamic_power_uw(f, SpeedGrade.G2, BramKind.B18, p.blocks18)

    assert power(large) > power(small) or b == 0 and power(small) >= 0


@given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=500))
def test_power_monotone_in_frequency(f1, f2):
    lo, hi = min(f1, f2), max(f1, f2)
    p_lo = bram_dynamic_power_uw(lo, SpeedGrade.G2, BramKind.B18)
    p_hi = bram_dynamic_power_uw(hi, SpeedGrade.G2, BramKind.B18)
    assert p_hi >= p_lo


@given(bits)
def test_low_power_grade_never_costs_more(b):
    p = pack_stage_memory(b)
    for kind, blocks in ((BramKind.B36, p.blocks36), (BramKind.B18, p.blocks18)):
        g2 = bram_dynamic_power_uw(200, SpeedGrade.G2, kind, blocks)
        g1l = bram_dynamic_power_uw(200, SpeedGrade.G1L, kind, blocks)
        assert g1l <= g2
