"""Property tests: live power telemetry must agree with the figure sweeps.

The :class:`~repro.obs.power.PowerTelemetrySampler` evaluates the same
placed design through the same XPA-like reporter as the fig5/fig8
sweeps — so on a *uniform* batch at full duty cycle its readings must
match the published analytical rows not approximately but to float
round-off.  These tests pin that agreement to a 1e-6 relative
tolerance across the paper grid (the acceptance criterion), plus the
headline K = 15 VS point explicitly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import evaluate_scenario, paper_table_config
from repro.core.config import ScenarioConfig
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.power import PowerTelemetrySampler
from repro.serve.service import LookupService
from repro.virt.schemes import Scheme

RTOL = 1e-6

#: small served tables — the live trace contributes only *activity*;
#: the modeled scenario inside the sampler is the paper's reference
SERVED_TABLE = SyntheticTableConfig(n_prefixes=120, seed=33)


def uniform_trace(scheme, k, *, per_vn=8):
    """Serve one uniform batch (per_vn lookups per VN) and return its trace."""
    tables = generate_virtual_tables(k, 0.5, SERVED_TABLE)
    service = LookupService(tables, scheme)
    rng = np.random.default_rng(k)
    addresses = rng.integers(0, 1 << 32, size=per_vn * k, dtype=np.uint64)
    vnids = np.repeat(np.arange(k, dtype=np.int64), per_vn)
    _, trace = service.serve(addresses.astype(np.uint32), vnids)
    return trace


def paper_row(scheme, k, grade, alpha=None):
    """The fig5/fig8 scenario row for one grid point (memoized upstream)."""
    return evaluate_scenario(
        ScenarioConfig(
            scheme=scheme, k=k, grade=grade, alpha=alpha, table=paper_table_config()
        )
    )


def sampler_for(scheme, k, grade, alpha=None):
    return PowerTelemetrySampler(scheme, k, grade=grade, alpha=alpha)


schemes_alphas = st.sampled_from(
    [(Scheme.NV, None), (Scheme.VS, None), (Scheme.VM, 0.8), (Scheme.VM, 0.2)]
)
ks = st.integers(min_value=1, max_value=15)
grades = st.sampled_from([SpeedGrade.G2, SpeedGrade.G1L])


@given(schemes_alphas, ks, grades)
@settings(max_examples=25, deadline=None)
def test_uniform_batch_matches_figure_rows(scheme_alpha, k, grade):
    """Fig. 5 (total W) and Fig. 8 (mW/Gbps) from live traffic, any grid point."""
    scheme, alpha = scheme_alpha
    if scheme is Scheme.VM and k == 1:
        alpha = None  # a single network has nothing to merge
    trace = uniform_trace(scheme, k)
    sample = sampler_for(scheme, k, grade, alpha).sample(trace, duty_cycle=1.0)
    row = paper_row(scheme, k, grade, alpha)
    assert sample.total_w == pytest.approx(row.experimental.total_w, rel=RTOL)
    assert sample.mw_per_gbps == pytest.approx(row.experimental_mw_per_gbps, rel=RTOL)
    assert sample.throughput_gbps == pytest.approx(row.throughput_gbps, rel=RTOL)


@given(schemes_alphas, ks)
@settings(max_examples=15, deadline=None)
def test_component_breakdown_matches_reporter(scheme_alpha, k):
    """Static/logic/signal/BRAM components agree with the sweep row."""
    scheme, alpha = scheme_alpha
    if scheme is Scheme.VM and k == 1:
        alpha = None
    trace = uniform_trace(scheme, k)
    sample = sampler_for(scheme, k, SpeedGrade.G2, alpha).sample(trace)
    row = paper_row(scheme, k, SpeedGrade.G2, alpha).experimental
    assert sample.static_w == pytest.approx(row.static_w, rel=RTOL)
    assert sample.logic_w == pytest.approx(row.logic_w, rel=RTOL)
    assert sample.signal_w == pytest.approx(row.signal_w, rel=RTOL)
    assert sample.bram_w == pytest.approx(row.bram_w, rel=RTOL)


@given(schemes_alphas, ks)
@settings(max_examples=15, deadline=None)
def test_per_vn_attribution_conserves_power(scheme_alpha, k):
    """sum(per_vn_w) == total_w for every scheme and K."""
    scheme, alpha = scheme_alpha
    if scheme is Scheme.VM and k == 1:
        alpha = None
    trace = uniform_trace(scheme, k)
    sample = sampler_for(scheme, k, SpeedGrade.G2, alpha).sample(trace)
    assert sum(sample.per_vn_w) == pytest.approx(sample.total_w, rel=1e-9)


def test_k15_vs_matches_fig5_and_fig8_exactly():
    """The acceptance point: K = 15 VS telemetry vs the published rows."""
    trace = uniform_trace(Scheme.VS, 15)
    for grade in (SpeedGrade.G2, SpeedGrade.G1L):
        sample = sampler_for(Scheme.VS, 15, grade).sample(trace, duty_cycle=1.0)
        row = paper_row(Scheme.VS, 15, grade)
        assert abs(sample.total_w - row.experimental.total_w) <= RTOL * row.experimental.total_w
        assert (
            abs(sample.mw_per_gbps - row.experimental_mw_per_gbps)
            <= RTOL * row.experimental_mw_per_gbps
        )
    # the headline Fig. 8 claim: VS lands under 4 mW/Gbps at K = 15, grade -2
    g2 = sampler_for(Scheme.VS, 15, SpeedGrade.G2).sample(trace)
    assert g2.mw_per_gbps < 4.0
