"""Property tests backing the ``@monotone_in`` declarations.

Every function in ``src/repro`` annotated with
:func:`repro.core.invariants.monotone_in` must be exercised here (or
in a sibling property module) — the ``repro-lint`` rule ``INV001``
enforces the pairing statically, and :func:`check_monotone` falsifies
the declaration dynamically on hypothesis-drawn inputs.
"""

import inspect

from hypothesis import given, settings, strategies as st

import repro
from repro.core.invariants import check_monotone, declared_invariants
from repro.core.metrics import energy_per_packet_nj, mw_per_gbps, throughput_gbps
from repro.fpga.bram import BramKind, bram_dynamic_power_uw
from repro.fpga.logic import stage_logic_power_uw
from repro.fpga.speedgrade import SpeedGrade
from repro.fpga.static_power import static_power_w

frequencies = st.lists(
    st.floats(min_value=1.0, max_value=500.0, allow_nan=False), min_size=2, max_size=8
)
activities = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=2, max_size=8
)
powers = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=2, max_size=8
)
grades = st.sampled_from(list(SpeedGrade))


@given(frequencies, grades)
@settings(max_examples=60, deadline=None)
def test_stage_logic_power_monotone_in_frequency(values, grade):
    check_monotone(stage_logic_power_uw, "frequency_mhz", values, grade=grade)


@given(activities, grades)
@settings(max_examples=60, deadline=None)
def test_stage_logic_power_monotone_in_activity(values, grade):
    check_monotone(
        stage_logic_power_uw, "activity", values, frequency_mhz=250.0, grade=grade
    )


@given(frequencies, grades, st.sampled_from(list(BramKind)))
@settings(max_examples=60, deadline=None)
def test_bram_power_monotone_in_frequency(values, grade, kind):
    check_monotone(
        bram_dynamic_power_uw, "frequency_mhz", values, grade=grade, kind=kind
    )


@given(st.lists(st.integers(min_value=0, max_value=2000), min_size=2, max_size=8), grades)
@settings(max_examples=60, deadline=None)
def test_bram_power_monotone_in_blocks(blocks, grade):
    check_monotone(
        bram_dynamic_power_uw,
        "n_blocks",
        blocks,
        frequency_mhz=250.0,
        grade=grade,
        kind=BramKind.B36,
    )


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=8), grades)
@settings(max_examples=60, deadline=None)
def test_static_power_monotone_in_temperature(temps, grade):
    check_monotone(static_power_w, "temperature_c", temps, grade=grade)


@given(frequencies)
@settings(max_examples=60, deadline=None)
def test_throughput_monotone_in_frequency(values):
    check_monotone(throughput_gbps, "frequency_mhz", values)


@given(st.lists(st.integers(min_value=0, max_value=64), min_size=2, max_size=8))
@settings(max_examples=60, deadline=None)
def test_throughput_monotone_in_engines(engines):
    check_monotone(throughput_gbps, "n_engines", engines, frequency_mhz=250.0)


@given(powers)
@settings(max_examples=60, deadline=None)
def test_mw_per_gbps_monotone_in_power(values):
    check_monotone(mw_per_gbps, "total_power_w", values, capacity_gbps=100.0)


@given(powers)
@settings(max_examples=60, deadline=None)
def test_energy_per_packet_monotone_in_power(values):
    check_monotone(
        energy_per_packet_nj, "total_power_w", values, frequency_mhz=250.0, n_engines=2
    )


def test_every_declared_invariant_has_a_property_test():
    """Meta-check: the declarations INV001 sees are the ones this
    module (or a sibling) actually exercises — mirrors the lint rule
    at runtime so a stale annotation fails even without repro-lint."""
    import pathlib

    import repro.core.metrics
    import repro.fpga.bram
    import repro.fpga.logic
    import repro.fpga.static_power

    corpus = "\n".join(
        p.read_text(encoding="utf-8")
        for p in pathlib.Path(__file__).parent.glob("*.py")
    )
    missing = []
    for module in (
        repro.core.metrics,
        repro.fpga.bram,
        repro.fpga.logic,
        repro.fpga.static_power,
    ):
        for name, func in inspect.getmembers(module, inspect.isfunction):
            if declared_invariants(func) and name not in corpus:
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"annotated but untested: {missing}"
