"""Property tests: trie merging (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.iplookup.prefix import Prefix
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.virt.merged import merge_tries

prefixes = st.builds(
    Prefix.normalized,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=24),
)

route_lists = st.lists(
    st.tuples(prefixes, st.integers(min_value=0, max_value=31)),
    min_size=0,
    max_size=20,
)

table_sets = st.lists(route_lists, min_size=1, max_size=4)


def build_tables(table_set) -> list[RoutingTable]:
    tables = []
    for routes in table_set:
        t = RoutingTable()
        for prefix, nh in routes:
            t.add(prefix, nh)
        tables.append(t)
    return tables


@given(table_sets, st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_merged_lookup_equals_per_table_oracle(table_set, addresses):
    """The core merged-router correctness property: for every VN, the
    merged trie answers exactly what that VN's own table would."""
    tables = build_tables(table_set)
    merged = merge_tries([UnibitTrie(t) for t in tables])
    addrs = np.array(addresses, dtype=np.uint32)
    for vn, table in enumerate(tables):
        expected = table.lookup_linear_batch(addrs)
        got = merged.lookup_batch(addrs, np.full(len(addrs), vn))
        assert np.array_equal(expected, got)


@given(table_sets)
@settings(max_examples=100, deadline=None)
def test_merged_structure_is_full_and_valid(table_set):
    tables = build_tables(table_set)
    merged = merge_tries([UnibitTrie(t) for t in tables])
    merged.structure.validate()
    assert merged.structure.is_leaf_pushed()


@given(table_sets)
@settings(max_examples=100, deadline=None)
def test_alpha_bounds(table_set):
    tables = build_tables(table_set)
    k = len(tables)
    merged = merge_tries([UnibitTrie(t) for t in tables])
    assert 0.0 <= merged.global_alpha <= (k - 1) / k + 1e-12 if k > 1 else True
    if k > 1:
        assert 0.0 <= merged.pairwise_alpha <= 1.0


@given(table_sets)
@settings(max_examples=50, deadline=None)
def test_union_nodes_bounded(table_set):
    """Union size is at least the biggest input and at most the sum."""
    tables = build_tables(table_set)
    tries = [UnibitTrie(t) for t in tables]
    merged = merge_tries(tries)
    biggest = max(t.num_nodes for t in tries)
    total = sum(t.num_nodes for t in tries)
    assert biggest <= merged.union_input_nodes <= total


@given(route_lists, st.integers(min_value=2, max_value=5))
@settings(max_examples=50, deadline=None)
def test_identical_tables_merge_to_one(routes, k):
    table = RoutingTable()
    for prefix, nh in routes:
        table.add(prefix, nh)
    tries = [UnibitTrie(table) for _ in range(k)]
    merged = merge_tries(tries)
    assert merged.union_input_nodes == tries[0].num_nodes
    assert merged.pairwise_alpha == 1.0


@given(table_sets, st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=15))
@settings(max_examples=60, deadline=None)
def test_braided_lookup_equals_per_table_oracle(table_set, addresses):
    """Braiding must preserve per-VN forwarding exactly, twists and all."""
    from repro.virt.braiding import braid_tries

    tables = build_tables(table_set)
    braided = braid_tries([UnibitTrie(t) for t in tables])
    addrs = np.array(addresses, dtype=np.uint32)
    for vn, table in enumerate(tables):
        expected = table.lookup_linear_batch(addrs)
        got = braided.lookup_batch(addrs, np.full(len(addrs), vn))
        assert np.array_equal(expected, got)


@given(table_sets)
@settings(max_examples=60, deadline=None)
def test_braided_shape_is_full_and_valid(table_set):
    from repro.virt.braiding import braid_tries

    tables = build_tables(table_set)
    braided = braid_tries([UnibitTrie(t) for t in tables])
    braided.structure.validate()
    assert braided.structure.is_leaf_pushed()
