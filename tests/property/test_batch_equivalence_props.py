"""Property tests: every batch lookup equals its scalar counterpart.

The vectorized hot paths (level-synchronous walks, jump tables, 2-D
NHI gathers) must be behaviour-preserving refactors of the scalar
``lookup`` loops.  Hypothesis pins that down structure by structure:
``lookup_batch(addrs) == [lookup(a) for a in addrs]`` on random RIBs,
including the width > 32 scalar-fallback branch of UnibitTrie.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.iplookup.multibit import MultibitTrie
from repro.iplookup.patricia import PatriciaTrie
from repro.iplookup.prefix import Prefix
from repro.iplookup.prefix6 import Prefix6
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.virt.merged import merge_tries

prefixes = st.builds(
    Prefix.normalized,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
)

route_lists = st.lists(
    st.tuples(prefixes, st.integers(min_value=0, max_value=63)),
    min_size=0,
    max_size=40,
)

address_arrays = st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=60
)

prefixes6 = st.builds(
    Prefix6.normalized,
    st.integers(min_value=0, max_value=(1 << 128) - 1),
    st.integers(min_value=0, max_value=128),
)

route_lists6 = st.lists(
    st.tuples(prefixes6, st.integers(min_value=0, max_value=63)),
    min_size=0,
    max_size=25,
)

address_arrays6 = st.lists(
    st.integers(min_value=0, max_value=(1 << 128) - 1), min_size=1, max_size=30
)


def build_table(routes) -> RoutingTable:
    table = RoutingTable()
    for prefix, nh in routes:
        table.add(prefix, nh)
    return table


def scalar_oracle(structure, addresses) -> np.ndarray:
    return np.array([structure.lookup(int(a)) for a in addresses], dtype=np.int64)


@given(route_lists, address_arrays)
@settings(max_examples=150, deadline=None)
def test_unibit_batch_equals_scalar(routes, addresses):
    trie = UnibitTrie(build_table(routes))
    addrs = np.array(addresses, dtype=np.uint32)
    assert np.array_equal(trie.lookup_batch(addrs), scalar_oracle(trie, addrs))


@given(route_lists, address_arrays, st.integers(min_value=1, max_value=6))
@settings(max_examples=100, deadline=None)
def test_multibit_batch_equals_scalar(routes, addresses, stride):
    trie = MultibitTrie(build_table(routes), stride=stride)
    addrs = np.array(addresses, dtype=np.uint32)
    assert np.array_equal(trie.lookup_batch(addrs), scalar_oracle(trie, addrs))


@given(route_lists, address_arrays)
@settings(max_examples=150, deadline=None)
def test_patricia_batch_equals_scalar(routes, addresses):
    trie = PatriciaTrie(build_table(routes))
    addrs = np.array(addresses, dtype=np.uint32)
    assert np.array_equal(trie.lookup_batch(addrs), scalar_oracle(trie, addrs))


@given(
    st.lists(route_lists, min_size=1, max_size=4),
    address_arrays,
    st.randoms(use_true_random=False),
)
@settings(max_examples=80, deadline=None)
def test_merged_batch_equals_scalar(per_vn_routes, addresses, rnd):
    k = len(per_vn_routes)
    merged = merge_tries([UnibitTrie(build_table(r)) for r in per_vn_routes])
    addrs = np.array(addresses, dtype=np.uint32)
    vnids = np.array([rnd.randrange(k) for _ in addrs], dtype=np.int64)
    batch = merged.lookup_batch(addrs, vnids)
    scalar = np.array(
        [merged.lookup(int(a), int(v)) for a, v in zip(addrs, vnids)], dtype=np.int64
    )
    assert np.array_equal(batch, scalar)


@given(route_lists6, address_arrays6)
@settings(max_examples=60, deadline=None)
def test_wide_trie_batch_falls_back_to_scalar(routes, addresses):
    """width > 32 exceeds the NumPy word walk — the scalar fallback
    branch of ``walk_batch`` must still agree with ``lookup``."""
    table = build_table(routes)
    trie = UnibitTrie(table, width=128)
    batch = trie.lookup_batch(addresses)
    assert np.array_equal(batch, scalar_oracle(trie, addresses))
