"""Property tests: prefixes (hypothesis)."""

from hypothesis import given, strategies as st

from repro.iplookup.prefix import Prefix, format_address, parse_address, parse_prefix

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
lengths = st.integers(min_value=0, max_value=32)


@given(addresses, lengths)
def test_normalized_clears_exactly_host_bits(value, length):
    p = Prefix.normalized(value, length)
    assert p.value & ~p.mask() == 0
    # the network part is untouched
    assert p.value == value & p.mask()


@given(addresses, lengths)
def test_prefix_contains_its_own_range_bounds(value, length):
    p = Prefix.normalized(value, length)
    assert p.contains(p.first_address())
    assert p.contains(p.last_address())


@given(addresses, lengths)
def test_prefix_contains_normalized_source(value, length):
    p = Prefix.normalized(value, length)
    assert p.contains(value)


@given(addresses, st.integers(min_value=0, max_value=31))
def test_children_partition_parent(value, length):
    p = Prefix.normalized(value, length)
    left, right = p.children()
    assert p.covers(left) and p.covers(right)
    assert left.num_addresses() + right.num_addresses() == p.num_addresses()
    assert left.last_address() + 1 == right.first_address()


@given(addresses)
def test_address_format_parse_roundtrip(value):
    assert parse_address(format_address(value)) == value


@given(addresses, lengths)
def test_prefix_str_parse_roundtrip(value, length):
    p = Prefix.normalized(value, length)
    assert parse_prefix(str(p)) == p


@given(addresses, lengths)
def test_bits_reconstruct_value(value, length):
    p = Prefix.normalized(value, length)
    rebuilt = 0
    for i, bit in enumerate(p.bits()):
        rebuilt |= bit << (31 - i)
    assert rebuilt == p.value


@given(addresses, lengths, lengths)
def test_covers_is_consistent_with_contains(value, la, lb):
    outer = Prefix.normalized(value, min(la, lb))
    inner = Prefix.normalized(value, max(la, lb))
    assert outer.covers(inner)
    assert outer.contains(inner.first_address())
