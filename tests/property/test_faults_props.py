"""Property tests: strict batch validation and fault-plan determinism.

Two guarantees worth pinning over a generated corpus rather than a few
examples:

* every corruption in the malformed-batch corpus is rejected with the
  *typed* error kind the corpus promises — and the rejection is
  metric-clean: nothing but ``repro_serve_errors_total`` moves, so a
  rejected batch can never masquerade as served traffic;
* a :class:`~repro.faults.FaultPlan` generated from a seed is a pure
  function of its arguments (same seed → byte-identical trace), which
  is what makes chaos runs replayable.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MalformedBatchError
from repro.faults import MALFORMED_KINDS, FaultPlan, corrupt_batch
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.registry import MetricsRegistry
from repro.serve import LookupService
from repro.virt.schemes import Scheme

K = 3

#: one service per scheme, shared across examples (tables are immutable)
_TABLES = generate_virtual_tables(K, 0.5, SyntheticTableConfig(n_prefixes=120, seed=29))
_SERVICES = {scheme: LookupService(_TABLES, scheme) for scheme in Scheme}

corruption_kinds = st.sampled_from(sorted(MALFORMED_KINDS))
schemes = st.sampled_from([Scheme.NV, Scheme.VS, Scheme.VM])
batch_sizes = st.integers(min_value=1, max_value=64)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def well_formed_batch(size, seed):
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 32, size=size, dtype=np.uint64).astype(np.uint32)
    vnids = rng.integers(0, K, size=size, dtype=np.int64)
    return addresses, vnids


class TestMalformedCorpus:
    @settings(max_examples=150, deadline=None)
    @given(kind=corruption_kinds, scheme=schemes, size=batch_sizes, seed=seeds)
    def test_rejected_with_typed_error(self, kind, scheme, size, seed):
        addresses, vnids = well_formed_batch(size, seed)
        bad = corrupt_batch(addresses, vnids, kind, np.random.default_rng(seed), k=K)
        with pytest.raises(MalformedBatchError) as err:
            _SERVICES[scheme].serve(*bad)
        assert err.value.kind == MALFORMED_KINDS[kind]

    @settings(max_examples=60, deadline=None)
    @given(kind=corruption_kinds, size=batch_sizes, seed=seeds)
    def test_rejection_emits_no_partial_metrics(self, kind, size, seed):
        """A rejected batch moves the error counter and nothing else."""
        registry = MetricsRegistry(enabled=True)
        service = LookupService(_TABLES, Scheme.VS, registry=registry)
        addresses, vnids = well_formed_batch(size, seed)
        bad = corrupt_batch(addresses, vnids, kind, np.random.default_rng(seed), k=K)
        with pytest.raises(MalformedBatchError):
            service.serve(*bad)
        families = {f.name for f in registry.collect()}
        assert families == {"repro_serve_errors_total"}
        errors = registry.get("repro_serve_errors_total")
        assert sum(c.value for _, c in errors.samples()) == 1.0

    @settings(max_examples=60, deadline=None)
    @given(size=batch_sizes, seed=seeds, scheme=schemes)
    def test_well_formed_batches_are_served(self, size, seed, scheme):
        """The validator rejects only the corpus, never clean traffic."""
        addresses, vnids = well_formed_batch(size, seed)
        results, trace = _SERVICES[scheme].serve(addresses, vnids)
        assert len(results) == size
        assert trace.n_packets == size


class TestPlanDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=seeds,
        n_batches=st.integers(min_value=1, max_value=200),
        n_engines=st.integers(min_value=1, max_value=8),
        n_faults=st.integers(min_value=0, max_value=10),
    )
    def test_same_seed_same_trace(self, seed, n_batches, n_engines, n_faults):
        kwargs = dict(n_batches=n_batches, n_engines=n_engines, n_faults=n_faults)
        first = FaultPlan.generate(seed, **kwargs)
        second = FaultPlan.generate(seed, **kwargs)
        assert first.trace(n_batches) == second.trace(n_batches)
        assert first.windows == second.windows

    @settings(max_examples=40, deadline=None)
    @given(seed=seeds, n_batches=st.integers(min_value=1, max_value=100))
    def test_windows_respect_horizon(self, seed, n_batches):
        plan = FaultPlan.generate(seed, n_batches=n_batches, n_engines=4, n_faults=6)
        assert all(w.stop <= n_batches for w in plan.windows)
        assert plan.horizon <= n_batches
