"""Property tests: analytical power-model invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.power import AnalyticalPowerModel
from repro.core.resources import engine_stage_map, merged_multiplier, merged_stage_map
from repro.fpga.speedgrade import SpeedGrade


@pytest.fixture(scope="module")
def base_stats():
    from repro.iplookup.leafpush import leaf_push
    from repro.iplookup.synth import SyntheticTableConfig, generate_table
    from repro.iplookup.trie import UnibitTrie

    table = generate_table(SyntheticTableConfig(n_prefixes=300, seed=77))
    return leaf_push(UnibitTrie(table)).stats()


ks = st.integers(min_value=1, max_value=15)
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
frequencies = st.floats(min_value=1.0, max_value=500.0, allow_nan=False)
grades = st.sampled_from(list(SpeedGrade))


@given(ks, alphas)
def test_merged_multiplier_bounds(k, alpha):
    m = merged_multiplier(k, alpha)
    assert 1.0 <= m <= k


@given(ks, alphas)
@settings(max_examples=60, deadline=None)
def test_merged_memory_between_one_and_k_tables(base_stats, k, alpha):
    base = engine_stage_map(base_stats, 28)
    merged = merged_stage_map(base_stats, k, alpha, 28)
    # pointer memory: between one table's and K tables' worth
    assert base.total_pointer_bits <= merged.total_pointer_bits
    assert merged.total_pointer_bits <= k * base.total_pointer_bits + k  # rounding slack
    # NHI memory: at least K × one table's entries (K-wide vectors)
    assert merged.total_nhi_bits >= base.total_nhi_bits


@given(ks, frequencies, grades)
@settings(max_examples=60, deadline=None)
def test_nv_dominates_vs_by_static_exactly(base_stats, k, f, grade):
    """P_NV − P_VS = (K−1)·P_L for any K, f, grade (Eqs. 2 vs 4)."""
    base = engine_stage_map(base_stats, 28)
    model = AnalyticalPowerModel(grade)
    mu = np.full(k, 1.0 / k)
    nv = model.power_nv([base] * k, f, mu)
    vs = model.power_vs([base] * k, f, mu)
    assert nv.total_w - vs.total_w == pytest.approx((k - 1) * model.static_w)
    assert nv.dynamic_w == pytest.approx(vs.dynamic_w)


@given(frequencies, grades, st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_dynamic_power_scales_linearly_with_duty(base_stats, f, grade, duty):
    base = engine_stage_map(base_stats, 28)
    model = AnalyticalPowerModel(grade)
    mu = np.array([1.0])
    full = model.power_vs([base], f, mu, duty_cycle=1.0)
    scaled = model.power_vs([base], f, mu, duty_cycle=duty)
    assert scaled.dynamic_w == pytest.approx(full.dynamic_w * duty, rel=1e-9)


@given(ks, frequencies)
@settings(max_examples=40, deadline=None)
def test_low_power_grade_never_worse(base_stats, k, f):
    base = engine_stage_map(base_stats, 28)
    mu = np.full(k, 1.0 / k)
    g2 = AnalyticalPowerModel(SpeedGrade.G2).power_vs([base] * k, f, mu)
    g1l = AnalyticalPowerModel(SpeedGrade.G1L).power_vs([base] * k, f, mu)
    assert g1l.total_w < g2.total_w


@given(st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_vs_power_invariant_to_mu_distribution(base_stats, raw_mu):
    """Under Assumption 2 (identical tables), Eq. 4 telescopes: the
    utilization *distribution* cannot change total power."""
    mu = np.asarray(raw_mu)
    mu = mu / mu.sum()
    k = len(mu)
    base = engine_stage_map(base_stats, 28)
    model = AnalyticalPowerModel(SpeedGrade.G2)
    skewed = model.power_vs([base] * k, 250, mu)
    uniform = model.power_vs([base] * k, 250, np.full(k, 1.0 / k))
    assert skewed.total_w == pytest.approx(uniform.total_w, rel=1e-9)
