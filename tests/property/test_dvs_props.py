"""Property tests: CMOS voltage-scaling laws (repro.fpga.dvs)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.fpga.dvs import (
    NOMINAL_VOLTAGE,
    PLAUSIBLE_V_MAX,
    PLAUSIBLE_V_MIN,
    OperatingPoint,
    dynamic_scale,
    fit_voltage,
    frequency_scale,
    static_scale,
    synthetic_grade,
    voltage_for_frequency_scale,
)

plausible_volts = st.floats(
    min_value=PLAUSIBLE_V_MIN, max_value=PLAUSIBLE_V_MAX, allow_nan=False
)

volt_pairs = st.tuples(plausible_volts, plausible_volts).map(sorted)

implausible_volts = st.one_of(
    st.floats(min_value=0.0, max_value=PLAUSIBLE_V_MIN, exclude_max=True),
    st.floats(min_value=PLAUSIBLE_V_MAX, max_value=5.0, exclude_min=True),
)

SCALES = (dynamic_scale, static_scale, frequency_scale)


@given(volt_pairs)
@settings(max_examples=200, deadline=None)
def test_all_scales_monotone_in_voltage(pair):
    lo, hi = pair
    for scale in SCALES:
        assert scale(lo) <= scale(hi)


@given(plausible_volts)
@settings(max_examples=200, deadline=None)
def test_nominal_ordering(voltage):
    # below nominal every factor is a saving; above, every one a cost
    for scale in SCALES:
        if voltage <= NOMINAL_VOLTAGE:
            assert scale(voltage) <= scale(NOMINAL_VOLTAGE) == pytest.approx(1.0)
        else:
            assert scale(voltage) >= 1.0


def test_all_unity_at_nominal():
    for scale in SCALES:
        assert scale(NOMINAL_VOLTAGE) == pytest.approx(1.0)


@given(plausible_volts)
@settings(max_examples=200, deadline=None)
def test_static_saves_at_least_dynamic_below_nominal(voltage):
    # V³ vs V²: leakage drops faster than switching under the rail
    if voltage <= NOMINAL_VOLTAGE:
        assert static_scale(voltage) <= dynamic_scale(voltage)
    else:
        assert static_scale(voltage) >= dynamic_scale(voltage)


@given(implausible_volts)
@settings(max_examples=100, deadline=None)
def test_rejects_outside_plausible_range(voltage):
    for scale in SCALES:
        with pytest.raises(ConfigurationError):
            scale(voltage)
    with pytest.raises(ConfigurationError):
        OperatingPoint(voltage)


@given(plausible_volts)
@settings(max_examples=200, deadline=None)
def test_frequency_scale_round_trips_through_inverse(voltage):
    assert voltage_for_frequency_scale(frequency_scale(voltage)) == pytest.approx(
        voltage, rel=1e-9
    )


@given(plausible_volts)
@settings(max_examples=200, deadline=None)
def test_operating_point_agrees_with_module_functions(voltage):
    point = OperatingPoint(voltage)
    assert point.frequency_scale == pytest.approx(frequency_scale(voltage))
    assert point.dynamic_scale == pytest.approx(dynamic_scale(voltage))
    assert point.static_scale == pytest.approx(static_scale(voltage))


@given(st.floats(min_value=0.55, max_value=PLAUSIBLE_V_MAX, allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_fit_round_trips_synthetic_grades(voltage):
    # a grade manufactured at any plausible voltage is recovered
    # exactly — including outside the historical 0.7..1.0 bracket
    fitted, err = fit_voltage(synthetic_grade(voltage))
    assert fitted == pytest.approx(voltage, abs=1e-6)
    assert err < 1e-6
