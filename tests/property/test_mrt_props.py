"""Property tests: MRT round-trips and fixture-vs-oracle agreement."""

import os
from functools import lru_cache

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.iplookup.mrt import (
    RibEntry,
    dataset_from_entries,
    downsample,
    load_dataset,
    parse_bgpdump_text,
    parse_mrt_bytes,
    render_bgpdump_line,
    render_mrt_bytes,
    virtual_tables_from_table,
)
from repro.iplookup.prefix import Prefix, format_address
from repro.iplookup.prefix6 import Prefix6
from repro.iplookup.rib import RoutingTable
from repro.serve.service import LookupService
from repro.virt.schemes import Scheme

FIXTURE = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "data",
    "ris_sample.bgpdump.txt",
)

# -- strategies ----------------------------------------------------------

v4_addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(format_address)
v6_addresses = st.integers(min_value=0, max_value=(1 << 128) - 1).map(
    lambda value: str(Prefix6(value, 128)).rsplit("/", 1)[0]
)

v4_prefixes = st.builds(
    Prefix.normalized,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
).map(lambda p: f"{format_address(p.value)}/{p.length}")

v6_prefixes = st.builds(
    Prefix6.normalized,
    st.integers(min_value=0, max_value=(1 << 128) - 1),
    st.integers(min_value=0, max_value=128),
).map(str)

asns = st.integers(min_value=1, max_value=0xFFFFFFFF)
as_paths = st.lists(
    st.one_of(
        asns.map(str),
        st.lists(asns, min_size=1, max_size=3).map(
            lambda members: "{" + ",".join(map(str, members)) + "}"
        ),
    ),
    min_size=0,
    max_size=6,
).map(" ".join)


def _entries(prefix_strategy, address_strategy):
    """Entries of one address family (binary NEXT_HOP is per-family)."""
    return st.builds(
        RibEntry,
        timestamp=st.integers(min_value=1, max_value=0xFFFFFFFF),
        peer_ip=address_strategy,
        peer_as=asns,
        prefix=prefix_strategy,
        as_path=as_paths,
        next_hop=address_strategy,
    )


entry_lists = st.lists(
    st.one_of(_entries(v4_prefixes, v4_addresses), _entries(v6_prefixes, v6_addresses)),
    min_size=0,
    max_size=20,
)


# -- round trips ---------------------------------------------------------


@given(entry_lists)
@settings(max_examples=150, deadline=None)
def test_text_round_trip(entries):
    text = "\n".join(render_bgpdump_line(e) for e in entries)
    assert list(parse_bgpdump_text(text)) == entries


@given(entry_lists, st.booleans())
@settings(max_examples=100, deadline=None)
def test_binary_round_trip(entries, compress):
    blob = render_mrt_bytes(entries, compress=compress)
    back = list(parse_mrt_bytes(blob))
    # the renderer groups entries by prefix, so compare as multisets
    assert sorted(map(repr, back)) == sorted(map(repr, entries))


@given(entry_lists)
@settings(max_examples=60, deadline=None)
def test_text_and_binary_reductions_agree(entries):
    """Both wire formats must reduce to identical routing tables."""
    text = "\n".join(render_bgpdump_line(e) for e in entries)
    from_text = dataset_from_entries(parse_bgpdump_text(text))
    from_binary = dataset_from_entries(parse_mrt_bytes(render_mrt_bytes(entries)))
    assert from_text.v4.prefixes() == from_binary.v4.prefixes()
    assert from_text.v6.prefixes() == from_binary.v6.prefixes()
    assert set(from_text.next_hops) == set(from_binary.next_hops)


# -- downsampling --------------------------------------------------------

route_tables = st.lists(
    st.tuples(
        st.builds(
            Prefix.normalized,
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            st.integers(min_value=0, max_value=32),
        ),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=0,
    max_size=60,
)


@given(route_tables, st.integers(min_value=0, max_value=80), st.integers(0, 2**31 - 1))
@settings(max_examples=150, deadline=None)
def test_downsample_is_deterministic_and_a_subset(routes, target, seed):
    table = RoutingTable()
    for prefix, nh in routes:
        table.add(prefix, nh)
    once = downsample(table, target, seed=seed)
    again = downsample(table, target, seed=seed)
    assert once.routes() == again.routes()
    assert len(once) == min(target, len(table))
    assert set(once.routes()) <= set(table.routes())
    default = Prefix.normalized(0, 0)
    if default in table and target > 0:
        assert default in once


# -- committed fixture vs the linear-scan oracle -------------------------


@lru_cache(maxsize=1)
def _fixture_virtuals():
    """A small multi-VN slice of the committed fixture (built once)."""
    dataset = load_dataset(FIXTURE, name="fixture")
    edge = downsample(dataset.v4, 300, seed=11)
    return virtual_tables_from_table(edge, 3, shared_fraction=0.5, seed=11)


@given(
    st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=40),
    st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=40),
)
@settings(max_examples=25, deadline=None)
def test_fixture_serving_matches_oracle_across_schemes(addresses, vnids):
    """Real-dump tables answer identically through NV, VS and VM."""
    tables = _fixture_virtuals()
    n = min(len(addresses), len(vnids))
    addrs = np.array(addresses[:n], dtype=np.uint32)
    vns = np.array(vnids[:n], dtype=np.int64)
    expected = np.stack([t.lookup_linear_batch(addrs) for t in tables])[
        vns, np.arange(n)
    ]
    for scheme in (Scheme.NV, Scheme.VS, Scheme.VM):
        service = LookupService(tables, scheme, n_stages=None)
        assert np.array_equal(service.lookup_batch(addrs, vns), expected), scheme
