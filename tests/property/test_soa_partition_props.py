"""Property tests for the structure-of-arrays batch path.

The SoA refactor replaced the per-engine ``flatnonzero`` scan with one
stable sort plus contiguous slices, and replaced per-batch trie walks
with walks over frozen arrays.  Both are behaviour-preserving
refactors, and Hypothesis pins the contracts:

* ``BatchPartition.engine_indices(i)`` is index-for-index the old
  ``np.flatnonzero(vnids == i)`` partition, and gather/scatter through
  ``order`` is a true inverse pair;
* a frozen engine's ``walk_batch`` equals the scalar ``lookup`` loop,
  and any mutation invalidates the snapshot so the next batch sees the
  updated table.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.iplookup.prefix import Prefix
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.virt.distributor import Distributor

prefixes = st.builds(
    Prefix.normalized,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
)

route_lists = st.lists(
    st.tuples(prefixes, st.integers(min_value=0, max_value=63)),
    min_size=0,
    max_size=40,
)

address_arrays = st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=60
)


@st.composite
def vnid_batches(draw):
    k = draw(st.integers(min_value=1, max_value=8))
    vnids = draw(
        st.lists(st.integers(min_value=0, max_value=k - 1), min_size=0, max_size=120)
    )
    return k, np.array(vnids, dtype=np.int64)


def build_table(routes) -> RoutingTable:
    table = RoutingTable()
    for prefix, nh in routes:
        table.add(prefix, nh)
    return table


@given(vnid_batches())
@settings(max_examples=200, deadline=None)
def test_partition_slices_equal_flatnonzero(batch):
    """Sorted-slice routing is index-for-index the old scan."""
    k, vnids = batch
    part = Distributor(k=k).partition(vnids)
    assert part.k == k
    assert part.n_packets == len(vnids)
    for engine in range(k):
        expected = np.flatnonzero(vnids == engine)
        assert np.array_equal(part.engine_indices(engine), expected)
        assert part.engine_count(engine) == len(expected)


@given(vnid_batches())
@settings(max_examples=200, deadline=None)
def test_partition_offsets_tile_the_batch(batch):
    """Offsets are a monotone exact cover: slices are disjoint and
    complete, and ``order`` is a permutation of the batch."""
    k, vnids = batch
    part = Distributor(k=k).partition(vnids)
    assert part.offsets[0] == 0
    assert part.offsets[-1] == len(vnids)
    assert (np.diff(part.offsets) >= 0).all()
    assert np.array_equal(np.sort(part.order), np.arange(len(vnids)))


@given(vnid_batches(), st.randoms(use_true_random=False))
@settings(max_examples=150, deadline=None)
def test_gather_scatter_roundtrip(batch, rnd):
    """``scatter(gather(x)) == x``: the out-scatter really inverts the
    in-gather, so per-packet values survive the SoA detour."""
    k, vnids = batch
    part = Distributor(k=k).partition(vnids)
    values = np.array([rnd.randrange(1 << 20) for _ in vnids], dtype=np.int64)
    assert np.array_equal(part.scatter(part.gather(values)), values)


@given(route_lists, address_arrays)
@settings(max_examples=150, deadline=None)
def test_frozen_walk_equals_scalar(routes, addresses):
    """An explicitly frozen engine answers exactly like the scalar
    ``lookup`` loop (the serving layer freezes at build time)."""
    trie = UnibitTrie(build_table(routes))
    trie.freeze()
    addrs = np.array(addresses, dtype=np.uint32)
    expected = np.array([trie.lookup(int(a)) for a in addrs], dtype=np.int64)
    assert np.array_equal(trie.lookup_batch(addrs), expected)


@given(route_lists, address_arrays, prefixes, st.integers(min_value=0, max_value=63))
@settings(max_examples=100, deadline=None)
def test_mutation_invalidates_frozen_snapshot(routes, addresses, extra, nh):
    """freeze -> insert -> batch must see the new route; freeze ->
    remove -> batch must not resurrect the old one."""
    trie = UnibitTrie(build_table(routes))
    addrs = np.array(addresses, dtype=np.uint32)

    trie.freeze()
    trie.insert(extra, nh)
    expected = np.array([trie.lookup(int(a)) for a in addrs], dtype=np.int64)
    assert np.array_equal(trie.lookup_batch(addrs), expected)

    trie.freeze()
    trie.remove(extra)
    expected = np.array([trie.lookup(int(a)) for a in addrs], dtype=np.int64)
    assert np.array_equal(trie.lookup_batch(addrs), expected)
