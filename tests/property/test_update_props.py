"""Property tests: update streams vs fresh rebuilds (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.iplookup.prefix import Prefix
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.iplookup.updates import RouteUpdate, UpdateKind, apply_updates

prefixes = st.builds(
    Prefix.normalized,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=24),
)

updates_strategy = st.lists(
    st.one_of(
        st.builds(
            RouteUpdate,
            st.just(UpdateKind.ANNOUNCE),
            prefixes,
            st.integers(min_value=0, max_value=31),
        ),
        st.builds(RouteUpdate, st.just(UpdateKind.WITHDRAW), prefixes),
    ),
    min_size=0,
    max_size=60,
)


def replay_into_table(updates) -> RoutingTable:
    table = RoutingTable()
    for update in updates:
        if update.kind is UpdateKind.ANNOUNCE:
            table.add(update.prefix, update.next_hop)
        elif update.prefix in table:
            table.remove(update.prefix)
    return table


@given(updates_strategy)
@settings(max_examples=120, deadline=None)
def test_update_stream_equals_fresh_build(updates):
    """Applying any announce/withdraw stream leaves the trie identical
    (nodes, prefixes and lookups) to a fresh build of the final RIB."""
    trie = UnibitTrie()
    apply_updates(trie, updates)
    trie.validate()

    final = replay_into_table(updates)
    fresh = UnibitTrie(final)
    assert trie.num_nodes == fresh.num_nodes
    assert trie.num_prefixes == fresh.num_prefixes == len(final)

    probe = np.array(
        [u.prefix.value for u in updates] + [0, 0xFFFFFFFF], dtype=np.uint32
    )
    assert np.array_equal(trie.lookup_batch(probe), fresh.lookup_batch(probe))


@given(updates_strategy)
@settings(max_examples=80, deadline=None)
def test_update_costs_are_consistent(updates):
    """Accounting identities of the update statistics."""
    trie = UnibitTrie()
    stats = apply_updates(trie, updates)
    assert stats.total_updates == len(updates)
    assert stats.memory_writes == (
        stats.nodes_created + stats.nodes_pruned + stats.nhi_changes
    )
    assert stats.nhi_changes == stats.announces + stats.withdraws
    # node conservation: created − pruned = live non-root nodes
    assert stats.nodes_created - stats.nodes_pruned == trie.num_nodes - 1


@given(updates_strategy)
@settings(max_examples=60, deadline=None)
def test_withdraw_everything_returns_to_root(updates):
    """Announcing then withdrawing every prefix leaves a bare root."""
    announces = [u for u in updates if u.kind is UpdateKind.ANNOUNCE]
    trie = UnibitTrie()
    apply_updates(trie, announces)
    withdraws = [RouteUpdate(UpdateKind.WITHDRAW, u.prefix) for u in announces]
    apply_updates(trie, withdraws)
    assert trie.num_nodes == 1
    assert trie.num_prefixes == 0
    trie.validate()
