"""Property tests: pipeline simulator (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.iplookup.leafpush import leaf_push
from repro.iplookup.pipeline import LookupPipeline
from repro.iplookup.prefix import Prefix
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie

prefixes = st.builds(
    Prefix.normalized,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=28),
)

route_lists = st.lists(
    st.tuples(prefixes, st.integers(min_value=0, max_value=31)),
    min_size=0,
    max_size=25,
)

address_arrays = st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=0, max_size=40
)


def build_pipeline(routes) -> tuple[RoutingTable, LookupPipeline]:
    table = RoutingTable()
    for prefix, nh in routes:
        table.add(prefix, nh)
    trie = leaf_push(UnibitTrie(table))
    return table, LookupPipeline(trie, n_stages=32)


@given(route_lists, address_arrays)
@settings(max_examples=100, deadline=None)
def test_pipeline_results_match_oracle(routes, addresses):
    table, pipeline = build_pipeline(routes)
    addrs = np.array(addresses, dtype=np.uint32)
    trace = pipeline.run(addrs)
    assert np.array_equal(trace.results, table.lookup_linear_batch(addrs))


@given(route_lists, address_arrays, st.integers(min_value=0, max_value=5))
@settings(max_examples=100, deadline=None)
def test_cycle_accounting(routes, addresses, gap):
    _, pipeline = build_pipeline(routes)
    addrs = np.array(addresses, dtype=np.uint32)
    trace = pipeline.run(addrs, inter_arrival_gap=gap)
    n = len(addrs)
    if n == 0:
        assert trace.total_cycles == 0
    else:
        assert trace.total_cycles == (n - 1) * (gap + 1) + pipeline.n_stages + 1


@given(route_lists, address_arrays)
@settings(max_examples=100, deadline=None)
def test_access_counts_bounded_and_monotone(routes, addresses):
    _, pipeline = build_pipeline(routes)
    addrs = np.array(addresses, dtype=np.uint32)
    trace = pipeline.run(addrs)
    acc = trace.accesses_per_stage
    assert (acc >= 0).all()
    assert (acc <= len(addrs)).all()
    # a packet reaching stage j+1 must have passed stage j
    assert (np.diff(acc) <= 0).all()


@given(route_lists, address_arrays)
@settings(max_examples=50, deadline=None)
def test_gap_does_not_change_results(routes, addresses):
    _, pipeline = build_pipeline(routes)
    addrs = np.array(addresses, dtype=np.uint32)
    dense = pipeline.run(addrs, inter_arrival_gap=0)
    sparse = pipeline.run(addrs, inter_arrival_gap=4)
    assert np.array_equal(dense.results, sparse.results)
    assert np.array_equal(dense.accesses_per_stage, sparse.accesses_per_stage)
