"""Property tests: trie vs linear-scan oracle (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.iplookup.leafpush import leaf_push
from repro.iplookup.prefix import Prefix
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie

prefixes = st.builds(
    Prefix.normalized,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
)

route_lists = st.lists(
    st.tuples(prefixes, st.integers(min_value=0, max_value=63)),
    min_size=0,
    max_size=40,
)

address_arrays = st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=50
)


def build_table(routes) -> RoutingTable:
    table = RoutingTable()
    for prefix, nh in routes:
        table.add(prefix, nh)
    return table


@given(route_lists, address_arrays)
@settings(max_examples=150, deadline=None)
def test_trie_lookup_matches_oracle(routes, addresses):
    table = build_table(routes)
    trie = UnibitTrie(table)
    addrs = np.array(addresses, dtype=np.uint32)
    assert np.array_equal(trie.lookup_batch(addrs), table.lookup_linear_batch(addrs))


@given(route_lists, address_arrays)
@settings(max_examples=100, deadline=None)
def test_leaf_pushed_lookup_matches_oracle(routes, addresses):
    table = build_table(routes)
    pushed = leaf_push(UnibitTrie(table))
    addrs = np.array(addresses, dtype=np.uint32)
    assert np.array_equal(pushed.lookup_batch(addrs), table.lookup_linear_batch(addrs))


@given(route_lists)
@settings(max_examples=100, deadline=None)
def test_trie_structural_invariants(routes):
    table = build_table(routes)
    trie = UnibitTrie(table)
    trie.validate()
    stats = trie.stats()
    assert stats.prefixes == len(table)
    assert stats.depth == (table.max_length() if len(table) else 0)
    assert sum(stats.nodes_per_level) == stats.total_nodes


@given(route_lists)
@settings(max_examples=100, deadline=None)
def test_leaf_push_invariants(routes):
    table = build_table(routes)
    trie = UnibitTrie(table)
    pushed = leaf_push(trie)
    pushed.validate()
    assert pushed.is_leaf_pushed()
    assert pushed.num_nodes >= trie.num_nodes
    # full binary tree: odd node count
    assert pushed.num_nodes % 2 == 1


@given(route_lists)
@settings(max_examples=50, deadline=None)
def test_insertion_order_irrelevant(routes):
    table = build_table(routes)
    forward = UnibitTrie()
    backward = UnibitTrie()
    items = list(table)
    for route in items:
        forward.insert(route.prefix, route.next_hop)
    for route in reversed(items):
        backward.insert(route.prefix, route.next_hop)
    assert forward.num_nodes == backward.num_nodes
    addrs = np.array([r.prefix.value for r in items] or [0], dtype=np.uint32)
    assert np.array_equal(forward.lookup_batch(addrs), backward.lookup_batch(addrs))


@given(route_lists, address_arrays)
@settings(max_examples=100, deadline=None)
def test_patricia_lookup_matches_oracle(routes, addresses):
    """Path compression must preserve LPM results exactly."""
    from repro.iplookup.patricia import PatriciaTrie

    table = build_table(routes)
    patricia = PatriciaTrie(table)
    patricia.validate()
    addrs = np.array(addresses, dtype=np.uint32)
    assert np.array_equal(
        patricia.lookup_batch(addrs), table.lookup_linear_batch(addrs)
    )


@given(route_lists)
@settings(max_examples=100, deadline=None)
def test_patricia_never_larger_than_plain(routes):
    from repro.iplookup.patricia import PatriciaTrie

    table = build_table(routes)
    plain = UnibitTrie(table)
    patricia = PatriciaTrie(table)
    assert patricia.num_nodes <= plain.num_nodes


@given(route_lists)
@settings(max_examples=60, deadline=None)
def test_balanced_mapping_conserves_memory(routes):
    """Balancing relocates stage memories but never changes totals."""
    from repro.iplookup.balancing import balanced_stage_map
    from repro.iplookup.leafpush import leaf_push
    from repro.iplookup.mapping import map_trie_to_stages

    table = build_table(routes)
    trie = leaf_push(UnibitTrie(table))
    n_stages = max(32, trie.depth())
    naive = map_trie_to_stages(trie.stats(), n_stages)
    balanced = balanced_stage_map(trie, n_stages)
    assert balanced.stage_map.total_bits == naive.total_bits
    assert balanced.widest_bits <= naive.widest_stage_bits()
