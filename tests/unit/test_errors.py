"""Exception hierarchy (repro.errors)."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.CapacityError,
            errors.PrefixError,
            errors.TrieError,
            errors.MergeError,
            errors.PlacementError,
            errors.TimingError,
            errors.CalibrationError,
            errors.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_resource_exhausted_carries_context(self):
        exc = errors.ResourceExhaustedError("I/O pins", 1276, 1200)
        assert exc.resource == "I/O pins"
        assert exc.requested == 1276
        assert exc.available == 1200
        assert "1276" in str(exc) and "I/O pins" in str(exc)

    def test_library_errors_not_builtin(self):
        # catching ReproError must not swallow programming errors
        assert not issubclass(errors.ReproError, (ValueError, TypeError))
