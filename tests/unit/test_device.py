"""Device specs and resource algebra (repro.fpga.device)."""

import pytest

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.fpga.catalog import XC6VLX760
from repro.fpga.device import DeviceSpec, ResourceUsage


class TestDeviceSpec:
    def test_bram_pairing(self):
        assert XC6VLX760.bram36_blocks == XC6VLX760.bram18_blocks // 2

    def test_bram_capacity(self):
        # 1440 × 18 Kib = 25 920 Kib ("26 Mb" in the datasheet)
        assert XC6VLX760.bram_kbits == 25_920

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(
                name="bad",
                logic_cells=0,
                slice_registers=1,
                slice_luts=1,
                bram18_blocks=1,
                max_io_pins=1,
                distributed_ram_kbits=1,
            )


class TestResourceUsage:
    def test_addition(self):
        a = ResourceUsage(registers=10, luts_logic=5, bram18=1)
        b = ResourceUsage(registers=3, luts_routing=2, bram36=2)
        c = a + b
        assert c.registers == 13
        assert c.total_luts == 7
        assert c.bram18_equivalent == 1 + 4

    def test_scaled(self):
        u = ResourceUsage(registers=10, io_pins=3).scaled(4)
        assert u.registers == 40
        assert u.io_pins == 12

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ResourceUsage().scaled(-1)

    def test_rejects_negative_fields(self):
        with pytest.raises(ConfigurationError):
            ResourceUsage(registers=-1)

    def test_bram_bits(self):
        u = ResourceUsage(bram18=1, bram36=1)
        assert u.bram_bits == 3 * 18 * 1024

    def test_zero_usage_has_zero_utilization(self):
        assert ResourceUsage().utilization(XC6VLX760) == 0.0

    def test_utilization_is_worst_fraction(self):
        u = ResourceUsage(
            registers=XC6VLX760.slice_registers // 2,
            bram18=XC6VLX760.bram18_blocks // 4,
        )
        assert u.utilization(XC6VLX760) == pytest.approx(0.5, rel=1e-6)

    def test_area_fraction_bounded(self):
        u = ResourceUsage(
            registers=XC6VLX760.slice_registers,
            luts_logic=XC6VLX760.slice_luts,
            bram18=XC6VLX760.bram18_blocks,
        )
        assert u.area_fraction(XC6VLX760) <= 1.0


class TestFitChecks:
    def test_fits_empty(self):
        assert XC6VLX760.fits(ResourceUsage())

    def test_io_exhaustion_reported(self):
        usage = ResourceUsage(io_pins=XC6VLX760.max_io_pins + 1)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            XC6VLX760.check_fits(usage)
        assert excinfo.value.resource == "I/O pins"
        assert excinfo.value.requested == XC6VLX760.max_io_pins + 1

    def test_bram_exhaustion_uses_18k_equivalents(self):
        usage = ResourceUsage(bram36=XC6VLX760.bram36_blocks + 1)
        assert not XC6VLX760.fits(usage)

    def test_register_exhaustion(self):
        usage = ResourceUsage(registers=XC6VLX760.slice_registers + 1)
        with pytest.raises(ResourceExhaustedError):
            XC6VLX760.check_fits(usage)
