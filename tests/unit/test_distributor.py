"""Packet distributor (repro.virt.distributor)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.virt.distributor import Distributor


class TestRouting:
    def test_partition_is_complete_and_disjoint(self):
        d = Distributor(k=4)
        vnids = np.array([0, 1, 2, 3, 0, 1, 2, 3, 3])
        parts = d.route(vnids)
        all_indices = np.concatenate(parts)
        assert sorted(all_indices) == list(range(len(vnids)))
        assert len(parts[3]) == 3

    def test_order_preserved_within_engine(self):
        d = Distributor(k=2)
        vnids = np.array([0, 1, 0, 1, 0])
        parts = d.route(vnids)
        assert list(parts[0]) == [0, 2, 4]

    def test_rejects_out_of_range_vnid(self):
        with pytest.raises(ConfigurationError):
            Distributor(k=2).route(np.array([0, 2]))

    def test_empty_stream(self):
        parts = Distributor(k=3).route(np.array([], dtype=np.int64))
        assert all(len(p) == 0 for p in parts)


class TestAssumption3:
    def test_default_is_zero_cost(self):
        d = Distributor(k=8)
        assert d.resource_usage().total_luts == 0
        assert d.energy_j(10**9) == 0.0

    def test_nonzero_cost_model(self):
        d = Distributor(k=8, luts_per_port=16, energy_per_packet_nj=0.5)
        assert d.resource_usage().luts_logic == 128
        assert d.energy_j(1000) == pytest.approx(0.5e-6)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            Distributor(k=0)
        with pytest.raises(ConfigurationError):
            Distributor(k=1, luts_per_port=-1)
        with pytest.raises(ConfigurationError):
            Distributor(k=1, energy_per_packet_nj=-0.1)

    def test_energy_rejects_negative_packets(self):
        with pytest.raises(ConfigurationError):
            Distributor(k=1).energy_j(-1)
