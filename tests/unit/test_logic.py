"""Per-stage logic power (repro.fpga.logic)."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.logic import (
    PAPER_PE_FOOTPRINT,
    PeFootprint,
    signal_power_fraction,
    stage_logic_power_uw,
    stage_power_components_uw,
)
from repro.fpga.speedgrade import SpeedGrade


class TestFootprint:
    def test_paper_counts(self):
        fp = PAPER_PE_FOOTPRINT
        assert fp.registers == 1689
        assert fp.luts_logic == 336
        assert fp.luts_memory == 126
        assert fp.luts_routing == 376

    def test_usage_scales_with_stages(self):
        u = PAPER_PE_FOOTPRINT.usage(28)
        assert u.registers == 28 * 1689
        assert u.total_luts == 28 * (336 + 126 + 376)

    def test_usage_rejects_negative_stages(self):
        with pytest.raises(ConfigurationError):
            PAPER_PE_FOOTPRINT.usage(-1)

    def test_rejects_all_zero_footprint(self):
        with pytest.raises(ConfigurationError):
            PeFootprint(registers=0, luts_logic=0, luts_memory=0, luts_routing=0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            PeFootprint(registers=-1)


class TestStagePower:
    def test_paper_lines_reproduced_exactly(self):
        # Section V-C: 5.180·f µW (-2), 3.937·f µW (-1L)
        assert stage_logic_power_uw(350, SpeedGrade.G2) == pytest.approx(5.180 * 350)
        assert stage_logic_power_uw(350, SpeedGrade.G1L) == pytest.approx(3.937 * 350)

    def test_linear_in_frequency(self):
        assert stage_logic_power_uw(400, SpeedGrade.G2) == pytest.approx(
            4 * stage_logic_power_uw(100, SpeedGrade.G2)
        )

    def test_zero_frequency(self):
        assert stage_logic_power_uw(0, SpeedGrade.G2) == 0.0

    def test_activity_scales_power(self):
        full = stage_logic_power_uw(200, SpeedGrade.G2, activity=1.0)
        half = stage_logic_power_uw(200, SpeedGrade.G2, activity=0.5)
        assert half == pytest.approx(full / 2)

    def test_rejects_bad_activity(self):
        with pytest.raises(ConfigurationError):
            stage_logic_power_uw(200, SpeedGrade.G2, activity=1.5)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ConfigurationError):
            stage_logic_power_uw(-10, SpeedGrade.G2)

    def test_components_sum_to_total(self):
        comps = stage_power_components_uw(250, SpeedGrade.G2)
        assert sum(comps.values()) == pytest.approx(stage_logic_power_uw(250, SpeedGrade.G2))

    def test_custom_footprint_scales(self):
        doubled = PeFootprint(
            registers=2 * 1689, luts_logic=2 * 336, luts_memory=2 * 126, luts_routing=2 * 376
        )
        assert stage_logic_power_uw(100, SpeedGrade.G2, doubled) == pytest.approx(
            2 * stage_logic_power_uw(100, SpeedGrade.G2)
        )

    def test_signal_fraction_in_unit_range(self):
        assert 0.0 < signal_power_fraction() < 1.0
