"""Device catalog (repro.fpga.catalog)."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.catalog import DEVICE_CATALOG, XC6VLX760, get_device


class TestCatalog:
    def test_paper_device_present(self):
        assert "XC6VLX760" in DEVICE_CATALOG

    def test_table2_values(self):
        # the paper's Table II
        assert XC6VLX760.logic_cells // 1000 == 758
        assert round(XC6VLX760.bram_kbits / 1000) == 26
        assert round(XC6VLX760.distributed_ram_kbits / 1000) == 8
        assert XC6VLX760.max_io_pins == 1200

    def test_lookup_case_insensitive(self):
        assert get_device("xc6vlx760") is XC6VLX760

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError, match="unknown device"):
            get_device("XC7VX690T")

    def test_all_entries_self_consistent(self):
        for device in DEVICE_CATALOG.values():
            assert device.bram18_blocks % 2 == 0
            assert device.slice_registers >= device.slice_luts
