"""Analytical power models Eq. 2/4/6 (repro.core.power)."""

import numpy as np
import pytest

from repro.core.power import AnalyticalPowerModel
from repro.core.resources import engine_stage_map, merged_stage_map
from repro.errors import ConfigurationError
from repro.fpga.clocking import ClockGating
from repro.fpga.speedgrade import SpeedGrade
from repro.units import BRAM36K_BITS


@pytest.fixture(scope="module")
def base_stats():
    from repro.iplookup.leafpush import leaf_push
    from repro.iplookup.synth import SyntheticTableConfig, generate_table
    from repro.iplookup.trie import UnibitTrie

    table = generate_table(SyntheticTableConfig(n_prefixes=400, seed=3))
    return leaf_push(UnibitTrie(table)).stats()


@pytest.fixture(scope="module")
def base_map(base_stats):
    return engine_stage_map(base_stats, 28)


@pytest.fixture(scope="module")
def model():
    return AnalyticalPowerModel(SpeedGrade.G2)


class TestComponentTerms:
    def test_static_is_paper_value(self, model):
        assert model.static_w == pytest.approx(4.5)

    def test_stage_logic_line(self, model):
        assert model.stage_logic_power_w(300) == pytest.approx(5.180 * 300 * 1e-6)

    def test_stage_memory_small_uses_18k_coefficient(self, model):
        p = model.stage_memory_power_w(1000, 200)
        assert p == pytest.approx(13.65 * 200 * 1e-6)

    def test_stage_memory_quantized(self, model):
        # one bit over 36 Kib: a 36 Kb block plus an 18 Kb primitive
        p = model.stage_memory_power_w(BRAM36K_BITS + 1, 200)
        assert p == pytest.approx((24.60 + 13.65) * 200 * 1e-6)

    def test_zero_memory_zero_power(self, model):
        assert model.stage_memory_power_w(0, 300) == 0.0


class TestEq2NonVirtualized:
    def test_static_scales_with_k(self, model, base_map):
        mu = np.full(5, 0.2)
        p = model.power_nv([base_map] * 5, 300, mu)
        assert p.static_w == pytest.approx(5 * 4.5)

    def test_uniform_dynamic_equals_one_engine_at_full(self, model, base_map):
        # Σ µi × engine = 1 × engine when tables are identical
        k = 4
        nv = model.power_nv([base_map] * k, 300, np.full(k, 1 / k))
        one = model.power_vs([base_map], 300, np.array([1.0]))
        assert nv.dynamic_w == pytest.approx(one.dynamic_w)

    def test_utilization_count_checked(self, model, base_map):
        with pytest.raises(ConfigurationError):
            model.power_nv([base_map] * 3, 300, np.array([0.5, 0.5]))


class TestEq4VirtualizedSeparate:
    def test_single_static(self, model, base_map):
        p = model.power_vs([base_map] * 8, 300, np.full(8, 1 / 8))
        assert p.static_w == pytest.approx(4.5)

    def test_k_invariant_under_assumption_1(self, model, base_map):
        # Eq. 4 with uniform µ: power independent of K
        totals = [
            model.power_vs([base_map] * k, 300, np.full(k, 1 / k)).total_w
            for k in (1, 4, 8, 15)
        ]
        assert max(totals) - min(totals) < 1e-12

    def test_savings_vs_nv_proportional_to_k(self, model, base_map):
        for k in (2, 8, 15):
            mu = np.full(k, 1 / k)
            nv = model.power_nv([base_map] * k, 300, mu).total_w
            vs = model.power_vs([base_map] * k, 300, mu).total_w
            assert nv - vs == pytest.approx((k - 1) * 4.5)

    def test_rejects_oversubscribed_mu(self, model, base_map):
        with pytest.raises(ConfigurationError):
            model.power_vs([base_map] * 2, 300, np.array([0.8, 0.8]))


class TestEq6VirtualizedMerged:
    def test_no_mu_scaling(self, model, base_stats):
        merged = merged_stage_map(base_stats, 8, 0.8, 28)
        p = model.power_vm(merged, 300)
        # dynamic power is the full engine, not an average
        single = engine_stage_map(base_stats, 28)
        p_single_full = model.power_vs([single], 300, np.array([1.0]))
        assert p.dynamic_w > p_single_full.dynamic_w

    def test_memory_power_grows_with_k(self, model, base_stats):
        powers = [
            model.power_vm(merged_stage_map(base_stats, k, 0.2, 28), 300).memory_w
            for k in (2, 8, 15)
        ]
        assert powers[0] < powers[1] < powers[2]

    def test_duty_cycle_scales_dynamic(self, model, base_stats):
        merged = merged_stage_map(base_stats, 4, 0.8, 28)
        full = model.power_vm(merged, 300, duty_cycle=1.0)
        half = model.power_vm(merged, 300, duty_cycle=0.5)
        assert half.dynamic_w == pytest.approx(full.dynamic_w / 2)
        assert half.static_w == full.static_w

    def test_rejects_bad_duty(self, model, base_stats):
        merged = merged_stage_map(base_stats, 4, 0.8, 28)
        with pytest.raises(ConfigurationError):
            model.power_vm(merged, 300, duty_cycle=0.0)


class TestClockGatingInteraction:
    def test_ungated_idle_costs_power(self, base_map):
        gated = AnalyticalPowerModel(SpeedGrade.G2)
        ungated = AnalyticalPowerModel(
            SpeedGrade.G2, clock_gating=ClockGating(gate_logic=False, gate_memory=False)
        )
        mu = np.full(8, 1 / 8)
        p_gated = gated.power_vs([base_map] * 8, 300, mu, duty_cycle=0.1)
        p_ungated = ungated.power_vs([base_map] * 8, 300, mu, duty_cycle=0.1)
        assert p_ungated.dynamic_w > 3 * p_gated.dynamic_w

    def test_grade_summary_mentions_constants(self):
        text = AnalyticalPowerModel(SpeedGrade.G2).grade_summary()
        assert "4.5" in text and "5.18" in text
