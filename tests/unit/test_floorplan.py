"""Floorplanner (repro.fpga.floorplan)."""

import pytest

from repro.errors import PlacementError
from repro.fpga.catalog import XC6VLX760
from repro.fpga.device import ResourceUsage
from repro.fpga.floorplan import Floorplan


def engine_usage(scale: int = 1) -> ResourceUsage:
    return ResourceUsage(
        registers=1689 * 28 * scale,
        luts_logic=336 * 28 * scale,
        luts_memory=126 * 28 * scale,
        luts_routing=376 * 28 * scale,
        bram36=20 * scale,
    )


class TestAllocation:
    def test_sequential_regions_do_not_overlap(self):
        fp = Floorplan(XC6VLX760)
        regions = [fp.allocate(engine_usage()) for _ in range(5)]
        for a, b in zip(regions, regions[1:]):
            assert a.row_end <= b.row_start + 1e-12

    def test_engine_indices(self):
        fp = Floorplan(XC6VLX760)
        regions = [fp.allocate(engine_usage()) for _ in range(3)]
        assert [r.engine_index for r in regions] == [0, 1, 2]

    def test_area_accumulates(self):
        fp = Floorplan(XC6VLX760)
        fp.allocate(engine_usage())
        one = fp.used_area_fraction()
        fp.allocate(engine_usage())
        assert fp.used_area_fraction() == pytest.approx(2 * one, rel=1e-6)

    def test_remaining_area(self):
        fp = Floorplan(XC6VLX760)
        fp.allocate(engine_usage())
        assert fp.remaining_area_fraction() == pytest.approx(
            1 - fp.used_area_fraction()
        )

    def test_full_die_rejected(self):
        fp = Floorplan(XC6VLX760)
        with pytest.raises(PlacementError):
            for _ in range(1000):
                fp.allocate(engine_usage(scale=4))

    def test_minimum_band_height(self):
        fp = Floorplan(XC6VLX760)
        region = fp.allocate(ResourceUsage(registers=1))
        assert region.height_rows >= 0.05

    def test_clock_regions_spanned(self):
        fp = Floorplan(XC6VLX760)
        small = fp.allocate(engine_usage())
        assert small.clock_regions_spanned >= 1
