"""Routing table container (repro.iplookup.rib)."""

import numpy as np
import pytest

from repro.errors import PrefixError
from repro.iplookup.prefix import parse_address, parse_prefix
from repro.iplookup.rib import NO_ROUTE, Route, RoutingTable


class TestConstruction:
    def test_from_strings(self, small_table):
        assert len(small_table) == 9

    def test_duplicate_insert_replaces(self):
        t = RoutingTable()
        p = parse_prefix("10.0.0.0/8")
        t.add(p, 1)
        t.add(p, 2)
        assert len(t) == 1
        assert t.next_hop_of(p) == 2

    def test_rejects_negative_next_hop(self):
        with pytest.raises(PrefixError):
            RoutingTable().add(parse_prefix("10.0.0.0/8"), -1)

    def test_route_rejects_negative_next_hop(self):
        with pytest.raises(PrefixError):
            Route(parse_prefix("10.0.0.0/8"), -2)

    def test_remove(self):
        t = RoutingTable()
        p = parse_prefix("10.0.0.0/8")
        t.add(p, 1)
        t.remove(p)
        assert len(t) == 0
        with pytest.raises(KeyError):
            t.remove(p)

    def test_parse_with_comments(self):
        text = """
        # a comment
        10.0.0.0/8 1
        192.168.0.0/16 2  # trailing comment
        """
        t = RoutingTable.parse(text)
        assert len(t) == 2

    def test_parse_rejects_bad_lines(self):
        with pytest.raises(PrefixError):
            RoutingTable.parse("10.0.0.0/8")
        with pytest.raises(PrefixError):
            RoutingTable.parse("10.0.0.0/8 x")

    def test_dumps_parse_roundtrip(self, small_table):
        text = small_table.dumps()
        again = RoutingTable.parse(text)
        assert again.routes() == small_table.routes()


class TestLookup:
    def test_longest_match_wins(self, small_table):
        addr = parse_address("10.1.1.129")
        assert small_table.lookup_linear(addr) == 5  # the /32

    def test_falls_back_through_nesting(self, small_table):
        assert small_table.lookup_linear(parse_address("10.1.1.1")) == 3
        assert small_table.lookup_linear(parse_address("10.1.2.1")) == 2
        assert small_table.lookup_linear(parse_address("10.2.0.0")) == 1

    def test_default_route_catches_rest(self, small_table):
        assert small_table.lookup_linear(parse_address("8.8.8.8")) == 0

    def test_no_route_without_default(self):
        t = RoutingTable.from_strings([("10.0.0.0/8", 1)])
        assert t.lookup_linear(parse_address("11.0.0.0")) == NO_ROUTE

    def test_empty_table(self):
        assert RoutingTable().lookup_linear(0) == NO_ROUTE

    def test_batch_matches_scalar(self, small_table, random_addresses):
        batch = small_table.lookup_linear_batch(random_addresses)
        scalar = np.array(
            [small_table.lookup_linear(int(a)) for a in random_addresses]
        )
        assert np.array_equal(batch, scalar)

    def test_batch_empty_table(self):
        out = RoutingTable().lookup_linear_batch(np.array([1, 2], dtype=np.uint32))
        assert (out == NO_ROUTE).all()


class TestStats:
    def test_length_histogram(self, small_table):
        hist = small_table.length_histogram()
        assert hist.sum() == len(small_table)
        assert hist[0] == 1  # default route
        assert hist[32] == 1

    def test_max_length(self, small_table):
        assert small_table.max_length() == 32

    def test_max_length_empty(self):
        assert RoutingTable().max_length() == 0

    def test_next_hops(self, small_table):
        assert small_table.next_hops() == set(range(9))

    def test_prefixes_sorted(self, small_table):
        prefixes = small_table.prefixes()
        assert prefixes == sorted(prefixes)

    def test_iteration_yields_routes(self, small_table):
        routes = list(small_table)
        assert all(isinstance(r, Route) for r in routes)
        assert len(routes) == len(small_table)


class TestFileIO:
    def test_roundtrip(self, small_table, tmp_path):
        path = str(tmp_path / "table.rib")
        small_table.to_file(path)
        loaded = RoutingTable.from_file(path, name="loaded")
        assert loaded.routes() == small_table.routes()

    def test_shipped_sample_loads(self):
        import os

        sample = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "data", "edge_sample.rib"
        )
        table = RoutingTable.from_file(sample)
        assert len(table) == 250
        assert table.max_length() <= 28


class TestRealDumpEdgeCases:
    """Shapes every collector snapshot contains (real-RIB ingest PR)."""

    def _table(self):
        table = RoutingTable()
        table.add(parse_prefix("0.0.0.0/0"), 0)
        table.add(parse_prefix("203.0.113.0/24"), 1)
        table.add(parse_prefix("203.0.113.7/32"), 2)
        table.add(parse_prefix("255.255.255.255/32"), 3)
        return table

    def test_max_length_host_route_wins_over_its_covering_prefix(self):
        table = self._table()
        assert table.lookup_linear(parse_address("203.0.113.7")) == 2
        assert table.lookup_linear(parse_address("203.0.113.8")) == 1
        assert table.lookup_linear(0xFFFFFFFF) == 3

    def test_default_route_catches_everything_else(self):
        table = self._table()
        assert table.lookup_linear(parse_address("198.51.100.1")) == 0
        assert table.max_length() == 32

    def test_duplicate_peer_announcements_keep_the_last_next_hop(self):
        table = self._table()
        table.add(parse_prefix("203.0.113.0/24"), 9)  # second peer, same prefix
        assert len(table) == 4
        assert table.next_hop_of(parse_prefix("203.0.113.0/24")) == 9

    def test_batch_oracle_agrees_on_the_edge_cases(self):
        table = self._table()
        addresses = np.array(
            [0, 0xFFFFFFFF, parse_address("203.0.113.7"), parse_address("8.8.8.8")],
            dtype=np.uint32,
        )
        expected = [table.lookup_linear(int(a)) for a in addresses]
        assert table.lookup_linear_batch(addresses).tolist() == expected

    def test_parse_prefix_accepts_the_extremes(self):
        assert parse_prefix("0.0.0.0/0").length == 0
        assert parse_prefix("255.255.255.255/32").length == 32
        with pytest.raises(PrefixError):
            parse_prefix("1.2.3.4/33")
