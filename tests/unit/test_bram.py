"""BRAM packing and power (repro.fpga.bram)."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.bram import (
    BramKind,
    blocks_required,
    bram_dynamic_power_uw,
    pack_stage_memory,
)
from repro.fpga.speedgrade import SpeedGrade
from repro.units import BRAM18K_BITS, BRAM36K_BITS


class TestBlocksRequired:
    def test_zero_bits_zero_blocks(self):
        assert blocks_required(0, BramKind.B18) == 0

    def test_one_bit_occupies_a_block(self):
        # the paper's quantization observation
        assert blocks_required(1, BramKind.B18) == 1
        assert blocks_required(1, BramKind.B36) == 1

    def test_exact_fit(self):
        assert blocks_required(BRAM18K_BITS, BramKind.B18) == 1
        assert blocks_required(BRAM36K_BITS, BramKind.B36) == 1

    def test_ceiling(self):
        assert blocks_required(BRAM18K_BITS + 1, BramKind.B18) == 2

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            blocks_required(-1, BramKind.B18)


class TestPacking:
    def test_zero(self):
        p = pack_stage_memory(0)
        assert p.blocks36 == 0 and p.blocks18 == 0
        assert p.capacity_bits == 0

    def test_small_memory_uses_single_18k(self):
        p = pack_stage_memory(1000)
        assert p.blocks36 == 0 and p.blocks18 == 1

    def test_trailing_primitive(self):
        p = pack_stage_memory(BRAM36K_BITS + 1000)
        assert p.blocks36 == 1 and p.blocks18 == 1

    def test_large_remainder_promotes(self):
        p = pack_stage_memory(BRAM36K_BITS + BRAM18K_BITS + 1)
        assert p.blocks36 == 2 and p.blocks18 == 0

    def test_capacity_covers_bits(self):
        for bits in (1, 17_000, 40_000, 100_000, 1_000_000):
            p = pack_stage_memory(bits)
            assert p.capacity_bits >= bits
            assert p.waste_bits == p.capacity_bits - bits

    def test_wide_ports_force_parallel_blocks(self):
        # 144-bit read from a tiny memory needs ceil(144/72) = 2 blocks
        p = pack_stage_memory(100, width=144)
        assert p.total_blocks18_equivalent >= 4  # two 36 Kb blocks

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            pack_stage_memory(100, width=0)


class TestDynamicPower:
    def test_table3_operating_point(self):
        # at the paper's operating point the secondary factors are 1
        p = bram_dynamic_power_uw(300, SpeedGrade.G2, BramKind.B18)
        assert p == pytest.approx(13.65 * 300)
        p = bram_dynamic_power_uw(300, SpeedGrade.G1L, BramKind.B36)
        assert p == pytest.approx(19.70 * 300)

    def test_linear_in_frequency(self):
        p1 = bram_dynamic_power_uw(100, SpeedGrade.G2, BramKind.B36)
        p5 = bram_dynamic_power_uw(500, SpeedGrade.G2, BramKind.B36)
        assert p5 == pytest.approx(5 * p1)

    def test_linear_in_block_count(self):
        one = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B18, 1)
        ten = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B18, 10)
        assert ten == pytest.approx(10 * one)

    def test_write_rate_increases_power(self):
        lo = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B18, write_rate=0.01)
        hi = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B18, write_rate=0.5)
        assert hi > lo

    def test_width_effect_is_weak(self):
        # paper: "the effect of bit width was negligible"
        narrow = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B18, read_width=9)
        wide = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B18, read_width=36)
        assert abs(wide - narrow) / narrow < 0.10

    def test_enable_rate_gates_power(self):
        full = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B18, enable_rate=1.0)
        half = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B18, enable_rate=0.5)
        off = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B18, enable_rate=0.0)
        assert half == pytest.approx(full / 2)
        assert off == 0.0

    def test_low_power_grade_cheaper(self):
        g2 = bram_dynamic_power_uw(200, SpeedGrade.G2, BramKind.B36)
        g1l = bram_dynamic_power_uw(200, SpeedGrade.G1L, BramKind.B36)
        assert g1l < g2

    def test_rejects_negative_frequency(self):
        with pytest.raises(ConfigurationError):
            bram_dynamic_power_uw(-1, SpeedGrade.G2, BramKind.B18)

    def test_rejects_negative_blocks(self):
        with pytest.raises(ConfigurationError):
            bram_dynamic_power_uw(100, SpeedGrade.G2, BramKind.B18, -1)

    @pytest.mark.parametrize(
        "kwargs",
        [{"write_rate": 1.5}, {"read_width": 0}, {"enable_rate": -0.1}],
    )
    def test_rejects_bad_keyword_arguments(self, kwargs):
        with pytest.raises(ConfigurationError):
            bram_dynamic_power_uw(100, SpeedGrade.G2, BramKind.B18, **kwargs)
