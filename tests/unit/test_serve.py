"""Unit tests for the batched serving layer (repro.serve)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MalformedBatchError
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.serve import LookupService
from repro.virt.schemes import Scheme

K = 3


@pytest.fixture(scope="module")
def tables():
    config = SyntheticTableConfig(n_prefixes=300, seed=11)
    return generate_virtual_tables(K, 0.5, config)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(99)
    addresses = rng.integers(0, 1 << 32, size=2000, dtype=np.uint64).astype(np.uint32)
    vnids = rng.integers(0, K, size=2000, dtype=np.int64)
    return addresses, vnids


class TestServing:
    @pytest.mark.parametrize("scheme", [Scheme.NV, Scheme.VS, Scheme.VM])
    def test_results_match_linear_oracle(self, tables, batch, scheme):
        service = LookupService(tables, scheme)
        assert service.verify(*batch)

    @pytest.mark.parametrize("scheme", [Scheme.NV, Scheme.VM])
    def test_all_schemes_agree(self, tables, batch, scheme):
        reference = LookupService(tables, Scheme.VS).lookup_batch(*batch)
        assert np.array_equal(LookupService(tables, scheme).lookup_batch(*batch), reference)

    def test_arrival_order_preserved(self, tables, batch):
        """Scatter back from per-engine shares must restore batch order."""
        addresses, vnids = batch
        service = LookupService(tables, Scheme.NV)
        results, _ = service.serve(addresses, vnids)
        for i in [0, 17, 1999]:
            expected = tables[int(vnids[i])].lookup_linear(int(addresses[i]))
            assert results[i] == expected

    def test_empty_batch(self, tables):
        empty = np.array([], dtype=np.uint32)
        results, trace = LookupService(tables, Scheme.VM).serve(empty, empty.astype(np.int64))
        assert len(results) == 0
        assert trace.n_packets == 0
        assert trace.mean_duty_cycle() == 0.0


class TestServeTrace:
    def test_engine_counts(self, tables, batch):
        assert LookupService(tables, Scheme.NV).serve(*batch)[1].n_engines == K
        assert LookupService(tables, Scheme.VS).serve(*batch)[1].n_engines == K
        assert LookupService(tables, Scheme.VM).serve(*batch)[1].n_engines == 1

    def test_engine_loads_partition_the_batch(self, tables, batch):
        _, trace = LookupService(tables, Scheme.NV).serve(*batch)
        loads = trace.engine_loads()
        assert loads.shape == (K,)
        assert loads.sum() == pytest.approx(1.0)
        _, vnids = batch
        expected = np.bincount(vnids, minlength=K) / len(vnids)
        assert np.allclose(loads, expected)

    def test_stage_accesses_and_duty_cycle(self, tables, batch):
        service = LookupService(tables, Scheme.VM)
        _, trace = service.serve(*batch)
        accesses = trace.stage_accesses()
        assert accesses.shape == (service.n_stages,)
        # every packet touches stage 0 of the shared engine
        assert accesses[0] == trace.n_packets
        assert 0.0 < trace.mean_duty_cycle() <= 1.0

    def test_latency_and_host_rate(self, tables, batch):
        _, trace = LookupService(tables, Scheme.VM).serve(*batch)
        assert trace.latency.total_ns > 0
        assert trace.host_ops_per_s > 0
        assert trace.elapsed_s > 0

    def test_capacity_scales_with_engines(self, tables):
        nv = LookupService(tables, Scheme.NV)
        vm = LookupService(tables, Scheme.VM)
        assert nv.capacity_gbps() == pytest.approx(K * vm.capacity_gbps())


class TestValidation:
    def test_needs_tables(self):
        with pytest.raises(ConfigurationError):
            LookupService([], Scheme.VM)

    def test_rejects_bad_parameters(self, tables):
        with pytest.raises(ConfigurationError):
            LookupService(tables, n_stages=0)
        with pytest.raises(ConfigurationError):
            LookupService(tables, frequency_mhz=0)
        with pytest.raises(ConfigurationError):
            LookupService(tables, offered_load_fraction=1.0)

    def test_rejects_mismatched_batch(self, tables):
        service = LookupService(tables, Scheme.VM)
        with pytest.raises(MalformedBatchError) as err:
            service.serve(np.zeros(3, dtype=np.uint32), np.zeros(2, dtype=np.int64))
        assert err.value.kind == "truncated"

    def test_rejects_out_of_range_vnid(self, tables):
        service = LookupService(tables, Scheme.VM)
        with pytest.raises(MalformedBatchError) as err:
            service.serve(np.zeros(2, dtype=np.uint32), np.array([0, K], dtype=np.int64))
        assert err.value.kind == "vnid_range"

    def test_merged_only_for_vm(self, tables):
        assert LookupService(tables, Scheme.VM).merged() is not None
        with pytest.raises(ConfigurationError):
            LookupService(tables, Scheme.NV).merged()


class TestRealDumpDepths:
    """``n_stages=None`` regressions: real dumps carry /32 host routes."""

    def _real_shaped_tables(self):
        from repro.iplookup.rib import RoutingTable

        # default route + nested aggregates + a /32 blackhole, the
        # shapes a collector snapshot always contains
        t0 = RoutingTable.from_strings(
            [
                ("0.0.0.0/0", 0),
                ("10.0.0.0/8", 1),
                ("10.1.0.0/16", 2),
                ("203.0.113.7/32", 3),
            ]
        )
        t1 = RoutingTable.from_strings(
            [("0.0.0.0/0", 4), ("203.0.113.0/24", 5), ("203.0.113.7/32", 6)]
        )
        return [t0, t1]

    @pytest.mark.parametrize("scheme", [Scheme.NV, Scheme.VS, Scheme.VM])
    def test_auto_depth_service_matches_oracle(self, scheme):
        tables = self._real_shaped_tables()
        service = LookupService(tables, scheme, n_stages=None)
        assert service.n_stages == 32
        rng = np.random.default_rng(7)
        addresses = rng.integers(0, 1 << 32, size=500, dtype=np.uint64).astype(np.uint32)
        addresses[:3] = [0xCB007107, 0xCB007100, 0]  # /32 hit, /24 hit, default
        vnids = rng.integers(0, len(tables), size=500, dtype=np.int64)
        assert service.verify(addresses, vnids)

    def test_explicit_28_stages_still_rejected_for_depth_32(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            LookupService(self._real_shaped_tables(), Scheme.VM, n_stages=28)
