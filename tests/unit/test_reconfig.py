"""Reconfiguration model (repro.fpga.reconfig)."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.catalog import XC6VLX240T, XC6VLX760
from repro.fpga.reconfig import (
    ICAP_BYTES_PER_SECOND,
    full_bitstream_bytes,
    full_reconfig_time_ms,
    memory_load_time_ms,
    partial_reconfig_time_ms,
)


class TestBitstreams:
    def test_lx760_bitstream_near_documented_size(self):
        # Virtex-6 LX760 full bitstream is ~184 Mb ≈ 23 MB
        bits = full_bitstream_bytes(XC6VLX760) * 8
        assert 150e6 < bits < 220e6

    def test_smaller_device_smaller_bitstream(self):
        assert full_bitstream_bytes(XC6VLX240T) < full_bitstream_bytes(XC6VLX760)


class TestTimes:
    def test_full_reconfig_tens_of_ms(self):
        t = full_reconfig_time_ms(XC6VLX760)
        assert 20 < t < 120

    def test_partial_scales_with_region(self):
        half = partial_reconfig_time_ms(0.5)
        tenth = partial_reconfig_time_ms(0.1)
        assert half == pytest.approx(5 * tenth)
        assert partial_reconfig_time_ms(1.0) == pytest.approx(full_reconfig_time_ms())

    def test_partial_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            partial_reconfig_time_ms(0.0)
        with pytest.raises(ConfigurationError):
            partial_reconfig_time_ms(1.5)

    def test_memory_load_time(self):
        # 18 Kib at 18-bit words and 100 MHz: 1024 cycles ≈ 0.01 ms
        t = memory_load_time_ms(18 * 1024, 100.0)
        assert t == pytest.approx(1024 / 100e6 * 1e3)

    def test_memory_load_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            memory_load_time_ms(-1, 100)
        with pytest.raises(ConfigurationError):
            memory_load_time_ms(100, 0)

    def test_icap_bandwidth_constant(self):
        assert ICAP_BYTES_PER_SECOND == pytest.approx(400e6)
