"""Unit tests for power telemetry and serve instrumentation (repro.obs)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ObservabilityError
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.power import PowerTelemetrySampler
from repro.obs.registry import REGISTRY, MetricsRegistry
from repro.obs.tracing import TRACER
from repro.serve import LookupService
from repro.virt.schemes import Scheme

K = 3


@pytest.fixture(scope="module")
def tables():
    return generate_virtual_tables(K, 0.5, SyntheticTableConfig(n_prefixes=250, seed=21))


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(5)
    addresses = rng.integers(0, 1 << 32, size=300, dtype=np.uint64).astype(np.uint32)
    vnids = np.repeat(np.arange(K, dtype=np.int64), 100)
    return addresses, vnids


@pytest.fixture()
def obs_enabled():
    """Enable the process-wide registry+tracer, restore/clean afterwards."""
    REGISTRY.enable()
    TRACER.enable()
    yield REGISTRY
    REGISTRY.disable()
    TRACER.disable()
    REGISTRY.clear()
    TRACER.drain()


def make_sampler(scheme, *, k=K, registry=None):
    alpha = 0.8 if scheme is Scheme.VM else None
    return PowerTelemetrySampler(scheme, k, alpha=alpha, registry=registry)


class TestPerVnAttribution:
    @pytest.mark.parametrize("scheme", [Scheme.NV, Scheme.VS, Scheme.VM])
    def test_per_vn_sums_to_total(self, tables, batch, scheme):
        service = LookupService(tables, scheme)
        _, trace = service.serve(*batch)
        sample = make_sampler(scheme).sample(trace)
        assert sum(sample.per_vn_w) == pytest.approx(sample.total_w, rel=1e-12)

    def test_nv_charges_whole_devices(self, tables, batch):
        """NV per-VN power includes a full device's static share each."""
        _, trace = LookupService(tables, Scheme.NV).serve(*batch)
        sample = make_sampler(Scheme.NV).sample(trace)
        assert all(w > sample.static_w / K * 0.99 for w in sample.per_vn_w)

    def test_vm_attribution_follows_lookup_share(self, tables):
        """A VN sending more lookups is charged more dynamic power."""
        rng = np.random.default_rng(9)
        addresses = rng.integers(0, 1 << 32, size=300, dtype=np.uint64).astype(np.uint32)
        vnids = np.concatenate(
            [np.zeros(200, dtype=np.int64), np.ones(50, dtype=np.int64),
             np.full(50, 2, dtype=np.int64)]
        )
        REGISTRY.enable()
        try:
            _, trace = LookupService(tables, Scheme.VM).serve(addresses, vnids)
        finally:
            REGISTRY.disable()
            REGISTRY.clear()
            TRACER.drain()
        assert trace.vn_counts == (200, 50, 50)
        sample = make_sampler(Scheme.VM).sample(trace)
        assert sample.per_vn_w[0] > sample.per_vn_w[1]
        assert sample.per_vn_w[1] == pytest.approx(sample.per_vn_w[2])

    def test_per_vn_gbps_and_efficiency(self, tables, batch):
        _, trace = LookupService(tables, Scheme.VS).serve(*batch)
        sample = make_sampler(Scheme.VS).sample(trace, duty_cycle=0.5)
        assert sum(sample.per_vn_gbps) == pytest.approx(
            sample.throughput_gbps * 0.5, rel=1e-12
        )
        assert all(np.isfinite(sample.per_vn_mw_per_gbps()))


class TestSamplerValidation:
    def test_scheme_mismatch_rejected(self, tables, batch):
        _, trace = LookupService(tables, Scheme.VS).serve(*batch)
        with pytest.raises(ObservabilityError):
            make_sampler(Scheme.VM).sample(trace)

    def test_engine_count_mismatch_rejected(self, tables, batch):
        _, trace = LookupService(tables, Scheme.VS).serve(*batch)
        with pytest.raises(ObservabilityError):
            make_sampler(Scheme.VS, k=K + 1).sample(trace)

    def test_bad_duty_cycle_rejected(self, tables, batch):
        _, trace = LookupService(tables, Scheme.VS).serve(*batch)
        with pytest.raises(ConfigurationError):
            make_sampler(Scheme.VS).sample(trace, duty_cycle=-0.1)
        with pytest.raises(ConfigurationError):
            make_sampler(Scheme.VS).sample(trace, duty_cycle=1.5)

    def test_idle_duty_cycle_is_static_only(self, tables, batch):
        """duty_cycle=0 models an idle device: static watts, zero Gbps."""
        _, trace = LookupService(tables, Scheme.VS).serve(*batch)
        sample = make_sampler(Scheme.VS).sample(trace, duty_cycle=0.0)
        assert sample.static_w > 0.0
        assert sample.dynamic_w == pytest.approx(0.0, abs=1e-9)
        assert sample.per_vn_gbps == (0.0,) * K

    def test_vn_count_length_mismatch_rejected(self, tables, batch):
        REGISTRY.enable()
        try:
            _, trace = LookupService(tables, Scheme.VM).serve(*batch)
        finally:
            REGISTRY.disable()
            REGISTRY.clear()
            TRACER.drain()
        sampler = make_sampler(Scheme.VM)
        object.__setattr__(trace, "vn_counts", (1, 2))
        with pytest.raises(ObservabilityError):
            sampler.sample(trace)


class TestRunningTelemetry:
    def test_packet_weighted_running_mean(self, tables, batch):
        sampler = make_sampler(Scheme.VS, registry=MetricsRegistry())
        _, trace = LookupService(tables, Scheme.VS).serve(*batch)
        first = sampler.observe(trace, duty_cycle=1.0)
        second = sampler.observe(trace, duty_cycle=0.5)
        assert sampler.batches_observed == 2
        assert sampler.packets_observed == 2 * trace.n_packets
        expected = (first.total_w + second.total_w) / 2
        assert sampler.running_total_w == pytest.approx(expected)
        assert sum(sampler.running_per_vn_w) == pytest.approx(sampler.running_total_w)
        assert sampler.running_mw_per_gbps > 0

    def test_empty_history_reports_zero(self):
        sampler = make_sampler(Scheme.VS, registry=MetricsRegistry())
        assert sampler.running_total_w == 0.0
        assert sampler.running_mw_per_gbps == 0.0
        assert sampler.running_per_vn_w == (0.0,) * K


class TestPublish:
    def test_gauges_published_when_enabled(self, tables, batch):
        registry = MetricsRegistry(enabled=True)
        sampler = make_sampler(Scheme.VS, registry=registry)
        _, trace = LookupService(tables, Scheme.VS).serve(*batch)
        sample = sampler.observe(trace)
        total = registry.get("repro_power_total_watts").labels("VS", "G2")
        assert total.value == pytest.approx(sample.total_w)
        components = registry.get("repro_power_component_watts")
        summed = sum(child.value for _, child in components.samples())
        assert summed == pytest.approx(sample.total_w)
        vn = registry.get("repro_power_vn_watts")
        assert sum(child.value for _, child in vn.samples()) == pytest.approx(
            sample.total_w
        )

    def test_disabled_registry_not_touched(self, tables, batch):
        registry = MetricsRegistry(enabled=False)
        sampler = make_sampler(Scheme.VS, registry=registry)
        _, trace = LookupService(tables, Scheme.VS).serve(*batch)
        sampler.observe(trace)
        assert registry.collect() == []


class TestServeInstrumentation:
    def test_fast_path_skips_vn_counts(self, tables, batch):
        _, trace = LookupService(tables, Scheme.VS).serve(*batch)
        assert trace.vn_counts == ()
        assert trace.vn_loads().size == 0

    def test_enabled_path_tracks_vn_counts_and_metrics(self, tables, batch, obs_enabled):
        service = LookupService(tables, Scheme.VS)
        _, trace = service.serve(*batch)
        assert trace.vn_counts == (100, 100, 100)
        assert np.allclose(trace.vn_loads(), 1.0 / K)
        registry = obs_enabled
        assert registry.get("repro_serve_batches_total").labels("VS").value == 1.0
        lookups = registry.get("repro_serve_lookups_total")
        assert sum(c.value for _, c in lookups.samples()) == trace.n_packets
        latency = registry.get("repro_serve_batch_latency_seconds").labels("VS")
        assert latency.count == 1
        assert registry.get("repro_serve_duty_cycle").labels("VS").value > 0.0
        assert registry.get("repro_serve_queue_depth").labels("VS").value > 0.0

    def test_results_identical_with_and_without_metrics(self, tables, batch, obs_enabled):
        service = LookupService(tables, Scheme.VM)
        instrumented, _ = service.serve(*batch)
        obs_enabled.disable()
        TRACER.disable()
        plain, _ = service.serve(*batch)
        assert np.array_equal(instrumented, plain)

    def test_serve_emits_span_with_power(self, tables, batch, obs_enabled):
        sampler = make_sampler(Scheme.VS)
        service = LookupService(tables, Scheme.VS, power_sampler=sampler)
        service.serve(*batch)
        span = next(s for s in TRACER.spans() if s.name == "serve.batch")
        assert span.attributes["scheme"] == "VS"
        assert span.attributes["n_packets"] == 300
        assert span.attributes["power_total_w"] > 0.0
        assert sampler.batches_observed == 1

    def test_trie_node_visits_counted(self, tables, batch, obs_enabled):
        LookupService(tables, Scheme.VS).serve(*batch)
        LookupService(tables, Scheme.VM).serve(*batch)
        visits = obs_enabled.get("repro_trie_node_visits_total")
        values = {key[0]: child.value for key, child in visits.samples()}
        # every packet touches at least the root on both structures
        assert values["unibit"] >= 300
        assert values["merged"] >= 300
