"""Unit tests for the composable serve pipeline stages (repro.serve.stages)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MalformedBatchError
from repro.faults.policy import SHED_RESULT, DegradationPolicy
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.serve.stages import (
    EngineGroup,
    admit_count,
    admit_indices,
    degraded_utilizations,
    plan_admission,
    validate_batch,
    walk_nominal,
)
from repro.virt.schemes import Scheme

K = 3


@pytest.fixture(scope="module")
def tables():
    config = SyntheticTableConfig(n_prefixes=200, seed=5)
    return generate_virtual_tables(K, 0.5, config)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(17)
    addresses = rng.integers(0, 1 << 32, size=1500, dtype=np.uint64).astype(np.uint32)
    vnids = rng.integers(0, K, size=1500, dtype=np.int64)
    return addresses, vnids


class TestValidateBatch:
    def test_accepts_and_normalizes(self, batch):
        addresses, vnids = batch
        out_a, out_v = validate_batch(list(addresses), list(vnids), K)
        assert out_a.dtype == np.uint32
        assert out_v.dtype == np.int64
        assert np.array_equal(out_a, addresses)

    @pytest.mark.parametrize(
        "addresses,vnids,kind",
        [
            (np.zeros((2, 2)), np.zeros(4, dtype=np.int64), "shape"),
            (np.zeros(3, dtype=np.uint32), np.zeros(2, dtype=np.int64), "truncated"),
            (np.array(["a", "b"]), np.zeros(2, dtype=np.int64), "dtype"),
            (np.array([np.nan, 1.0]), np.zeros(2, dtype=np.int64), "non_finite"),
            (np.array([-1, 2], dtype=np.int64), np.zeros(2, dtype=np.int64), "address_range"),
            (np.zeros(2, dtype=np.uint32), np.array([0, K], dtype=np.int64), "vnid_range"),
        ],
    )
    def test_rejection_kinds(self, addresses, vnids, kind):
        with pytest.raises(MalformedBatchError) as err:
            validate_batch(addresses, vnids, K)
        assert err.value.kind == kind


class TestEngineGroup:
    def test_per_vn_engines(self, tables):
        group = EngineGroup(tables, Scheme.NV, 28)
        assert group.n_engines == K
        assert group.merged is None
        assert len(group.tries) == K

    def test_merged_engine(self, tables):
        group = EngineGroup(tables, Scheme.VM, 28)
        assert group.n_engines == 1
        assert group.merged is not None

    def test_rejects_empty_tables(self):
        with pytest.raises(ConfigurationError):
            EngineGroup([], Scheme.NV, 28)

    def test_rejects_insufficient_stages(self, tables):
        with pytest.raises(ConfigurationError):
            EngineGroup(tables, Scheme.NV, 1)


class TestAdmission:
    def test_nominal_admits_everything(self):
        policy = DegradationPolicy()
        admit = plan_admission(np.ones(3), 0.5, policy)
        assert np.allclose(admit, 1.0)

    def test_degraded_engine_sheds_proportionally(self):
        policy = DegradationPolicy()
        scales = np.array([1.0, 0.4, 0.0])
        admit = plan_admission(scales, 0.8, policy)
        assert admit[0] == pytest.approx(1.0)
        assert 0.0 < admit[1] < 1.0
        assert admit[2] == pytest.approx(0.0)

    def test_degraded_utilizations_stay_stable(self):
        policy = DegradationPolicy()
        scales = np.array([1.0, 0.3, 0.05])
        rho = degraded_utilizations(scales, 0.9, policy)
        assert np.all(rho < 1.0)
        assert np.all(rho >= 0.0)

    def test_admit_count_head_of_slice(self):
        vn_shed = np.zeros(4, dtype=np.int64)
        kept = admit_count(100, 0.25, 2, vn_shed)
        assert kept == 25
        assert vn_shed[2] == 75
        assert vn_shed.sum() == 75

    def test_admit_indices_shared_engine_fraction(self):
        vnids = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=np.int64)
        vn_shed = np.zeros(2, dtype=np.int64)
        kept = admit_indices(vnids, 2, 0.5, vn_shed)
        # the merged engine sheds every VN's tail at the same fraction
        assert np.array_equal(np.sort(vnids[kept]), np.array([0, 0, 1, 1]))
        assert vn_shed.tolist() == [2, 2]

    def test_admit_indices_full_admission_is_identity(self):
        vnids = np.array([0, 0, 1], dtype=np.int64)
        vn_shed = np.zeros(2, dtype=np.int64)
        kept = admit_indices(vnids, 2, 1.0, vn_shed)
        assert np.array_equal(kept, np.arange(3))
        assert vn_shed.sum() == 0


class TestWalkNominal:
    @pytest.mark.parametrize("scheme", [Scheme.NV, Scheme.VS, Scheme.VM])
    def test_matches_linear_oracle(self, tables, batch, scheme):
        addresses, vnids = batch
        group = EngineGroup(tables, scheme, 28)
        results, traces = walk_nominal(group, addresses, vnids)
        assert len(traces) == group.n_engines
        for vn in range(K):
            mask = vnids == vn
            oracle = tables[vn].lookup_linear_batch(addresses[mask])
            assert np.array_equal(results[mask], oracle)

    def test_trace_packets_partition_the_batch(self, tables, batch):
        addresses, vnids = batch
        group = EngineGroup(tables, Scheme.VS, 28)
        _, traces = walk_nominal(group, addresses, vnids)
        assert sum(t.n_packets for t in traces) == len(addresses)


class TestShedResult:
    def test_sentinel_is_reserved(self):
        # SHED_RESULT must never collide with a real next hop
        assert SHED_RESULT < 0


class TestAutoDepthEngineGroup:
    """``n_stages=None`` regression: real tables carry /32 routes."""

    def _tables(self):
        from repro.iplookup.rib import RoutingTable

        return [
            RoutingTable.from_strings(
                [("0.0.0.0/0", 0), ("203.0.113.7/32", 1), ("10.0.0.0/8", 2)]
            ),
            RoutingTable.from_strings([("10.0.0.0/8", 3)]),
        ]

    def test_none_resolves_to_deepest_table(self):
        group = EngineGroup(self._tables(), Scheme.NV, n_stages=None)
        assert group.n_stages == 32

    def test_explicit_shallow_pipeline_still_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            EngineGroup(self._tables(), Scheme.NV, n_stages=28)

    def test_auto_depth_answers_match_the_oracle(self):
        tables = self._tables()
        group = EngineGroup(tables, Scheme.VM, n_stages=None)
        rng = np.random.default_rng(3)
        addresses = rng.integers(0, 1 << 32, size=400, dtype=np.uint64).astype(np.uint32)
        addresses[:4] = [0, 0xFFFFFFFF, 0xCB007107, 0x0A000001]
        vnids = rng.integers(0, 2, size=400, dtype=np.int64)
        results, _ = walk_nominal(group, addresses, vnids)
        expected = np.stack([t.lookup_linear_batch(addresses) for t in tables])[
            vnids, np.arange(len(addresses))
        ]
        assert np.array_equal(results, expected)
