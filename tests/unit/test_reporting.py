"""Reporting containers and rendering (repro.reporting)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.reporting.registry import all_experiments, get_experiment
from repro.reporting.result import ExperimentResult, Series
from repro.reporting.tables import render_kv, render_table


def make_result() -> ExperimentResult:
    r = ExperimentResult(
        experiment_id="demo",
        title="Demo result",
        x_label="K",
        x_values=np.array([1.0, 2.0, 3.0]),
    )
    r.add_series("alpha", [1.5, 2.5, 3.5])
    r.add_series("beta", [0.1, 0.2, 0.3])
    return r


class TestExperimentResult:
    def test_get_series(self):
        r = make_result()
        assert list(r.get("alpha")) == [1.5, 2.5, 3.5]

    def test_unknown_series(self):
        with pytest.raises(ExperimentError):
            make_result().get("gamma")

    def test_length_mismatch_rejected(self):
        r = make_result()
        with pytest.raises(ExperimentError):
            r.add_series("bad", [1.0])

    def test_labels_in_order(self):
        assert make_result().labels() == ["alpha", "beta"]

    def test_series_must_be_1d(self):
        with pytest.raises(ExperimentError):
            Series("x", np.zeros((2, 2)))

    def test_render_contains_everything(self):
        r = make_result()
        r.add_note("a note")
        text = r.render()
        assert "demo" in text and "alpha" in text and "a note" in text
        assert "1.5" in text

    def test_csv_roundtrip_shape(self):
        csv = make_result().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "K,alpha,beta"
        assert len(lines) == 4

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        make_result().write_csv(str(path))
        assert path.read_text().startswith("K,alpha,beta")

    def test_integer_x_rendered_without_decimal(self):
        rows = make_result().to_rows()
        assert rows[1][0] == "1"


class TestTables:
    def test_render_table_alignment(self):
        text = render_table([["name", "value"], ["a", "1"], ["bb", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0]

    def test_render_empty(self):
        assert render_table([]) == ""

    def test_render_kv(self):
        text = render_kv([("key", "value"), ("longer-key", "x")])
        assert "key" in text and "longer-key" in text

    def test_render_kv_empty(self):
        assert render_kv([]) == ""


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        registry = all_experiments()
        for experiment_id in (
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table2",
            "table3",
            "trie_stats",
            "claims",
        ):
            assert experiment_id in registry

    def test_get_unknown(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_runner_ids_attached(self):
        assert get_experiment("fig2").experiment_id == "fig2"


class TestAsciiChart:
    def _result(self):
        r = ExperimentResult(
            experiment_id="chart",
            title="Chart demo",
            x_label="K",
            x_values=np.arange(1.0, 6.0),
        )
        r.add_series("up", [1, 2, 3, 4, 5])
        r.add_series("down", [5, 4, 3, 2, 1])
        return r

    def test_renders_axes_and_legend(self):
        from repro.reporting.ascii_chart import render_chart

        text = render_chart(self._result())
        assert "Chart demo" in text
        assert "*=up" in text and "o=down" in text
        assert "5" in text and "1" in text

    def test_glyphs_plotted(self):
        from repro.reporting.ascii_chart import render_chart

        text = render_chart(self._result(), width=20, height=6)
        assert text.count("*") >= 3  # later series may overwrite some points

    def test_handles_nan_series(self):
        from repro.reporting.ascii_chart import render_chart

        r = self._result()
        r.add_series("gappy", [1, float("nan"), 3, float("nan"), 5])
        assert "gappy" in render_chart(r)

    def test_constant_series(self):
        from repro.reporting.ascii_chart import render_chart

        r = ExperimentResult(
            experiment_id="flat", title="flat", x_label="x", x_values=np.array([1.0, 2.0])
        )
        r.add_series("c", [3.0, 3.0])
        assert render_chart(r)

    def test_rejects_tiny_canvas(self):
        from repro.errors import ExperimentError
        from repro.reporting.ascii_chart import render_chart

        with pytest.raises(ExperimentError):
            render_chart(self._result(), width=4, height=2)

    def test_rejects_empty_result(self):
        from repro.errors import ExperimentError
        from repro.reporting.ascii_chart import render_chart

        empty = ExperimentResult(
            experiment_id="e", title="e", x_label="x", x_values=np.array([1.0])
        )
        with pytest.raises(ExperimentError):
            render_chart(empty)


class TestSvgChart:
    def _result(self):
        r = ExperimentResult(
            experiment_id="svg",
            title="SVG demo",
            x_label="K",
            x_values=np.arange(1.0, 6.0),
        )
        r.add_series("a", [1, 2, 3, 4, 5])
        r.add_series("b", [2, 2, 2, 2, 2])
        return r

    def test_valid_xml_with_series(self):
        import xml.dom.minidom

        from repro.reporting.svg_chart import render_svg

        svg = render_svg(self._result())
        doc = xml.dom.minidom.parseString(svg)
        assert doc.documentElement.tagName == "svg"
        assert len(doc.getElementsByTagName("polyline")) == 2

    def test_legend_and_labels_escaped(self):
        from repro.reporting.svg_chart import render_svg

        r = self._result()
        r.add_series("x<y&z", [0, 0, 0, 0, 0])
        svg = render_svg(r)
        assert "x&lt;y&amp;z" in svg

    def test_nan_points_skipped(self):
        import xml.dom.minidom

        from repro.reporting.svg_chart import render_svg

        r = self._result()
        r.add_series("gaps", [1, float("nan"), 3, float("nan"), 5])
        xml.dom.minidom.parseString(render_svg(r))

    def test_write_svg(self, tmp_path):
        from repro.reporting.svg_chart import write_svg

        path = tmp_path / "chart.svg"
        write_svg(self._result(), str(path))
        assert path.read_text().startswith("<svg")

    def test_rejects_empty(self):
        from repro.errors import ExperimentError
        from repro.reporting.svg_chart import render_svg

        empty = ExperimentResult(
            experiment_id="e", title="e", x_label="x", x_values=np.array([1.0])
        )
        with pytest.raises(ExperimentError):
            render_svg(empty)

    def test_constant_axis_handled(self):
        from repro.reporting.svg_chart import render_svg

        r = ExperimentResult(
            experiment_id="c", title="c", x_label="x", x_values=np.array([2.0])
        )
        r.add_series("point", [7.0])
        assert "<svg" in render_svg(r)
