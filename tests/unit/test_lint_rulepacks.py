"""Positive and negative fixtures for the project-scope rule packs.

Each rule gets a fixture that must fire and a near-miss that must stay
quiet, exercised through :func:`lint_paths` so the whole pipeline
(parse, project pass, suppression partitioning) is in the loop.
"""

import textwrap

from repro.staticcheck import LintConfig, lint_paths

#: minimal catalog served to the OBS pack from the fixture root
CATALOG = """
# Observability

## Metric catalog

| Metric | Labels | Unit | Meaning |
|---|---|---|---|
| `repro_demo_total` | `scheme` | lookups | demo counter |

## Span catalog

| Span | Emitted by | Attributes |
|---|---|---|
| `demo.batch` | demo | `scheme` |
| `fault.<kind>` | demo | `label` |
"""


def lint_fixture(tmp_path, files, select):
    """Write ``files`` under ``tmp_path`` and lint with only ``select``."""
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    config = LintConfig(select=set(select), root=tmp_path)
    return lint_paths([tmp_path], config)


def rules_fired(report):
    return sorted({finding.rule for finding in report.findings})


class TestDeterminismPack:
    def test_det001_unseeded_random_reachable_from_entry_point(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/exp.py": """
                    import random
                    from pkg.registry import register

                    def draw():
                        return random.random()

                    @register("exp")
                    def run():
                        return draw()
                    """
            },
            ["DET001"],
        )
        assert rules_fired(report) == ["DET001"]
        assert "poisons the content-addressed result cache" in report.findings[0].message

    def test_det001_seeded_rng_stays_quiet(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/exp.py": """
                    import random
                    from pkg.registry import register

                    @register("exp")
                    def run(seed):
                        return random.Random(seed).random()
                    """
            },
            ["DET001"],
        )
        assert report.findings == []

    def test_det002_wall_clock_via_helper(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/exp.py": """
                    import time
                    from pkg.registry import register

                    def stamp():
                        return time.time()

                    @register("exp")
                    def run():
                        return stamp()
                    """
            },
            ["DET002"],
        )
        assert rules_fired(report) == ["DET002"]

    def test_det002_unreachable_wall_clock_stays_quiet(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/exp.py": """
                    import time
                    from pkg.registry import register

                    def engine_side():
                        return time.time()

                    @register("exp")
                    def run():
                        return 0
                    """
            },
            ["DET002"],
        )
        assert report.findings == []

    def test_det003_environment_read(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/exp.py": """
                    import os
                    from pkg.registry import register

                    @register("exp")
                    def run():
                        return os.getenv("MODE")
                    """
            },
            ["DET003"],
        )
        assert rules_fired(report) == ["DET003"]

    def test_det004_set_iteration_fires_and_sorted_does_not(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/exp.py": """
                    from pkg.registry import register

                    @register("bad")
                    def run(items):
                        return [x for x in set(items)]

                    @register("good")
                    def run_sorted(items):
                        return [x for x in sorted(set(items))]
                    """
            },
            ["DET004"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].rule == "DET004"
        assert "'bad'" in report.findings[0].message


class TestFrozenPack:
    def test_frz001_self_write_outside_constructor(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/trie.py": """
                    class MergedTrie:
                        def __init__(self):
                            self.nodes = []

                        def grow(self):
                            self.version = 1
                    """
            },
            ["FRZ001"],
        )
        assert rules_fired(report) == ["FRZ001"]
        assert "'grow'" in report.findings[0].message

    def test_frz001_constructor_writes_are_allowed(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/trie.py": """
                    class MergedTrie:
                        def __init__(self):
                            self.nodes = []
                            self.version = 0

                        def size(self):
                            return len(self.nodes)
                    """
            },
            ["FRZ001"],
        )
        assert report.findings == []

    def test_frz001_write_through_binding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/use.py": """
                    class MergedTrie:
                        def __init__(self):
                            self.nodes = []

                    def clobber():
                        trie = MergedTrie()
                        trie.nodes = [1]
                        return trie
                    """
            },
            ["FRZ001"],
        )
        assert any("'trie'" in f.message for f in report.findings)

    def test_frz002_mutation_laundered_through_helper(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/use.py": """
                    class MergedTrie:
                        def __init__(self):
                            self.nodes = []

                    def _push(trie, node):
                        trie.nodes.append(node)

                    def insert(trie: MergedTrie, node):
                        _push(trie, node)
                    """
            },
            ["FRZ002"],
        )
        assert rules_fired(report) == ["FRZ002"]
        assert "mutates parameter 'trie'" in report.findings[0].message

    def test_frz002_read_only_helper_stays_quiet(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/use.py": """
                    class MergedTrie:
                        def __init__(self):
                            self.nodes = []

                    def _peek(trie):
                        return trie.nodes

                    def inspect(trie: MergedTrie):
                        return _peek(trie)
                    """
            },
            ["FRZ002"],
        )
        assert report.findings == []


class TestObsPack:
    def with_catalog(self, tmp_path, module, select):
        return lint_fixture(
            tmp_path,
            {"docs/OBSERVABILITY.md": CATALOG, "src/pkg/obs_use.py": module},
            select,
        )

    def test_obs001_uncatalogued_metric(self, tmp_path):
        report = self.with_catalog(
            tmp_path,
            """
            from pkg.registry import MetricsRegistry

            REG = MetricsRegistry()
            BAD = REG.counter("repro_mystery_total", "x", labels=("scheme",))
            GOOD = REG.counter("repro_demo_total", "x", labels=("scheme",))
            """,
            ["OBS001"],
        )
        assert len(report.findings) == 1
        assert "repro_mystery_total" in report.findings[0].message

    def test_obs002_label_mismatch(self, tmp_path):
        report = self.with_catalog(
            tmp_path,
            """
            from pkg.registry import MetricsRegistry

            REG = MetricsRegistry()
            BAD = REG.counter("repro_demo_total", "x", labels=("scheme", "vn"))
            """,
            ["OBS002"],
        )
        assert rules_fired(report) == ["OBS002"]
        assert "['scheme', 'vn']" in report.findings[0].message

    def test_obs002_matching_labels_stay_quiet(self, tmp_path):
        report = self.with_catalog(
            tmp_path,
            """
            from pkg.registry import MetricsRegistry

            REG = MetricsRegistry()
            GOOD = REG.counter("repro_demo_total", "x", labels=("scheme",))
            """,
            ["OBS002"],
        )
        assert report.findings == []

    def test_obs003_unknown_span_and_wildcard_match(self, tmp_path):
        report = self.with_catalog(
            tmp_path,
            """
            def trace(tracer, kind):
                with tracer.span("demo.batch"):
                    pass
                with tracer.span(f"fault.{kind}"):
                    pass
                with tracer.span("demo.unknown"):
                    pass
            """,
            ["OBS003"],
        )
        assert len(report.findings) == 1
        assert "demo.unknown" in report.findings[0].message

    def test_obs004_int_literal_observe(self, tmp_path):
        report = self.with_catalog(
            tmp_path,
            """
            def record(hist):
                hist.observe(5)
                hist.observe(0.5)
            """,
            ["OBS004"],
        )
        assert len(report.findings) == 1
        assert "int" in report.findings[0].message


class TestConcurrencyPack:
    def test_conc001_blocking_in_async_direct_and_via_helper(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/serve.py": """
                    import time

                    def settle():
                        time.sleep(0.1)

                    async def drain():
                        time.sleep(0.1)
                        settle()
                    """
            },
            ["CONC001"],
        )
        assert len(report.findings) == 2
        assert any("directly" in f.message for f in report.findings)
        assert any("via" in f.message for f in report.findings)

    def test_conc001_blocking_in_sync_function_is_fine(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/serve.py": """
                    import time

                    def settle():
                        time.sleep(0.1)

                    async def drain():
                        return 1
                    """
            },
            ["CONC001"],
        )
        assert report.findings == []

    def test_conc002_submitted_function_mutates_module_state(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/work.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    STATE = {}

                    def worker(x):
                        STATE[x] = True
                        return x

                    def launch(jobs):
                        pool = ProcessPoolExecutor()
                        return [pool.submit(worker, j) for j in jobs]
                    """
            },
            ["CONC002"],
        )
        assert rules_fired(report) == ["CONC002"]
        assert "'worker'" in report.findings[0].message

    def test_conc002_pure_worker_stays_quiet(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/work.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    def worker(x):
                        return x * 2

                    def launch(jobs):
                        pool = ProcessPoolExecutor()
                        return [pool.submit(worker, j) for j in jobs]
                    """
            },
            ["CONC002"],
        )
        assert report.findings == []

    def test_conc003_unpicklable_default_on_submitted_function(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/work.py": """
                    import threading
                    from concurrent.futures import ProcessPoolExecutor

                    def worker(x, lock=threading.Lock()):
                        return x

                    def launch(jobs):
                        pool = ProcessPoolExecutor()
                        return [pool.submit(worker, j) for j in jobs]
                    """
            },
            ["CONC003"],
        )
        assert rules_fired(report) == ["CONC003"]
        assert "'lock'" in report.findings[0].message

    def test_conc003_plain_default_stays_quiet(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/work.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    def worker(x, scale=2):
                        return x * scale

                    def launch(jobs):
                        pool = ProcessPoolExecutor()
                        return [pool.submit(worker, j) for j in jobs]
                    """
            },
            ["CONC003"],
        )
        assert report.findings == []

    def test_conc001_pipe_recv_and_trie_walk_block_the_loop(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/frontend.py": """
                    async def serve(conn, engine, batch):
                        conn.send(batch)
                        reply = conn.recv()
                        return reply, engine.walk_batch(batch)
                    """
            },
            ["CONC001"],
        )
        assert len(report.findings) == 2
        assert any(".recv()" in f.message for f in report.findings)
        assert any(".walk_batch()" in f.message for f in report.findings)

    def test_conc001_executor_offload_stays_quiet(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/frontend.py": """
                    import asyncio

                    def roundtrip(conn, batch):
                        conn.send(batch)
                        return conn.recv()

                    async def serve(conn, batch):
                        loop = asyncio.get_running_loop()
                        return await loop.run_in_executor(None, roundtrip, conn, batch)
                    """
            },
            ["CONC001"],
        )
        assert report.findings == []

    def test_conc003_process_target_with_unpicklable_default(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/shard.py": """
                    import threading
                    from multiprocessing import Pipe, Process

                    def worker(conn, lock=threading.Lock()):
                        conn.send(conn.recv())

                    def boot():
                        parent, child = Pipe()
                        process = Process(target=worker, args=(child,))
                        process.start()
                        return parent
                    """
            },
            ["CONC003"],
        )
        assert rules_fired(report) == ["CONC003"]
        assert "'lock'" in report.findings[0].message

    def test_conc003_run_in_executor_with_lambda_default(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/frontend.py": """
                    import asyncio

                    def roundtrip(batch, encode=lambda b: b):
                        return encode(batch)

                    async def serve(batch):
                        loop = asyncio.get_running_loop()
                        return await loop.run_in_executor(None, roundtrip, batch)
                    """
            },
            ["CONC003"],
        )
        assert rules_fired(report) == ["CONC003"]
        assert "'encode'" in report.findings[0].message

    def test_conc004_bare_lambda_and_def_in_loop(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/retry.py": """
                    def plan(engines, batches):
                        thunks = []
                        for vn, engine in enumerate(engines):
                            thunks.append(lambda: engine.walk(batches[vn]))

                            def redo():
                                return engine.reset()

                            thunks.append(redo)
                        return thunks
                    """
            },
            ["CONC004"],
        )
        assert rules_fired(report) == ["CONC004"]
        # bare lambda captures both names; the def captures the engine
        named = sorted(f.message.split("'")[1] for f in report.findings)
        assert named == ["engine", "engine", "vn"]

    def test_conc004_default_bound_closure_stays_quiet(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/retry.py": """
                    def plan(engines, batches):
                        thunks = []
                        for vn, engine in enumerate(engines):
                            thunks.append(lambda e=engine, b=batches[vn]: e.walk(b))

                            def redo(e=engine):
                                return e.reset()

                            thunks.append(redo)
                        return thunks
                    """
            },
            ["CONC004"],
        )
        assert report.findings == []

    def test_conc004_loop_local_rebinding_stays_quiet(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/retry.py": """
                    def plan(jobs):
                        thunks = []
                        for i in range(3):
                            def reset():
                                i = 0
                                return i

                            thunks.append(reset)
                        return thunks
                    """
            },
            ["CONC004"],
        )
        assert report.findings == []


class TestUnusedSuppression:
    def test_sup001_fires_on_a_dead_disable(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/m.py": """
                    X = 1  # repro-lint: disable=FLT001
                    """
            },
            ["FLT001", "SUP001"],
        )
        assert rules_fired(report) == ["SUP001"]
        assert "FLT001" in report.findings[0].message

    def test_sup001_quiet_when_the_disable_is_earning_its_keep(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/m.py": """
                    def check(x):
                        return x == 1.0  # repro-lint: disable=FLT001
                    """
            },
            ["FLT001", "SUP001"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_sup001_cannot_be_silenced_inline(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/m.py": """
                    X = 1  # repro-lint: disable=FLT001,SUP001
                    """
            },
            ["FLT001", "SUP001"],
        )
        assert rules_fired(report) == ["SUP001"]

    def test_sup001_disabled_via_config_only(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            {
                "src/pkg/m.py": """
                    X = 1  # repro-lint: disable=FLT001
                    """
            },
            ["FLT001"],
        )
        assert report.findings == []
