"""Edge-case coverage for suppression comments (suppressions.py).

Satellite coverage for the corners that bit real code: disables on
decorated defs, comma lists naming several rules, file-level markers,
usage tracking for the SUP001 sweep, and markers inside strings.
"""

import textwrap

from repro.staticcheck import LintConfig, lint_paths
from repro.staticcheck.suppressions import collect_suppressions


def lint_source(tmp_path, source, select):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], LintConfig(select=set(select), root=tmp_path))


class TestParsing:
    def test_comma_list_names_several_rules(self):
        sup = collect_suppressions("x = 1  # repro-lint: disable=UNIT001,FLT001\n")
        [entry] = sup.entries
        assert entry.rules == frozenset({"UNIT001", "FLT001"})
        assert entry.scope == "line" and entry.line == 1

    def test_whitespace_separated_list_also_parses(self):
        sup = collect_suppressions("x = 1  # repro-lint: disable=UNIT001, FLT001\n")
        [entry] = sup.entries
        assert entry.rules == frozenset({"UNIT001", "FLT001"})

    def test_file_level_marker(self):
        sup = collect_suppressions('"""Doc."""\n# repro-lint: disable-file=FLT001\n')
        [entry] = sup.entries
        assert entry.scope == "file"
        assert sup.file_wide == {"FLT001"}

    def test_marker_inside_a_string_is_not_a_suppression(self):
        sup = collect_suppressions('text = "# repro-lint: disable=FLT001"\n')
        assert sup.entries == []

    def test_by_line_view_merges_same_line_entries(self):
        sup = collect_suppressions(
            "x = 1  # repro-lint: disable=UNIT001 # repro-lint: disable=FLT001\n"
        )
        assert sup.by_line.get(1, set()) >= {"UNIT001"}


class TestMatching:
    def test_line_scope_matches_only_its_line(self):
        sup = collect_suppressions("a = 1\nb = 2  # repro-lint: disable=FLT001\n")
        assert sup.is_suppressed("FLT001", 2)
        assert not sup.is_suppressed("FLT001", 1)

    def test_all_wildcard_silences_any_rule(self):
        sup = collect_suppressions("x = 1  # repro-lint: disable=all\n")
        assert sup.is_suppressed("FLT001", 1)
        assert sup.is_suppressed("UNIT001", 1)

    def test_usage_is_tracked_per_rule(self):
        sup = collect_suppressions("x = 1  # repro-lint: disable=UNIT001,FLT001\n")
        sup.is_suppressed("FLT001", 1)
        [entry] = sup.entries
        assert entry.used == {"FLT001"}
        assert entry.unused_rules() == ["UNIT001"]

    def test_sup001_never_matches_inline(self):
        sup = collect_suppressions("x = 1  # repro-lint: disable=SUP001\n")
        assert not sup.is_suppressed("SUP001", 1)


class TestThroughTheRunner:
    def test_inline_disable_on_a_decorated_def(self, tmp_path):
        """The disable rides the line the finding lands on, not the decorator."""
        report = lint_source(
            tmp_path,
            """
            import functools

            @functools.lru_cache(maxsize=None)
            def check(x):
                return x == 1.0  # repro-lint: disable=FLT001
            """,
            ["FLT001"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_disable_on_the_decorator_line_does_not_leak_downward(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import functools

            @functools.lru_cache(maxsize=None)  # repro-lint: disable=FLT001
            def check(x):
                return x == 1.0
            """,
            ["FLT001"],
        )
        assert [f.rule for f in report.findings] == ["FLT001"]

    def test_file_level_disable_covers_every_line(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            # repro-lint: disable-file=FLT001

            def check(x):
                return x == 1.0 or x == 2.0
            """,
            ["FLT001"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_comma_list_silences_both_named_rules(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            BYTES = 8 * 1024 * 1024 == 1.0  # repro-lint: disable=UNIT001,FLT001
            """,
            ["UNIT001", "FLT001"],
        )
        assert report.findings == []
        assert {f.rule for f in report.suppressed} >= {"FLT001"}

    def test_project_scope_findings_honor_inline_disables(self, tmp_path):
        """Findings from the whole-program pass obey file suppressions too."""
        path = tmp_path / "src" / "pkg" / "exp.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            textwrap.dedent(
                """
                import time
                from pkg.registry import register

                @register("exp")
                def run():
                    return time.time()  # repro-lint: disable=DET002
                """
            )
        )
        report = lint_paths([tmp_path], LintConfig(select={"DET002"}, root=tmp_path))
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["DET002"]
