"""Trie braiding baseline (repro.virt.braiding)."""

import numpy as np
import pytest

from repro.errors import MergeError
from repro.iplookup.rib import RoutingTable
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.iplookup.trie import UnibitTrie
from repro.virt.braiding import braid_tries
from repro.virt.merged import merge_tries


def mirrored_tables() -> tuple[RoutingTable, RoutingTable]:
    """Two tables that are bit-mirrors: structurally disjoint paths,
    perfectly alignable by a single root twist."""
    a = RoutingTable.from_strings(
        [("0.0.0.0/2", 1), ("16.0.0.0/4", 2), ("32.0.0.0/3", 3)]
    )
    # the same shapes under the 1-side of the root
    b = RoutingTable.from_strings(
        [("192.0.0.0/2", 1), ("144.0.0.0/4", 2), ("160.0.0.0/3", 3)]
    )
    return a, b


class TestCorrectness:
    def test_lookup_matches_oracle(self, random_addresses):
        tables = generate_virtual_tables(
            3, 0.4, SyntheticTableConfig(n_prefixes=200, seed=61)
        )
        braided = braid_tries([UnibitTrie(t) for t in tables])
        for vn, table in enumerate(tables):
            expected = table.lookup_linear_batch(random_addresses[:150])
            got = braided.lookup_batch(
                random_addresses[:150], np.full(150, vn)
            )
            assert np.array_equal(expected, got)

    def test_mirrored_tables_still_correct(self, random_addresses):
        a, b = mirrored_tables()
        braided = braid_tries([UnibitTrie(a), UnibitTrie(b)])
        for vn, table in enumerate((a, b)):
            expected = table.lookup_linear_batch(random_addresses[:100])
            got = braided.lookup_batch(random_addresses[:100], np.full(100, vn))
            assert np.array_equal(expected, got)

    def test_structure_is_full(self):
        tables = generate_virtual_tables(
            2, 0.3, SyntheticTableConfig(n_prefixes=100, seed=62)
        )
        braided = braid_tries([UnibitTrie(t) for t in tables])
        braided.structure.validate()
        assert braided.structure.is_leaf_pushed()

    def test_rejects_empty(self):
        with pytest.raises(MergeError):
            braid_tries([])

    def test_rejects_bad_vnid(self):
        a, b = mirrored_tables()
        braided = braid_tries([UnibitTrie(a), UnibitTrie(b)])
        with pytest.raises(MergeError):
            braided.lookup(0, 2)


class TestOverlapImprovement:
    def test_mirrored_tables_fully_braid(self):
        """The motivating case of [17]: structurally mirrored tries
        share nothing under plain merging but everything after one
        root twist."""
        a, b = mirrored_tables()
        tries = [UnibitTrie(a), UnibitTrie(b)]
        plain = merge_tries(tries)
        braided = braid_tries(tries)
        assert braided.global_alpha > plain.global_alpha
        assert braided.pairwise_alpha > 0.9  # near-perfect alignment
        assert braided.union_input_nodes < plain.union_input_nodes

    def test_identical_tables_unaffected(self):
        tables = generate_virtual_tables(
            3, 1.0, SyntheticTableConfig(n_prefixes=150, seed=63)
        )
        tries = [UnibitTrie(t) for t in tables]
        plain = merge_tries(tries)
        braided = braid_tries(tries)
        assert braided.pairwise_alpha == pytest.approx(1.0)
        assert braided.union_input_nodes == plain.union_input_nodes

    def test_braiding_never_loses_much_on_synthetic_mixes(self):
        tables = generate_virtual_tables(
            4, 0.3, SyntheticTableConfig(n_prefixes=200, seed=64)
        )
        tries = [UnibitTrie(t) for t in tables]
        plain = merge_tries(tries)
        braided = braid_tries(tries)
        # greedy braiding may not always help, but must stay close
        assert braided.union_input_nodes <= plain.union_input_nodes * 1.05

    def test_twist_memory_accounted(self):
        a, b = mirrored_tables()
        braided = braid_tries([UnibitTrie(a), UnibitTrie(b)])
        assert braided.twist_bits_memory() == braided.num_nodes * 2
