"""Scenario configuration (repro.core.config)."""

import numpy as np
import pytest

from repro.core.config import ScenarioConfig
from repro.errors import ConfigurationError
from repro.fpga.speedgrade import SpeedGrade
from repro.virt.schemes import Scheme


class TestValidation:
    def test_minimal(self):
        cfg = ScenarioConfig(scheme=Scheme.VS, k=4)
        assert cfg.grade is SpeedGrade.G2
        assert cfg.n_stages == 28

    def test_vm_requires_alpha(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scheme=Scheme.VM, k=4)

    def test_vm_k1_needs_no_alpha(self):
        ScenarioConfig(scheme=Scheme.VM, k=1)

    def test_alpha_bounds(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scheme=Scheme.VM, k=4, alpha=1.5)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scheme=Scheme.NV, k=0)

    def test_utilizations_length_checked(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scheme=Scheme.VS, k=3, utilizations=(0.5, 0.5))

    def test_utilizations_sum_checked(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scheme=Scheme.VS, k=2, utilizations=(0.5, 0.6))

    def test_duty_cycle_bounds(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scheme=Scheme.VS, k=2, duty_cycle=0.0)

    def test_frequency_positive(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scheme=Scheme.VS, k=2, frequency_mhz=0)


class TestHelpers:
    def test_default_utilization_is_uniform(self):
        cfg = ScenarioConfig(scheme=Scheme.VS, k=5)
        assert np.allclose(cfg.utilization_vector(), 0.2)

    def test_explicit_utilization_roundtrip(self):
        cfg = ScenarioConfig(scheme=Scheme.VS, k=2, utilizations=(0.7, 0.3))
        assert np.allclose(cfg.utilization_vector(), [0.7, 0.3])

    def test_label(self):
        cfg = ScenarioConfig(scheme=Scheme.VM, k=8, alpha=0.8)
        assert cfg.label() == "VM(a=0.8) K=8 -2"
        cfg = ScenarioConfig(scheme=Scheme.NV, k=3, grade=SpeedGrade.G1L)
        assert cfg.label() == "NV K=3 -1L"

    def test_with_k(self):
        cfg = ScenarioConfig(scheme=Scheme.VS, k=2)
        assert cfg.with_k(9).k == 9
