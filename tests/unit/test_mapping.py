"""Stage mapping and node encoding (repro.iplookup.mapping)."""

import pytest

from repro.errors import ConfigurationError
from repro.iplookup.mapping import (
    DEFAULT_NODE_FORMAT,
    PAPER_PIPELINE_STAGES,
    NodeFormat,
    map_trie_to_stages,
)


class TestNodeFormat:
    def test_paper_defaults(self):
        fmt = DEFAULT_NODE_FORMAT
        assert fmt.pointer_bits == 18  # the paper's 18-bit reads
        assert fmt.internal_node_bits() == 2 * 18 + 2

    def test_leaf_vector_scales_with_k(self):
        fmt = DEFAULT_NODE_FORMAT
        single = fmt.leaf_node_bits(1)
        assert fmt.leaf_node_bits(15) == single + 14 * fmt.nhi_bits

    def test_rejects_zero_pointer_bits(self):
        with pytest.raises(ConfigurationError):
            NodeFormat(pointer_bits=0)

    def test_rejects_negative_fields(self):
        with pytest.raises(ConfigurationError):
            NodeFormat(nhi_bits=-1)

    def test_rejects_bad_vector_width(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_NODE_FORMAT.leaf_node_bits(0)


class TestMapping:
    def test_paper_depth_constant(self):
        assert PAPER_PIPELINE_STAGES == 28

    def test_stage_offsets(self, small_pushed):
        stats = small_pushed.stats()
        m = map_trie_to_stages(stats, 32)
        # stage j holds level j+1: stage depth-1 is the deepest occupied
        assert m.nodes_per_stage[stats.depth - 1] > 0
        assert m.nodes_per_stage[stats.depth :].sum() == 0
        # level-1 node counts land on stage 0
        assert m.nodes_per_stage[0] == stats.nodes_per_level[1]

    def test_total_nodes_exclude_root(self, small_pushed):
        stats = small_pushed.stats()
        m = map_trie_to_stages(stats, 32)
        assert m.nodes_per_stage.sum() == stats.total_nodes - 1

    def test_pointer_and_nhi_split(self, small_pushed):
        stats = small_pushed.stats()
        fmt = DEFAULT_NODE_FORMAT
        m = map_trie_to_stages(stats, 32, fmt)
        # root is internal (excluded); all other internals are pointer nodes
        expected_ptr = (stats.internal_nodes - 1) * fmt.internal_node_bits()
        expected_nhi = stats.leaf_nodes * fmt.leaf_node_bits(1)
        assert m.total_pointer_bits == expected_ptr
        assert m.total_nhi_bits == expected_nhi
        assert m.total_bits == expected_ptr + expected_nhi

    def test_vector_width_multiplies_nhi_only(self, small_pushed):
        stats = small_pushed.stats()
        m1 = map_trie_to_stages(stats, 32, nhi_vector_width=1)
        m4 = map_trie_to_stages(stats, 32, nhi_vector_width=4)
        assert m4.total_pointer_bits == m1.total_pointer_bits
        assert m4.total_nhi_bits > m1.total_nhi_bits

    def test_too_shallow_pipeline_rejected(self, small_pushed):
        with pytest.raises(ConfigurationError):
            map_trie_to_stages(small_pushed.stats(), small_pushed.depth() - 1)

    def test_rejects_zero_stages(self, small_pushed):
        with pytest.raises(ConfigurationError):
            map_trie_to_stages(small_pushed.stats(), 0)

    def test_widest_stage(self, small_pushed):
        m = map_trie_to_stages(small_pushed.stats(), 32)
        assert m.widest_stage_bits() == int(m.bits_per_stage.max())

    def test_occupied_stages(self, small_pushed):
        stats = small_pushed.stats()
        m = map_trie_to_stages(stats, 32)
        assert m.occupied_stages() == sum(
            1 for level in range(1, stats.depth + 1) if stats.nodes_per_level[level]
        )


class TestAutoDepth:
    """``n_stages=None`` sizes the pipeline to the trie itself.

    Real RIB dumps carry /32 more-specifics, so their tries are deeper
    than the paper's 28-stage pipeline; auto-depth is how the real-RIB
    experiments build valid stage maps (regression for the ingest PR).
    """

    def test_none_resolves_to_trie_depth(self, small_pushed):
        auto = map_trie_to_stages(small_pushed.stats(), None)
        assert auto.n_stages == small_pushed.depth()
        explicit = map_trie_to_stages(small_pushed.stats(), small_pushed.depth())
        assert auto.total_bits == explicit.total_bits

    def test_none_on_a_trivial_trie_keeps_one_stage(self):
        from repro.iplookup.rib import RoutingTable
        from repro.iplookup.trie import UnibitTrie

        stats = UnibitTrie(RoutingTable()).stats()
        assert map_trie_to_stages(stats, None).n_stages == 1

    def test_depth_32_table_maps_without_explicit_stages(self):
        from repro.iplookup.rib import RoutingTable
        from repro.iplookup.trie import UnibitTrie

        table = RoutingTable.from_strings(
            [("0.0.0.0/0", 0), ("203.0.113.7/32", 1), ("10.0.0.0/8", 2)]
        )
        stage_map = map_trie_to_stages(UnibitTrie(table).stats(), None)
        assert stage_map.n_stages == 32
        with pytest.raises(ConfigurationError):
            map_trie_to_stages(UnibitTrie(table).stats(), 28)
