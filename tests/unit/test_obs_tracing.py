"""Unit tests for span tracing (repro.obs.tracing)."""

import json

import pytest

from repro.obs.tracing import Tracer


@pytest.fixture()
def tracer():
    return Tracer(enabled=True)


class TestSpanNesting:
    def test_child_links_to_parent_and_shares_trace(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # children close first
        assert spans[1].parent_id is None

    def test_siblings_share_trace_but_not_parentage(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = tracer.spans()
        assert a.parent_id == b.parent_id == root.span_id
        assert a.trace_id == b.trace_id == root.trace_id
        assert a.span_id != b.span_id

    def test_separate_roots_get_separate_traces(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.spans()
        assert first.trace_id != second.trace_id

    def test_current_span_tracks_innermost(self, tracer):
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None


class TestSpanUnits:
    def test_duration_nonnegative_and_contains_child(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert inner.duration_s >= 0.0
        assert outer.duration_s >= inner.duration_s

    def test_start_is_unix_wall_clock(self, tracer):
        with tracer.span("s"):
            pass
        (span,) = tracer.spans()
        assert span.start_unix_s > 1_500_000_000  # after 2017 — a UNIX stamp

    def test_attributes_and_status(self, tracer):
        with tracer.span("s", scheme="VS") as span:
            span.set("n", 3)
        (recorded,) = tracer.spans()
        assert recorded.attributes == {"scheme": "VS", "n": 3}
        assert recorded.status == "ok"

    def test_error_status_on_exception(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.spans()
        assert span.status == "error"


class TestDisabledTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored") as span:
            span.set("k", "v")  # no-op span accepts set()
        assert tracer.spans() == ()

    def test_starts_disabled_by_default(self):
        assert not Tracer().enabled


class TestExport:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.name for s in tracer.spans()] == ["b", "c"]

    def test_drain_empties_buffer(self, tracer):
        with tracer.span("x"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.spans() == ()

    def test_export_jsonl_round_trips(self, tracer, tmp_path):
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"] == {"k": 1}

    def test_attach_sink_streams_as_spans_close(self, tracer, tmp_path):
        path = tmp_path / "stream.jsonl"
        with open(path, "w", encoding="utf-8") as sink:
            tracer.attach_sink(sink)
            with tracer.span("streamed"):
                pass
            tracer.attach_sink(None)
            with tracer.span("not-streamed"):
                pass
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "streamed"
