"""Route updates and write-rate coupling (repro.iplookup.updates)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iplookup.prefix import parse_prefix
from repro.iplookup.rib import NO_ROUTE, RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.iplookup.updates import (
    RouteUpdate,
    UpdateKind,
    UpdateStats,
    apply_updates,
    effective_write_rate,
    synthesize_churn,
)


class TestTrieRemove:
    def test_withdraw_then_miss(self):
        t = UnibitTrie()
        p = parse_prefix("10.0.0.0/8")
        t.insert(p, 1)
        assert t.remove(p)
        assert t.lookup(parse_prefix("10.0.0.0/8").value) == NO_ROUTE
        assert t.num_prefixes == 0

    def test_withdraw_prunes_chain(self):
        t = UnibitTrie()
        t.insert(parse_prefix("10.0.0.0/8"), 1)
        assert t.num_nodes == 9
        t.remove(parse_prefix("10.0.0.0/8"))
        assert t.num_nodes == 1  # only the root survives
        t.validate()

    def test_withdraw_keeps_shared_stem(self):
        t = UnibitTrie()
        t.insert(parse_prefix("10.0.0.0/8"), 1)
        t.insert(parse_prefix("10.1.0.0/16"), 2)
        before = t.num_nodes
        t.remove(parse_prefix("10.1.0.0/16"))
        # only the /16's private tail is pruned
        assert 9 <= t.num_nodes < before
        assert t.lookup(parse_prefix("10.1.0.0/16").value) == 1
        t.validate()

    def test_withdraw_missing_prefix_is_noop(self):
        t = UnibitTrie()
        t.insert(parse_prefix("10.0.0.0/8"), 1)
        assert not t.remove(parse_prefix("11.0.0.0/8"))
        assert not t.remove(parse_prefix("10.0.0.0/16"))  # chain node, no NHI
        assert t.num_prefixes == 1

    def test_freed_slots_recycled(self):
        t = UnibitTrie()
        t.insert(parse_prefix("10.0.0.0/8"), 1)
        t.remove(parse_prefix("10.0.0.0/8"))
        allocated_before = len(t._left)
        t.insert(parse_prefix("192.0.0.0/8"), 2)
        assert len(t._left) == allocated_before  # reused the free list
        t.validate()

    def test_withdraw_internal_prefix_keeps_subtree(self):
        t = UnibitTrie()
        t.insert(parse_prefix("10.0.0.0/8"), 1)
        t.insert(parse_prefix("10.1.0.0/16"), 2)
        t.remove(parse_prefix("10.0.0.0/8"))
        assert t.lookup(parse_prefix("10.1.0.0/16").value) == 2
        assert t.lookup(parse_prefix("10.2.0.0/16").value) == NO_ROUTE
        t.validate()

    def test_churned_trie_matches_rebuilt(self, medium_table):
        """Insert/withdraw churn must leave exactly a fresh build."""
        t = UnibitTrie(medium_table)
        updates = synthesize_churn(medium_table, 400, seed=3)
        apply_updates(t, updates)
        t.validate()
        # replay the final state into a routing table and rebuild
        final = RoutingTable()
        for route in medium_table:
            final.add(route.prefix, route.next_hop)
        for u in updates:
            if u.kind is UpdateKind.ANNOUNCE:
                final.add(u.prefix, u.next_hop)
            elif u.prefix in final:
                final.remove(u.prefix)
        fresh = UnibitTrie(final)
        assert t.num_nodes == fresh.num_nodes
        assert t.num_prefixes == fresh.num_prefixes
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 2**32, size=400, dtype=np.uint64).astype(np.uint32)
        assert np.array_equal(t.lookup_batch(addrs), fresh.lookup_batch(addrs))


class TestUpdateStats:
    def test_announce_counts_created_nodes(self):
        t = UnibitTrie()
        stats = apply_updates(
            t, [RouteUpdate(UpdateKind.ANNOUNCE, parse_prefix("10.0.0.0/8"), 1)]
        )
        assert stats.announces == 1
        assert stats.nodes_created == 8
        assert stats.memory_writes == 9  # 8 creations + 1 NHI write

    def test_withdraw_counts_pruned_nodes(self):
        t = UnibitTrie()
        t.insert(parse_prefix("10.0.0.0/8"), 1)
        stats = apply_updates(
            t, [RouteUpdate(UpdateKind.WITHDRAW, parse_prefix("10.0.0.0/8"))]
        )
        assert stats.withdraws == 1
        assert stats.nodes_pruned == 8

    def test_identical_reannounce_is_noop(self):
        """Re-announcing a route with its current next hop writes no
        memory and is tracked as a no-op, not an announce."""
        t = UnibitTrie()
        stats = apply_updates(
            t,
            [
                RouteUpdate(UpdateKind.ANNOUNCE, parse_prefix("10.0.0.0/8"), 1),
                RouteUpdate(UpdateKind.ANNOUNCE, parse_prefix("10.0.0.0/8"), 1),
            ],
        )
        assert stats.announces == 1
        assert stats.no_ops == 1
        assert stats.memory_writes == 9  # only the first announce writes

    def test_noop_withdraw_tracked(self):
        t = UnibitTrie()
        stats = apply_updates(
            t, [RouteUpdate(UpdateKind.WITHDRAW, parse_prefix("10.0.0.0/8"))]
        )
        assert stats.no_ops == 1
        assert stats.memory_writes == 0

    def test_per_update_statistics(self):
        t = UnibitTrie()
        stats = apply_updates(
            t,
            [
                RouteUpdate(UpdateKind.ANNOUNCE, parse_prefix("10.0.0.0/8"), 1),
                RouteUpdate(UpdateKind.ANNOUNCE, parse_prefix("10.0.0.0/8"), 2),
            ],
        )
        assert stats.max_writes_per_update() == 9
        assert stats.mean_writes_per_update() == pytest.approx((9 + 1) / 2)

    def test_announce_rejects_negative_hop(self):
        with pytest.raises(ConfigurationError):
            RouteUpdate(UpdateKind.ANNOUNCE, parse_prefix("10.0.0.0/8"), -1)


class TestChurnSynthesis:
    def test_deterministic(self, medium_table):
        a = synthesize_churn(medium_table, 50, seed=2)
        b = synthesize_churn(medium_table, 50, seed=2)
        assert a == b

    def test_mix_fractions(self, medium_table):
        updates = synthesize_churn(
            medium_table, 600, withdraw_fraction=0.3, new_prefix_fraction=0.2, seed=4
        )
        withdraws = sum(1 for u in updates if u.kind is UpdateKind.WITHDRAW)
        assert 0.2 < withdraws / 600 < 0.4

    def test_rejects_bad_fractions(self, medium_table):
        with pytest.raises(ConfigurationError):
            synthesize_churn(medium_table, 10, withdraw_fraction=0.8, new_prefix_fraction=0.3)

    def test_rejects_empty_table(self):
        with pytest.raises(ConfigurationError):
            synthesize_churn(RoutingTable(), 10)


class TestWriteRate:
    def test_paper_scale_write_rate(self, medium_table):
        """BGP-scale churn lands around/below the paper's 1 % figure."""
        t = UnibitTrie(medium_table)
        stats = apply_updates(t, synthesize_churn(medium_table, 500, seed=5))
        # 100k updates/s against a 300 MHz engine
        rate = effective_write_rate(stats, 100_000, 300.0)
        assert 0.0 < rate < 0.01

    def test_scales_linearly_with_update_rate(self, medium_table):
        t = UnibitTrie(medium_table)
        stats = apply_updates(t, synthesize_churn(medium_table, 200, seed=6))
        assert effective_write_rate(stats, 2000, 300.0) == pytest.approx(
            2 * effective_write_rate(stats, 1000, 300.0)
        )

    def test_clamped_to_one(self):
        stats = UpdateStats()
        stats._writes_per_update.append(10**9)
        assert effective_write_rate(stats, 10**9, 1.0) == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            effective_write_rate(UpdateStats(), -1, 300)
        with pytest.raises(ConfigurationError):
            effective_write_rate(UpdateStats(), 1, 0)
