"""Uni-bit trie (repro.iplookup.trie)."""

import numpy as np
import pytest

from repro.errors import TrieError
from repro.iplookup.prefix import parse_address, parse_prefix
from repro.iplookup.rib import NO_ROUTE
from repro.iplookup.trie import NONE, UnibitTrie


class TestConstruction:
    def test_empty_trie_is_single_root(self):
        t = UnibitTrie()
        assert t.num_nodes == 1
        assert t.is_leaf(0)
        assert t.nhi(0) == NO_ROUTE

    def test_single_prefix_builds_chain(self):
        t = UnibitTrie()
        t.insert(parse_prefix("128.0.0.0/2"), 7)
        # root + 2 chain nodes
        assert t.num_nodes == 3
        assert t.depth() == 2

    def test_default_route_sits_on_root(self):
        t = UnibitTrie()
        t.insert(parse_prefix("0.0.0.0/0"), 9)
        assert t.num_nodes == 1
        assert t.nhi(0) == 9

    def test_reinsert_overwrites_without_new_nodes(self):
        t = UnibitTrie()
        p = parse_prefix("10.0.0.0/8")
        t.insert(p, 1)
        n = t.num_nodes
        t.insert(p, 2)
        assert t.num_nodes == n
        assert t.num_prefixes == 1
        assert t.lookup(parse_address("10.0.0.1")) == 2

    def test_rejects_negative_next_hop(self):
        with pytest.raises(TrieError):
            UnibitTrie().insert(parse_prefix("10.0.0.0/8"), -1)

    def test_from_table(self, small_table, small_trie):
        assert small_trie.num_prefixes == len(small_table)


class TestLookup:
    def test_matches_oracle(self, small_table, small_trie, random_addresses):
        for addr in random_addresses[:64]:
            assert small_trie.lookup(int(addr)) == small_table.lookup_linear(int(addr))

    def test_batch_matches_scalar(self, small_trie, random_addresses):
        batch = small_trie.lookup_batch(random_addresses)
        scalar = np.array([small_trie.lookup(int(a)) for a in random_addresses])
        assert np.array_equal(batch, scalar)

    def test_empty_trie_returns_no_route(self):
        t = UnibitTrie()
        assert t.lookup(0x12345678) == NO_ROUTE
        assert (t.lookup_batch(np.array([0, 1], dtype=np.uint32)) == NO_ROUTE).all()

    def test_slash32_exact(self):
        t = UnibitTrie()
        t.insert(parse_prefix("1.2.3.4/32"), 5)
        assert t.lookup(parse_address("1.2.3.4")) == 5
        assert t.lookup(parse_address("1.2.3.5")) == NO_ROUTE

    def test_lookup_batch_after_mutation_refreshes(self, small_table):
        t = UnibitTrie(small_table)
        addr = np.array([parse_address("8.8.8.8")], dtype=np.uint32)
        assert t.lookup_batch(addr)[0] == 0  # default route
        t.insert(parse_prefix("8.0.0.0/8"), 42)
        assert t.lookup_batch(addr)[0] == 42


class TestStats:
    def test_node_count_accounting(self, small_trie):
        stats = small_trie.stats()
        assert stats.total_nodes == small_trie.num_nodes
        assert stats.internal_nodes + stats.leaf_nodes == stats.total_nodes
        assert sum(stats.nodes_per_level) == stats.total_nodes

    def test_per_level_split(self, small_trie):
        stats = small_trie.stats()
        for level in range(stats.depth + 1):
            assert (
                stats.internal_per_level[level] + stats.leaves_per_level[level]
                == stats.nodes_per_level[level]
            )

    def test_depth_matches_longest_prefix(self, small_table, small_trie):
        assert small_trie.depth() == small_table.max_length()

    def test_root_level_single_node(self, small_trie):
        assert small_trie.stats().nodes_per_level[0] == 1


class TestWalkPaths:
    def test_paths_cover_all_nodes(self, small_trie):
        seen = {node for node, _, _ in small_trie.walk_paths()}
        assert seen == set(small_trie.nodes())

    def test_path_value_is_prefix_value(self, small_trie):
        # every inserted prefix's node must appear with its own value
        values = {(path, level) for _, path, level in small_trie.walk_paths()}
        assert (parse_prefix("10.1.1.0/24").value, 24) in values


class TestValidate:
    def test_valid_trie_passes(self, small_trie):
        small_trie.validate()

    def test_detects_level_corruption(self, small_table):
        t = UnibitTrie(small_table)
        t._level[3] += 1
        with pytest.raises(TrieError):
            t.validate()

    def test_detects_double_reference(self, small_table):
        t = UnibitTrie(small_table)
        # point some node's unused child at an already-referenced node
        victim = t._left[0]
        for node in t.nodes():
            if t._right[node] == NONE and t._left[node] != NONE and node != 0:
                t._right[node] = victim
                break
        with pytest.raises(TrieError):
            t.validate()
