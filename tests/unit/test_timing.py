"""Timing model (repro.fpga.timing)."""

import pytest

from repro.errors import ConfigurationError, TimingError
from repro.fpga.speedgrade import SpeedGrade, grade_data
from repro.fpga.timing import achievable_fmax_mhz, congestion_derate, mux_derate


class TestMuxDerate:
    def test_no_penalty_up_to_one_block(self):
        assert mux_derate(0) == 1.0
        assert mux_derate(1) == 1.0

    def test_monotone_decreasing(self):
        values = [mux_derate(b) for b in (1, 2, 4, 16, 64, 256)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            mux_derate(-1)


class TestCongestionDerate:
    def test_empty_device_no_penalty(self):
        assert congestion_derate(0.0) == 1.0

    def test_monotone_decreasing(self):
        assert congestion_derate(0.2) > congestion_derate(0.8)

    def test_clamped_above_one(self):
        assert congestion_derate(1.0) == congestion_derate(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            congestion_derate(-0.1)


class TestAchievableFmax:
    def test_unconstrained_design_hits_base(self):
        for grade in SpeedGrade:
            assert achievable_fmax_mhz(grade) == pytest.approx(
                grade_data(grade).base_fmax_mhz
            )

    def test_grade_gap_preserved(self):
        f2 = achievable_fmax_mhz(SpeedGrade.G2, 8, 0.3)
        f1l = achievable_fmax_mhz(SpeedGrade.G1L, 8, 0.3)
        assert f1l / f2 == pytest.approx(245 / 350, rel=1e-6)

    def test_merged_style_design_is_slower(self):
        light = achievable_fmax_mhz(SpeedGrade.G2, 2, 0.05)
        heavy = achievable_fmax_mhz(SpeedGrade.G2, 128, 0.6)
        assert heavy < light

    def test_timing_failure_raised(self):
        with pytest.raises(TimingError):
            achievable_fmax_mhz(SpeedGrade.G2, 10**15, 1.0)
