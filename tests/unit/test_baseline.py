"""Findings-baseline and drift-gate coverage (baseline.py + CLI)."""

import json
import textwrap

import pytest

from repro.staticcheck import Baseline, LintConfig, apply_baseline, lint_paths
from repro.staticcheck.finding import Finding
from repro.staticcheck.runner import LintReport
from repro.tools.repro_lint import main as lint_main


def finding(path="m.py", line=3, rule="FLT001", message="msg"):
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


class TestBaselineRoundTrip:
    def test_save_load_preserves_entries_and_counts(self, tmp_path):
        report = LintReport(findings=[finding(), finding(), finding(rule="UNIT001")])
        baseline = Baseline.from_report(report)
        target = tmp_path / "baseline.json"
        baseline.save(target)

        loaded = Baseline.load(target)
        assert loaded.entries == baseline.entries
        assert loaded.entries[("m.py", "FLT001", "msg")] == 2

    def test_json_is_stable_and_versioned(self, tmp_path):
        target = tmp_path / "baseline.json"
        Baseline.from_report(LintReport(findings=[finding()])).save(target)
        data = json.loads(target.read_text())
        assert data["version"] == Baseline.VERSION
        assert data["entries"][0] == {
            "path": "m.py",
            "rule": "FLT001",
            "message": "msg",
            "count": 1,
        }

    def test_unknown_version_is_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(target)


class TestApplyBaseline:
    def test_matched_findings_move_to_baselined(self):
        report = LintReport(findings=[finding()])
        drift = apply_baseline(report, Baseline.from_report(LintReport(findings=[finding()])))
        assert report.findings == []
        assert len(report.baselined) == 1
        assert drift.new_findings == [] and drift.stale == []
        assert report.exit_code == 0

    def test_matching_is_line_independent(self):
        accepted = Baseline.from_report(LintReport(findings=[finding(line=3)]))
        report = LintReport(findings=[finding(line=300)])
        drift = apply_baseline(report, accepted)
        assert drift.new_findings == []
        assert report.exit_code == 0

    def test_new_findings_fail_the_gate(self):
        accepted = Baseline.from_report(LintReport(findings=[finding()]))
        report = LintReport(findings=[finding(), finding(message="brand new")])
        drift = apply_baseline(report, accepted)
        assert [f.message for f in drift.new_findings] == ["brand new"]
        assert report.exit_code == 1

    def test_stale_entries_are_reported(self):
        accepted = Baseline.from_report(
            LintReport(findings=[finding(), finding(message="fixed since")])
        )
        report = LintReport(findings=[finding()])
        drift = apply_baseline(report, accepted)
        assert drift.stale == [("m.py", "FLT001", "fixed since")]
        assert report.exit_code == 0

    def test_multiplicity_is_respected(self):
        accepted = Baseline.from_report(LintReport(findings=[finding()]))
        report = LintReport(findings=[finding(), finding()])
        drift = apply_baseline(report, accepted)
        assert len(drift.matched) == 1 and len(drift.new_findings) == 1


class TestDriftGateCli:
    def write_dirty(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            textwrap.dedent(
                """
                def check(x):
                    return x == 1.0
                """
            )
        )
        return dirty

    def test_write_then_check_is_clean(self, tmp_path, capsys):
        dirty = self.write_dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = ["--no-config", "--select", "FLT001", str(dirty)]

        assert lint_main(["--write-baseline", str(baseline), *args]) == 0
        assert "wrote baseline with 1 finding(s)" in capsys.readouterr().out
        assert lint_main(["--baseline", str(baseline), *args]) == 0
        capsys.readouterr()

    def test_new_finding_fails_against_the_baseline(self, tmp_path, capsys):
        dirty = self.write_dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = ["--no-config", "--select", "FLT001", str(dirty)]
        assert lint_main(["--write-baseline", str(baseline), *args]) == 0

        dirty.write_text(dirty.read_text() + "\n\ndef more(y):\n    return y != 2.0\n")
        assert lint_main(["--baseline", str(baseline), *args]) == 1
        out = capsys.readouterr().out
        assert "2.0" in out and "1.0" not in out

    def test_stale_entries_are_noted_on_stderr(self, tmp_path, capsys):
        dirty = self.write_dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = ["--no-config", "--select", "FLT001", str(dirty)]
        assert lint_main(["--write-baseline", str(baseline), *args]) == 0

        dirty.write_text("def check(x):\n    return x > 1\n")
        assert lint_main(["--baseline", str(baseline), *args]) == 0
        assert "stale baseline" in capsys.readouterr().err

    def test_baseline_and_write_baseline_are_exclusive(self, tmp_path, capsys):
        dirty = self.write_dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = lint_main(
            ["--baseline", str(baseline), "--write-baseline", str(baseline), str(dirty)]
        )
        assert code == 2
        capsys.readouterr()

    def test_missing_baseline_file_is_a_usage_error(self, tmp_path, capsys):
        dirty = self.write_dirty(tmp_path)
        code = lint_main(["--baseline", str(tmp_path / "nope.json"), str(dirty)])
        assert code == 2
        capsys.readouterr()


class TestBaselineThroughLintPaths:
    def test_report_baselined_findings_surface_in_summary(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def check(x):\n    return x == 1.0\n")
        config = LintConfig(select={"FLT001"}, root=tmp_path)
        report = lint_paths([tmp_path], config)
        assert len(report.findings) == 1

        apply_baseline(report, Baseline.from_report(report))
        assert report.findings == [] and len(report.baselined) == 1
