"""IPv4 prefix type (repro.iplookup.prefix)."""

import pytest

from repro.errors import PrefixError
from repro.iplookup.prefix import (
    DEFAULT_ROUTE,
    Prefix,
    format_address,
    parse_address,
    parse_prefix,
)


class TestConstruction:
    def test_basic(self):
        p = Prefix(0x0A000000, 8)
        assert p.value == 0x0A000000
        assert p.length == 8

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix(0x0A000001, 8)

    def test_normalized_clears_host_bits(self):
        p = Prefix.normalized(0x0A0000FF, 8)
        assert p == Prefix(0x0A000000, 8)

    @pytest.mark.parametrize("length", [-1, 33])
    def test_rejects_bad_length(self, length):
        with pytest.raises(PrefixError):
            Prefix(0, length)

    def test_rejects_out_of_range_value(self):
        with pytest.raises(PrefixError):
            Prefix(1 << 32, 32)

    def test_default_route(self):
        assert DEFAULT_ROUTE.length == 0
        assert DEFAULT_ROUTE.mask() == 0

    def test_slash32(self):
        p = Prefix(0xFFFFFFFF, 32)
        assert p.mask() == 0xFFFFFFFF


class TestSemantics:
    def test_contains(self):
        p = parse_prefix("10.1.0.0/16")
        assert p.contains(parse_address("10.1.2.3"))
        assert not p.contains(parse_address("10.2.0.0"))

    def test_default_contains_everything(self):
        assert DEFAULT_ROUTE.contains(0)
        assert DEFAULT_ROUTE.contains(0xFFFFFFFF)

    def test_covers(self):
        outer = parse_prefix("10.0.0.0/8")
        inner = parse_prefix("10.1.0.0/16")
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)

    def test_bit_extraction(self):
        p = parse_prefix("128.0.0.0/1")
        assert p.bit(0) == 1
        p2 = parse_prefix("64.0.0.0/2")
        assert p2.bits() == (0, 1)

    def test_bit_out_of_range(self):
        with pytest.raises(PrefixError):
            parse_prefix("10.0.0.0/8").bit(32)

    def test_children(self):
        left, right = parse_prefix("10.0.0.0/8").children()
        assert left == parse_prefix("10.0.0.0/9")
        assert right == parse_prefix("10.128.0.0/9")

    def test_children_of_slash32_fails(self):
        with pytest.raises(PrefixError):
            parse_prefix("1.2.3.4/32").children()

    def test_address_range(self):
        p = parse_prefix("10.1.1.0/24")
        assert p.first_address() == parse_address("10.1.1.0")
        assert p.last_address() == parse_address("10.1.1.255")
        assert p.num_addresses() == 256

    def test_ordering_by_length_then_value(self):
        prefixes = [
            parse_prefix("10.0.0.0/16"),
            parse_prefix("9.0.0.0/8"),
            parse_prefix("11.0.0.0/8"),
        ]
        ordered = sorted(prefixes)
        assert [p.length for p in ordered] == [8, 8, 16]
        assert ordered[0].value < ordered[1].value


class TestParsing:
    def test_roundtrip(self):
        for text in ("0.0.0.0/0", "10.1.1.0/24", "255.255.255.255/32"):
            assert str(parse_prefix(text)) == text

    def test_bare_address_is_slash32(self):
        assert parse_prefix("1.2.3.4").length == 32

    @pytest.mark.parametrize(
        "text", ["1.2.3", "1.2.3.4.5", "1.2.3.256/8", "a.b.c.d/8", "1.2.3.4/xx", "1.2.3.4/-1"]
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(PrefixError):
            parse_prefix(text)

    def test_format_address(self):
        assert format_address(0x0A010203) == "10.1.2.3"
        assert format_address(0) == "0.0.0.0"

    def test_format_rejects_out_of_range(self):
        with pytest.raises(PrefixError):
            format_address(1 << 32)
