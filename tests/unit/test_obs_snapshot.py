"""Registry snapshot/merge round trips (repro.obs.snapshot).

The ``repro_test_*`` families below are synthetic fixtures, not
shipped metrics, so they stay out of the observability catalog.
"""

# repro-lint: disable-file=OBS001

import pickle

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import (
    RegistrySnapshot,
    merge_snapshots,
    restore_registry,
    snapshot_registry,
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True)
    registry.counter(
        "repro_test_lookups_total", "Lookups", labels=("scheme",)
    ).labels("NV").inc(42)
    registry.gauge("repro_test_depth", "Depth", labels=("scheme",)).labels("NV").set(
        3.5
    )
    hist = registry.histogram(
        "repro_test_latency_seconds",
        "Latency",
        labels=("scheme",),
        buckets=(0.1, 1.0),
    ).labels("NV")
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestRoundTrip:
    def test_restore_renders_identically(self):
        registry = _populated_registry()
        snapshot = snapshot_registry(registry)
        restored = restore_registry(snapshot)
        assert render_prometheus(restored) == render_prometheus(registry)

    def test_json_round_trip_is_lossless(self):
        snapshot = snapshot_registry(_populated_registry(), shard=1)
        again = RegistrySnapshot.from_json(snapshot.to_json())
        assert again == snapshot

    def test_snapshot_is_picklable(self):
        snapshot = snapshot_registry(_populated_registry(), shard=0)
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_counter_total_helper(self):
        snapshot = snapshot_registry(_populated_registry())
        assert snapshot.counter_total("repro_test_lookups_total") == 42
        assert snapshot.counter_total("repro_missing_total") == 0.0

    def test_from_json_rejects_garbage_and_wrong_schema(self):
        with pytest.raises(ObservabilityError):
            RegistrySnapshot.from_json("{not json")
        with pytest.raises(ObservabilityError):
            RegistrySnapshot.from_json('{"schema_version": 99, "families": []}')


class TestShardLabel:
    def test_shard_label_appended_at_snapshot_time(self):
        snapshot = snapshot_registry(_populated_registry(), shard=2)
        for family in snapshot.families:
            assert family.label_names[-1] == "shard"
            for sample in family.samples:
                assert sample.labels[-1] == "2"

    def test_unlabeled_snapshot_is_catalog_shaped(self):
        """Without a shard identity the snapshot must not add labels —
        the OBS catalog's label sets stay valid."""
        snapshot = snapshot_registry(_populated_registry())
        for family in snapshot.families:
            assert "shard" not in family.label_names


class TestMerge:
    def test_merges_disjoint_shards(self):
        snaps = [
            snapshot_registry(_populated_registry(), shard=s) for s in range(3)
        ]
        merged = merge_snapshots(snaps)
        assert merged.shard is None
        assert merged.counter_total("repro_test_lookups_total") == 3 * 42
        # merged snapshot restores and renders like any other
        rendered = render_prometheus(restore_registry(merged))
        assert 'shard="0"' in rendered and 'shard="2"' in rendered

    def test_collision_refused(self):
        snaps = [
            snapshot_registry(_populated_registry(), shard=0),
            snapshot_registry(_populated_registry(), shard=0),
        ]
        with pytest.raises(ObservabilityError, match="collision"):
            merge_snapshots(snaps)

    def test_kind_mismatch_refused(self):
        a = MetricsRegistry(enabled=True)
        a.counter("repro_test_thing", "c", labels=()).labels().inc()
        b = MetricsRegistry(enabled=True)
        b.gauge("repro_test_thing", "g", labels=()).labels().set(1)
        with pytest.raises(ObservabilityError, match="cannot merge"):
            merge_snapshots(
                [snapshot_registry(a, shard=0), snapshot_registry(b, shard=1)]
            )

    def test_merge_is_union_not_sum(self):
        """Per-shard sample values survive verbatim under their shard
        label; nothing is aggregated by the merge itself."""
        a = MetricsRegistry(enabled=True)
        a.counter("repro_test_n_total", "n", labels=()).labels().inc(10)
        b = MetricsRegistry(enabled=True)
        b.counter("repro_test_n_total", "n", labels=()).labels().inc(32)
        merged = merge_snapshots(
            [snapshot_registry(a, shard=0), snapshot_registry(b, shard=1)]
        )
        family = merged.families[0]
        assert sorted(s.value for s in family.samples) == [10, 32]
