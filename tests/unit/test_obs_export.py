"""Unit tests for the metric exporters (repro.obs.export)."""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    parse_prometheus_text,
    render_metrics_jsonl,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture()
def registry():
    reg = MetricsRegistry(enabled=True)
    reg.counter("demo_total", "A counter", labels=("scheme",)).labels("VS").inc(3)
    reg.gauge("demo_watts", "A gauge").set(4.5)
    hist = reg.histogram("demo_seconds", "A histogram", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(5.0)
    return reg


class TestPrometheusRender:
    def test_help_and_type_lines(self, registry):
        text = render_prometheus(registry)
        assert "# HELP demo_total A counter" in text
        assert "# TYPE demo_total counter" in text
        assert "# TYPE demo_watts gauge" in text
        assert "# TYPE demo_seconds histogram" in text

    def test_sample_lines(self, registry):
        lines = render_prometheus(registry).splitlines()
        assert 'demo_total{scheme="VS"} 3.0' in lines
        assert "demo_watts 4.5" in lines

    def test_histogram_expansion_cumulative_with_inf(self, registry):
        lines = render_prometheus(registry).splitlines()
        assert 'demo_seconds_bucket{le="0.1"} 1' in lines
        assert 'demo_seconds_bucket{le="1.0"} 1' in lines
        assert 'demo_seconds_bucket{le="+Inf"} 2' in lines
        assert "demo_seconds_sum 5.05" in lines
        assert "demo_seconds_count 2" in lines

    def test_float_values_round_trip_exactly(self):
        reg = MetricsRegistry(enabled=True)
        value = 0.1 + 0.2  # 0.30000000000000004
        reg.gauge("g", "g").set(value)
        parsed = parse_prometheus_text(render_prometheus(reg))
        assert parsed["g"]["samples"][0][2] == value

    def test_label_value_escaping(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("e_total", "e", labels=("path",)).labels('a"b\\c').inc()
        text = render_prometheus(reg)
        assert 'path="a\\"b\\\\c"' in text
        parsed = parse_prometheus_text(text)
        (sample,) = parsed["e_total"]["samples"]
        assert sample[1] == {"path": 'a\\"b\\\\c'} or sample[1]["path"]

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestJsonlRender:
    def test_one_record_per_sample(self, registry):
        records = [json.loads(line) for line in render_metrics_jsonl(registry).splitlines()]
        by_metric = {r["metric"]: r for r in records}
        assert by_metric["demo_total"]["value"] == 3.0
        assert by_metric["demo_total"]["labels"] == {"scheme": "VS"}
        assert by_metric["demo_watts"]["kind"] == "gauge"

    def test_histogram_record_shape(self, registry):
        records = [json.loads(line) for line in render_metrics_jsonl(registry).splitlines()]
        hist = next(r for r in records if r["metric"] == "demo_seconds")
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(5.05)
        assert hist["buckets"]["+Inf"] == 2


class TestPrometheusParser:
    def test_round_trip(self, registry):
        parsed = parse_prometheus_text(render_prometheus(registry))
        assert parsed["demo_total"]["type"] == "counter"
        assert parsed["demo_total"]["help"] == "A counter"
        names = {name for name, _, _ in parsed["demo_seconds"]["samples"]}
        assert names == {"demo_seconds_bucket", "demo_seconds_sum", "demo_seconds_count"}

    def test_inf_values_parse(self, registry):
        parsed = parse_prometheus_text(render_prometheus(registry))
        les = [
            labels["le"]
            for name, labels, _ in parsed["demo_seconds"]["samples"]
            if name == "demo_seconds_bucket"
        ]
        assert "+Inf" in les
        assert math.isinf(parse_prometheus_text("# TYPE g gauge\ng +Inf\n")["g"]["samples"][0][2])

    def test_sample_without_type_rejected(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus_text("orphan_metric 1.0\n")

    def test_malformed_type_rejected(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus_text("# TYPE weird sometype\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus_text("# TYPE g gauge\ng not-a-number\n")

    def test_unparseable_sample_rejected(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus_text("# TYPE g gauge\n}{ 1.0\n")

    def test_comments_and_blanks_ignored(self):
        parsed = parse_prometheus_text("\n# a comment\n# TYPE g gauge\ng 1.0\n\n")
        assert parsed["g"]["samples"] == [("g", {}, 1.0)]
