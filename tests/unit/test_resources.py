"""Resource models Eq. 1/3/5 (repro.core.resources)."""

import pytest

from repro.core.resources import (
    engine_stage_map,
    merged_multiplier,
    merged_stage_map,
    scheme_resources,
)
from repro.errors import ConfigurationError
from repro.fpga.catalog import XC6VLX760
from repro.virt.schemes import Scheme


@pytest.fixture(scope="module")
def base_stats():
    from repro.iplookup.leafpush import leaf_push
    from repro.iplookup.synth import SyntheticTableConfig, generate_table
    from repro.iplookup.trie import UnibitTrie

    table = generate_table(SyntheticTableConfig(n_prefixes=400, seed=3))
    return leaf_push(UnibitTrie(table)).stats()


class TestMergedMultiplier:
    def test_k1_is_identity(self):
        assert merged_multiplier(1, 0.0) == 1.0
        assert merged_multiplier(1, 1.0) == 1.0

    def test_full_overlap_collapses(self):
        assert merged_multiplier(15, 1.0) == 1.0

    def test_no_overlap_stores_everything(self):
        assert merged_multiplier(15, 0.0) == 15.0

    def test_paper_alphas(self):
        assert merged_multiplier(15, 0.8) == pytest.approx(1 + 14 * 0.2)
        assert merged_multiplier(15, 0.2) == pytest.approx(1 + 14 * 0.8)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            merged_multiplier(0, 0.5)
        with pytest.raises(ConfigurationError):
            merged_multiplier(2, 1.5)


class TestMergedStageMap:
    def test_k1_reduces_to_engine_map(self, base_stats):
        base = engine_stage_map(base_stats, 28)
        merged = merged_stage_map(base_stats, 1, 0.5, 28)
        assert merged.total_bits == base.total_bits

    def test_alpha1_keeps_pointers_scales_nhi(self, base_stats):
        base = engine_stage_map(base_stats, 28)
        merged = merged_stage_map(base_stats, 5, 1.0, 28)
        assert merged.total_pointer_bits == base.total_pointer_bits
        # identical tables: same leaves, but each holds a 5-wide vector
        assert merged.total_nhi_bits > base.total_nhi_bits

    def test_memory_monotone_in_k(self, base_stats):
        bits = [merged_stage_map(base_stats, k, 0.5, 28).total_bits for k in (1, 4, 8, 15)]
        assert all(a < b for a, b in zip(bits, bits[1:]))

    def test_memory_monotone_in_alpha(self, base_stats):
        bits = [
            merged_stage_map(base_stats, 8, alpha, 28).total_bits
            for alpha in (0.0, 0.4, 0.8)
        ]
        assert all(a > b for a, b in zip(bits, bits[1:]))

    def test_depth_checked(self, base_stats):
        with pytest.raises(ConfigurationError):
            merged_stage_map(base_stats, 4, 0.5, base_stats.depth - 1)


class TestSchemeResources:
    def test_nv_device_count(self, base_stats):
        r = scheme_resources(Scheme.NV, 6, base_stats)
        assert r.devices == 6
        assert len(r.engine_maps) == 6
        assert r.total_usage.registers == 6 * r.per_device_usage.registers

    def test_vs_single_device_k_engines(self, base_stats):
        r = scheme_resources(Scheme.VS, 6, base_stats)
        assert r.devices == 1
        assert len(r.engine_maps) == 6
        nv = scheme_resources(Scheme.NV, 6, base_stats)
        # same engines, fewer devices: VS register usage ≈ NV total
        assert r.per_device_usage.registers == nv.total_usage.registers

    def test_vm_single_engine(self, base_stats):
        r = scheme_resources(Scheme.VM, 6, base_stats, alpha=0.8)
        assert r.devices == 1
        assert len(r.engine_maps) == 1

    def test_vm_requires_alpha_for_k_above_1(self, base_stats):
        with pytest.raises(ConfigurationError):
            scheme_resources(Scheme.VM, 6, base_stats)

    def test_memory_ordering_matches_fig4(self, base_stats):
        # separate memory > merged memory at high alpha
        vs = scheme_resources(Scheme.VS, 10, base_stats)
        vm80 = scheme_resources(Scheme.VM, 10, base_stats, alpha=0.8)
        vm20 = scheme_resources(Scheme.VM, 10, base_stats, alpha=0.2)
        assert vm80.total_memory_bits < vm20.total_memory_bits

    def test_fits_check(self, base_stats):
        r = scheme_resources(Scheme.VS, 4, base_stats)
        assert r.fits(XC6VLX760)

    def test_rejects_bad_k(self, base_stats):
        with pytest.raises(ConfigurationError):
            scheme_resources(Scheme.NV, 0, base_stats)
