"""Scenario estimator (repro.core.estimator)."""

import pytest

from repro.core.config import ScenarioConfig
from repro.core.estimator import base_trie_stats
from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig
from repro.virt.schemes import Scheme

#: small table keeps estimator tests fast
SMALL = SyntheticTableConfig(n_prefixes=400, seed=11)


def cfg(**kw):
    kw.setdefault("table", SMALL)
    return ScenarioConfig(**kw)


class TestBaseStats:
    def test_cached_and_leaf_pushed(self):
        a = base_trie_stats(SMALL)
        b = base_trie_stats(SMALL)
        assert a is b
        assert a.leaf_nodes == a.internal_nodes + 1  # full binary


class TestEvaluate:
    def test_nv_structure(self, estimator):
        r = estimator.evaluate(cfg(scheme=Scheme.NV, k=4))
        assert r.resources.devices == 4
        assert r.n_engines == 4
        assert r.model.total_w > 0
        assert r.experimental.total_w > 0

    def test_vs_structure(self, estimator):
        r = estimator.evaluate(cfg(scheme=Scheme.VS, k=4))
        assert r.resources.devices == 1
        assert r.placed.n_engines == 4

    def test_vm_structure(self, estimator):
        r = estimator.evaluate(cfg(scheme=Scheme.VM, k=4, alpha=0.5))
        assert r.placed.n_engines == 1
        assert r.n_engines == 1

    def test_experimental_breakdown_sums(self, estimator):
        r = estimator.evaluate(cfg(scheme=Scheme.VS, k=3))
        e = r.experimental
        assert e.total_w == pytest.approx(e.static_w + e.dynamic_w)

    def test_default_frequency_is_fmax(self, estimator):
        r = estimator.evaluate(cfg(scheme=Scheme.VS, k=2))
        assert r.frequency_mhz == pytest.approx(r.fmax_mhz)

    def test_explicit_frequency_respected(self, estimator):
        r = estimator.evaluate(cfg(scheme=Scheme.VS, k=2, frequency_mhz=150))
        assert r.frequency_mhz == 150
        assert r.model.frequency_mhz == 150

    def test_overclocking_rejected(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.evaluate(cfg(scheme=Scheme.VS, k=2, frequency_mhz=1000))

    def test_throughput_aggregation(self, estimator):
        vs = estimator.evaluate(cfg(scheme=Scheme.VS, k=4))
        vm = estimator.evaluate(cfg(scheme=Scheme.VM, k=4, alpha=0.8))
        assert vs.throughput_gbps > 3 * vm.throughput_gbps

    def test_error_metric_consistency(self, estimator):
        r = estimator.evaluate(cfg(scheme=Scheme.VM, k=6, alpha=0.2))
        manual = (r.model.total_w - r.experimental.total_w) / r.experimental.total_w * 100
        assert r.percentage_error == pytest.approx(manual)

    def test_vs_hits_io_wall_at_16(self, estimator):
        with pytest.raises(ResourceExhaustedError):
            estimator.evaluate(cfg(scheme=Scheme.VS, k=16))

    def test_sweep_k(self, estimator):
        results = estimator.sweep_k(cfg(scheme=Scheme.NV, k=1), [1, 2, 3])
        assert [r.config.k for r in results] == [1, 2, 3]
        totals = [r.model.total_w for r in results]
        assert totals[0] < totals[1] < totals[2]


class TestExperimentalPower:
    def test_from_reports_aggregates(self, estimator):
        r = estimator.evaluate(cfg(scheme=Scheme.NV, k=3))
        # NV aggregates K per-device reports; static must be ~K × device
        assert r.experimental.static_w == pytest.approx(3 * 4.5, rel=0.05)


class TestGradeBehaviour:
    def test_low_power_grade_cheaper_but_slower(self, estimator):
        g2 = estimator.evaluate(cfg(scheme=Scheme.VS, k=4))
        g1l = estimator.evaluate(cfg(scheme=Scheme.VS, k=4, grade=SpeedGrade.G1L))
        assert g1l.experimental.total_w < g2.experimental.total_w
        assert g1l.throughput_gbps < g2.throughput_gbps
