"""QoS / admission control (repro.virt.qos)."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.virt.qos import WeightedScheduler, admissible, check_admission


class TestAdmission:
    def test_fits(self):
        report = check_admission(100.0, [30, 30, 30])
        assert report.admissible
        assert report.utilization == pytest.approx(0.9)
        assert report.headroom_gbps == pytest.approx(10.0)

    def test_overload_rejected(self):
        assert not admissible(100.0, [60, 60])

    def test_single_demand_above_line_rate(self):
        assert not admissible(100.0, [150.0])

    def test_exact_fit(self):
        assert admissible(100.0, [50, 50])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            check_admission(0.0, [1])
        with pytest.raises(ConfigurationError):
            check_admission(10.0, [])
        with pytest.raises(ConfigurationError):
            check_admission(10.0, [-1.0])

    def test_paper_scalability_claim(self):
        """Section IV-C: enough merged VNs eventually exceed the engine."""
        capacity = 100.0
        per_vn = 12.0
        ks = [k for k in range(1, 20) if admissible(capacity, [per_vn] * k)]
        assert max(ks) == 8  # 9 × 12 > 100


class TestScheduler:
    def test_work_conserving(self):
        sched = WeightedScheduler([1, 1])
        arrivals = np.zeros((10, 2), dtype=np.int64)
        arrivals[0, 0] = 5  # burst on VN 0 only
        out = sched.simulate(arrivals)
        assert out["served"][0] == 5
        assert out["backlog"].sum() == 0

    def test_proportional_service_under_overload(self):
        sched = WeightedScheduler([3, 1])
        arrivals = np.ones((4000, 2), dtype=np.int64)  # 2x overload
        out = sched.simulate(arrivals)
        ratio = out["served"][0] / out["served"][1]
        assert 2.5 < ratio < 3.5

    def test_admissible_load_fully_served(self):
        sched = WeightedScheduler([1, 1, 2])
        assert sched.verify_guarantee(np.array([0.2, 0.2, 0.4]), cycles=4000)

    def test_skewed_weights_end_of_run_backlog_counts_as_in_flight(self):
        """Regression: a packet still queued when the run ends is in
        flight, not lost.  With heavily skewed weights the low-weight
        VN sees few packets, so one queued packet used to exceed the
        shortfall tolerance and spuriously fail the guarantee."""
        sched = WeightedScheduler([50, 1])
        assert sched.verify_guarantee(np.array([0.9, 0.02]), cycles=600)

    def test_skewed_weights_offered_load_served(self):
        """Strongly skewed but admissible demand vectors still pass."""
        sched = WeightedScheduler([100, 4, 1])
        assert sched.verify_guarantee(np.array([0.8, 0.1, 0.02]), cycles=3000)

    def test_overload_raises(self):
        sched = WeightedScheduler([1, 1])
        with pytest.raises(CapacityError):
            sched.verify_guarantee(np.array([0.7, 0.7]))

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            WeightedScheduler([])
        with pytest.raises(ConfigurationError):
            WeightedScheduler([1.0, 0.0])

    def test_rejects_bad_arrival_shape(self):
        sched = WeightedScheduler([1, 1])
        with pytest.raises(ConfigurationError):
            sched.simulate(np.zeros((5, 3), dtype=np.int64))
        with pytest.raises(ConfigurationError):
            sched.simulate(np.full((5, 2), -1))

    def test_backlog_high_water_mark(self):
        sched = WeightedScheduler([1])
        arrivals = np.zeros((5, 1), dtype=np.int64)
        arrivals[0, 0] = 4
        out = sched.simulate(arrivals)
        assert out["max_backlog"][0] == 4
