"""QoS / admission control (repro.virt.qos)."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.virt.qos import WeightedScheduler, admissible, check_admission


class TestAdmission:
    def test_fits(self):
        report = check_admission(100.0, [30, 30, 30])
        assert report.admissible
        assert report.utilization == pytest.approx(0.9)
        assert report.headroom_gbps == pytest.approx(10.0)

    def test_overload_rejected(self):
        assert not admissible(100.0, [60, 60])

    def test_single_demand_above_line_rate(self):
        assert not admissible(100.0, [150.0])

    def test_exact_fit(self):
        assert admissible(100.0, [50, 50])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            check_admission(0.0, [1])
        with pytest.raises(ConfigurationError):
            check_admission(10.0, [])
        with pytest.raises(ConfigurationError):
            check_admission(10.0, [-1.0])

    def test_paper_scalability_claim(self):
        """Section IV-C: enough merged VNs eventually exceed the engine."""
        capacity = 100.0
        per_vn = 12.0
        ks = [k for k in range(1, 20) if admissible(capacity, [per_vn] * k)]
        assert max(ks) == 8  # 9 × 12 > 100

    def test_zero_capacity_rejected_even_for_zero_demand(self):
        """An offline shard has no admissible configuration — the
        frontend must special-case ρ_eff = 0 before calling in."""
        with pytest.raises(ConfigurationError):
            check_admission(0.0, [0.0])
        with pytest.raises(ConfigurationError):
            check_admission(-5.0, [1.0])

    def test_single_oversubscribed_vn_sinks_the_vector(self):
        """One VN above line rate is inadmissible no matter how much
        headroom the rest of the vector leaves."""
        report = check_admission(100.0, [150.0, 0.0, 0.0])
        assert not report.admissible
        assert report.utilization == pytest.approx(1.5)
        assert report.headroom_gbps == pytest.approx(-50.0)

    def test_exact_boundary_admits_with_zero_headroom(self):
        """Total == capacity and max == capacity are both admissible:
        the guarantee is ≤, not <."""
        report = check_admission(100.0, [100.0])
        assert report.admissible
        assert report.headroom_gbps == pytest.approx(0.0)
        assert report.utilization == pytest.approx(1.0)
        # one epsilon over the boundary flips it
        assert not admissible(100.0, [100.0 + 1e-9])

    def test_all_zero_demands_are_admissible(self):
        report = check_admission(50.0, [0.0, 0.0, 0.0])
        assert report.admissible
        assert report.utilization == pytest.approx(0.0)


class TestScheduler:
    def test_work_conserving(self):
        sched = WeightedScheduler([1, 1])
        arrivals = np.zeros((10, 2), dtype=np.int64)
        arrivals[0, 0] = 5  # burst on VN 0 only
        out = sched.simulate(arrivals)
        assert out["served"][0] == 5
        assert out["backlog"].sum() == 0

    def test_proportional_service_under_overload(self):
        sched = WeightedScheduler([3, 1])
        arrivals = np.ones((4000, 2), dtype=np.int64)  # 2x overload
        out = sched.simulate(arrivals)
        ratio = out["served"][0] / out["served"][1]
        assert 2.5 < ratio < 3.5

    def test_admissible_load_fully_served(self):
        sched = WeightedScheduler([1, 1, 2])
        assert sched.verify_guarantee(np.array([0.2, 0.2, 0.4]), cycles=4000)

    def test_skewed_weights_end_of_run_backlog_counts_as_in_flight(self):
        """Regression: a packet still queued when the run ends is in
        flight, not lost.  With heavily skewed weights the low-weight
        VN sees few packets, so one queued packet used to exceed the
        shortfall tolerance and spuriously fail the guarantee."""
        sched = WeightedScheduler([50, 1])
        assert sched.verify_guarantee(np.array([0.9, 0.02]), cycles=600)

    def test_skewed_weights_offered_load_served(self):
        """Strongly skewed but admissible demand vectors still pass."""
        sched = WeightedScheduler([100, 4, 1])
        assert sched.verify_guarantee(np.array([0.8, 0.1, 0.02]), cycles=3000)

    def test_overload_raises(self):
        sched = WeightedScheduler([1, 1])
        with pytest.raises(CapacityError):
            sched.verify_guarantee(np.array([0.7, 0.7]))

    @staticmethod
    def _starvation_workload():
        """VN 0 saturates the engine before VN 1's burst arrives.

        Admissible on average (rates sum to 1.0), but the temporal
        structure matters: once VN 0's queue never empties, VN 1's
        packets can only be served if the weights let it win contested
        cycles.
        """
        arrivals = np.zeros((1000, 2), dtype=np.int64)
        arrivals[20:, 0] = 1  # rate 0.98, always backlogged after cycle 20
        arrivals[500:520, 1] = 1  # rate 0.02, arriving mid-run
        return np.array([0.98, 0.02]), arrivals

    def test_starved_vn_fails_guarantee(self):
        """Regression: verify_guarantee used to credit the entire
        end-of-run backlog as served.  simulate() conserves packets, so
        the shortfall was identically zero and the check could never
        return False — a weight vector that fully starves a VN
        'passed'.  With the bounded in-flight allowance it must fail."""
        demands, arrivals = self._starvation_workload()
        starving = WeightedScheduler([1.0, 1e-6])
        assert not starving.verify_guarantee(demands, arrivals=arrivals)
        # the pre-fix arithmetic would have passed vacuously: nothing
        # of VN 1's burst was served, it all sat in the backlog
        out = starving.simulate(arrivals)
        assert out["served"][1] == 0
        assert out["backlog"][1] == arrivals[:, 1].sum()

    def test_fair_weights_pass_same_workload(self):
        """The same workload under fair weights is served: the failure
        above is the weights' fault, not the traffic's."""
        demands, arrivals = self._starvation_workload()
        assert WeightedScheduler([0.5, 0.5]).verify_guarantee(
            demands, arrivals=arrivals
        )

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            WeightedScheduler([])
        with pytest.raises(ConfigurationError):
            WeightedScheduler([1.0, 0.0])

    def test_rejects_bad_arrival_shape(self):
        sched = WeightedScheduler([1, 1])
        with pytest.raises(ConfigurationError):
            sched.simulate(np.zeros((5, 3), dtype=np.int64))
        with pytest.raises(ConfigurationError):
            sched.simulate(np.full((5, 2), -1))

    def test_backlog_high_water_mark(self):
        sched = WeightedScheduler([1])
        arrivals = np.zeros((5, 1), dtype=np.int64)
        arrivals[0, 0] = 4
        out = sched.simulate(arrivals)
        assert out["max_backlog"][0] == 4

    @staticmethod
    def _bursty_arrivals(cycles, k, rate, burst, period, seed):
        """Admissible mean rate delivered in periodic bursts."""
        rng = np.random.default_rng(seed)
        arrivals = np.zeros((cycles, k), dtype=np.int64)
        for vn in range(k):
            burst_cycles = np.arange(vn, cycles, period)
            per_burst = int(round(rate * period))
            arrivals[burst_cycles, vn] = per_burst
            # jitter a few packets around so bursts are not identical
            extra = rng.integers(0, cycles, size=burst)
            for c in extra:
                arrivals[c, vn] += 1
        return arrivals

    def test_bursty_admissible_load_conserves_packets(self):
        """Bursts queue but never lose packets: served + backlog
        accounts for every arrival, per VN."""
        sched = WeightedScheduler([1, 1, 1])
        arrivals = self._bursty_arrivals(3000, 3, rate=0.25, burst=30, period=20, seed=7)
        out = sched.simulate(arrivals)
        totals = arrivals.sum(axis=0)
        assert np.array_equal(out["served"] + out["backlog"], totals)

    def test_bursty_backlog_peaks_at_burst_size_then_drains(self):
        """A periodic burst under admissible mean load drains before
        the next one: the high-water mark is the burst amplitude, and
        the end-of-run backlog is (near) zero."""
        sched = WeightedScheduler([1])
        arrivals = np.zeros((1000, 1), dtype=np.int64)
        arrivals[::100, 0] = 50  # rate 0.5, amplitude 50
        out = sched.simulate(arrivals)
        assert out["max_backlog"][0] == 50
        assert out["backlog"][0] == 0

    def test_bursty_guarantee_holds_for_weighted_shares(self):
        """Weighted guarantee survives bursty (not fluid) arrivals as
        long as the mean demand vector stays admissible."""
        sched = WeightedScheduler([2, 1, 1])
        arrivals = self._bursty_arrivals(4000, 3, rate=0.3, burst=20, period=10, seed=11)
        demands = arrivals.sum(axis=0) / len(arrivals)
        assert demands.sum() < 1.0
        assert sched.verify_guarantee(demands, arrivals=arrivals)

    def test_simultaneous_bursts_split_by_weight(self):
        """When every VN bursts in the same cycle, contested cycles
        resolve by weight: over a horizon too short to drain both
        queues, the 3-weight VN gets ~3x the service."""
        sched = WeightedScheduler([3, 1])
        arrivals = np.zeros((60, 2), dtype=np.int64)
        arrivals[0] = [90, 90]  # joint burst, engine saturated throughout
        out = sched.simulate(arrivals)
        assert out["served"].sum() + out["backlog"].sum() == 180
        ratio = out["served"][0] / out["served"][1]
        assert 2.5 < ratio < 3.5
