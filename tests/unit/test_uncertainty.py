"""Uncertainty propagation (repro.core.uncertainty)."""

import numpy as np
import pytest

from repro.core.estimator import ScenarioEstimator, base_trie_stats
from repro.core.config import ScenarioConfig
from repro.core.power import AnalyticalPowerModel
from repro.core.resources import engine_stage_map, merged_stage_map
from repro.core.uncertainty import PowerBounds, Tolerances, power_bounds
from repro.errors import ConfigurationError
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig
from repro.virt.schemes import Scheme

TABLE = SyntheticTableConfig(n_prefixes=400, seed=11)


@pytest.fixture(scope="module")
def setup():
    stats = base_trie_stats(TABLE)
    base = engine_stage_map(stats, 28)
    model = AnalyticalPowerModel(SpeedGrade.G2)
    return stats, base, model


class TestTolerances:
    def test_paper_defaults(self):
        t = Tolerances()
        assert t.static == 0.05
        assert t.logic == t.memory == 0.03

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            Tolerances(static=1.0)
        with pytest.raises(ConfigurationError):
            Tolerances(logic=-0.1)


class TestPowerBounds:
    def test_bounds_bracket_nominal(self, setup):
        _, base, model = setup
        mu = np.full(4, 0.25)
        bounds = power_bounds(model, Scheme.VS, [base] * 4, 300, mu)
        assert bounds.low_w < bounds.nominal_w < bounds.high_w

    def test_zero_tolerance_collapses(self, setup):
        _, base, model = setup
        mu = np.array([1.0])
        bounds = power_bounds(
            model,
            Scheme.VS,
            [base],
            300,
            mu,
            tolerances=Tolerances(static=0.0, logic=0.0, memory=0.0),
        )
        assert bounds.width_w == pytest.approx(0.0)

    def test_width_scales_with_tolerance(self, setup):
        _, base, model = setup
        mu = np.array([1.0])
        narrow = power_bounds(
            model, Scheme.VS, [base], 300, mu, tolerances=Tolerances(static=0.01)
        )
        wide = power_bounds(
            model, Scheme.VS, [base], 300, mu, tolerances=Tolerances(static=0.05)
        )
        assert wide.width_w > narrow.width_w

    def test_static_dominates_half_width(self, setup):
        """Static is ~95 % of a VS scenario, so the half-width is
        close to the 5 % static tolerance."""
        _, base, model = setup
        mu = np.full(8, 1 / 8)
        bounds = power_bounds(model, Scheme.VS, [base] * 8, 300, mu)
        assert 4.0 <= bounds.half_width_pct <= 5.0

    def test_vm_scheme(self, setup):
        stats, _, model = setup
        merged = merged_stage_map(stats, 6, 0.5, 28)
        bounds = power_bounds(model, Scheme.VM, [merged], 250, np.full(6, 1 / 6))
        assert bounds.scheme is Scheme.VM
        assert bounds.contains(bounds.nominal_w)

    def test_bad_bracket_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerBounds(scheme=Scheme.VS, k=1, nominal_w=5.0, low_w=6.0, high_w=7.0)


class TestExperimentalInsideBounds:
    def test_simulated_measurements_fall_inside(self, setup):
        """The ±3 % validation claim, as an interval check: every
        simulated post-P&R measurement lies inside the model bounds."""
        _, _, model = setup
        estimator = ScenarioEstimator()
        for scheme, alpha in ((Scheme.NV, None), (Scheme.VS, None), (Scheme.VM, 0.5)):
            for k in (2, 8):
                result = estimator.evaluate(
                    ScenarioConfig(scheme=scheme, k=k, alpha=alpha, table=TABLE)
                )
                bounds = power_bounds(
                    model,
                    scheme,
                    list(result.resources.engine_maps),
                    result.frequency_mhz,
                    result.config.utilization_vector(),
                )
                assert bounds.contains(result.experimental.total_w), (
                    f"{scheme} K={k}: {result.experimental.total_w:.3f} W outside "
                    f"[{bounds.low_w:.3f}, {bounds.high_w:.3f}]"
                )
