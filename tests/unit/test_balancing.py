"""Memory-balanced stage mapping (repro.iplookup.balancing)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iplookup.balancing import balance_factor, balanced_stage_map
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.mapping import map_trie_to_stages
from repro.iplookup.synth import SyntheticTableConfig, generate_table
from repro.iplookup.trie import UnibitTrie


@pytest.fixture(scope="module")
def pushed_trie():
    table = generate_table(SyntheticTableConfig(n_prefixes=1000, seed=13))
    return leaf_push(UnibitTrie(table))


class TestConservation:
    def test_total_memory_preserved(self, pushed_trie):
        naive = map_trie_to_stages(pushed_trie.stats(), 28)
        balanced = balanced_stage_map(pushed_trie, 28)
        assert balanced.stage_map.total_bits == naive.total_bits
        assert balanced.stage_map.total_pointer_bits == naive.total_pointer_bits
        assert balanced.stage_map.total_nhi_bits == naive.total_nhi_bits

    def test_node_count_preserved(self, pushed_trie):
        naive = map_trie_to_stages(pushed_trie.stats(), 28)
        balanced = balanced_stage_map(pushed_trie, 28)
        assert balanced.stage_map.nodes_per_stage.sum() == naive.nodes_per_stage.sum()

    def test_vector_width_respected(self, pushed_trie):
        naive = map_trie_to_stages(pushed_trie.stats(), 28, nhi_vector_width=4)
        balanced = balanced_stage_map(pushed_trie, 28, nhi_vector_width=4)
        assert balanced.stage_map.total_bits == naive.total_bits


class TestBalancing:
    def test_widest_stage_shrinks(self, pushed_trie):
        naive = map_trie_to_stages(pushed_trie.stats(), 28)
        balanced = balanced_stage_map(pushed_trie, 28)
        assert balanced.widest_bits < naive.widest_stage_bits()
        assert balanced.improvement > 1.5

    def test_balance_factor_improves(self, pushed_trie):
        naive = map_trie_to_stages(pushed_trie.stats(), 28)
        balanced = balanced_stage_map(pushed_trie, 28)
        assert balance_factor(balanced.stage_map) < balance_factor(naive)

    def test_offsets_cover_subtries(self, pushed_trie):
        balanced = balanced_stage_map(pushed_trie, 28, split_level=8)
        assert len(balanced.offsets) > 1
        assert all(0 <= o < 28 - 7 for o in balanced.offsets)

    def test_balance_factor_of_flat_map_is_one(self):
        from repro.iplookup.mapping import NodeFormat, StageMemoryMap

        flat = StageMemoryMap(
            n_stages=4,
            pointer_bits_per_stage=np.full(4, 100),
            nhi_bits_per_stage=np.zeros(4, dtype=np.int64),
            nodes_per_stage=np.full(4, 5),
            node_format=NodeFormat(),
            nhi_vector_width=1,
        )
        assert balance_factor(flat) == 1.0


class TestEdgeCases:
    def test_shallow_trie(self):
        table_trie = UnibitTrie()
        from repro.iplookup.prefix import parse_prefix

        table_trie.insert(parse_prefix("10.0.0.0/8"), 1)
        balanced = balanced_stage_map(table_trie, 28)
        naive_total = map_trie_to_stages(table_trie.stats(), 28).total_bits
        assert balanced.stage_map.total_bits == naive_total

    def test_split_deeper_than_trie_clamps(self, pushed_trie):
        balanced = balanced_stage_map(pushed_trie, 32, split_level=31)
        assert balanced.split_level <= pushed_trie.depth()

    def test_too_shallow_pipeline_rejected(self, pushed_trie):
        with pytest.raises(ConfigurationError):
            balanced_stage_map(pushed_trie, pushed_trie.depth() - 1)

    def test_zero_stage_rejected(self, pushed_trie):
        with pytest.raises(ConfigurationError):
            balanced_stage_map(pushed_trie, 0)
