"""TCAM baseline (repro.baselines.tcam)."""

import pytest

from repro.baselines.tcam import TcamConfig, TcamModel
from repro.errors import ConfigurationError


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            TcamConfig(n_entries=0)
        with pytest.raises(ConfigurationError):
            TcamConfig(n_entries=10, activation_fraction=0.0)
        with pytest.raises(ConfigurationError):
            TcamConfig(n_entries=10, entry_energy_pj=-1)


class TestPowerModel:
    def test_dynamic_scales_with_table_size(self):
        small = TcamModel.conventional(1000).dynamic_power_w(100)
        large = TcamModel.conventional(10000).dynamic_power_w(100)
        assert large == pytest.approx(10 * small)

    def test_dynamic_linear_in_rate(self):
        m = TcamModel.conventional(3725)
        assert m.dynamic_power_w(200) == pytest.approx(2 * m.dynamic_power_w(100))

    def test_blocked_saves_power(self):
        conv = TcamModel.conventional(3725)
        blocked = TcamModel.blocked(3725, n_banks=8)
        assert blocked.dynamic_power_w(100) == pytest.approx(
            conv.dynamic_power_w(100) / 8
        )

    def test_ipstash_is_35_percent_better(self):
        conv = TcamModel.conventional(3725)
        stash = TcamModel.ipstash(3725)
        ratio = stash.dynamic_power_w(100) / conv.dynamic_power_w(100)
        assert ratio == pytest.approx(0.65)

    def test_total_includes_static(self):
        m = TcamModel.conventional(1000)
        assert m.total_power_w(100) == pytest.approx(
            m.static_power_w() + m.dynamic_power_w(100)
        )

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            TcamModel.conventional(10).dynamic_power_w(-1)

    def test_blocked_rejects_bad_banks(self):
        with pytest.raises(ConfigurationError):
            TcamModel.blocked(10, n_banks=0)


class TestComparisonWithTrie:
    def test_trie_pipeline_beats_conventional_tcam(self):
        """The premise of the paper's architecture choice (Section II-B)."""
        from repro.core.power import AnalyticalPowerModel
        from repro.core.resources import engine_stage_map
        from repro.core.estimator import base_trie_stats
        from repro.iplookup.synth import SyntheticTableConfig
        from repro.fpga.speedgrade import SpeedGrade
        import numpy as np

        stats = base_trie_stats(SyntheticTableConfig(n_prefixes=400, seed=11))
        stage_map = engine_stage_map(stats, 28)
        model = AnalyticalPowerModel(SpeedGrade.G2)
        trie_dynamic = model.power_vs([stage_map], 200, np.array([1.0])).dynamic_w
        tcam_dynamic = TcamModel.conventional(3725).dynamic_power_w(200)
        assert trie_dynamic < tcam_dynamic

    def test_mw_per_gbps_computable(self):
        m = TcamModel.conventional(3725)
        assert m.mw_per_gbps(150) > 0
