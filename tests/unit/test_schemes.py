"""Scheme descriptors (repro.virt.schemes)."""

import pytest

from repro.errors import ConfigurationError
from repro.virt.schemes import Scheme


class TestScheme:
    def test_device_counts(self):
        assert Scheme.NV.devices_required(7) == 7
        assert Scheme.VS.devices_required(7) == 1
        assert Scheme.VM.devices_required(7) == 1

    def test_engine_counts(self):
        assert Scheme.NV.engines_required(7) == 7
        assert Scheme.VS.engines_required(7) == 7
        assert Scheme.VM.engines_required(7) == 1

    def test_virtualized_flags(self):
        assert not Scheme.NV.is_virtualized
        assert Scheme.VS.is_virtualized and Scheme.VM.is_virtualized

    def test_shares_engine(self):
        assert Scheme.VM.shares_engine
        assert not Scheme.VS.shares_engine

    def test_parse(self):
        assert Scheme.parse("nv") is Scheme.NV
        assert Scheme.parse("virtualized-merged") is Scheme.VM

    def test_parse_unknown(self):
        with pytest.raises(ConfigurationError):
            Scheme.parse("hybrid")

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            Scheme.NV.devices_required(0)
        with pytest.raises(ConfigurationError):
            Scheme.VM.engines_required(0)

    def test_str(self):
        assert str(Scheme.VS) == "VS"
