"""Speed grades (repro.fpga.speedgrade)."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.speedgrade import SpeedGrade, grade_data


class TestSpeedGrade:
    def test_parse(self):
        assert SpeedGrade.parse("-2") is SpeedGrade.G2
        assert SpeedGrade.parse("-1l") is SpeedGrade.G1L
        assert SpeedGrade.parse(" -1L ") is SpeedGrade.G1L

    def test_parse_unknown(self):
        with pytest.raises(ConfigurationError):
            SpeedGrade.parse("-3")

    def test_str(self):
        assert str(SpeedGrade.G2) == "-2"
        assert str(SpeedGrade.G1L) == "-1L"


class TestGradeData:
    def test_paper_static_power(self):
        assert grade_data(SpeedGrade.G2).static_power_w == 4.5
        assert grade_data(SpeedGrade.G1L).static_power_w == 3.1

    def test_paper_table3_coefficients(self):
        g2 = grade_data(SpeedGrade.G2)
        g1l = grade_data(SpeedGrade.G1L)
        assert g2.bram18_uw_per_mhz == 13.65
        assert g2.bram36_uw_per_mhz == 24.60
        assert g1l.bram18_uw_per_mhz == 11.00
        assert g1l.bram36_uw_per_mhz == 19.70

    def test_paper_logic_coefficients(self):
        assert grade_data(SpeedGrade.G2).logic_stage_uw_per_mhz == 5.180
        assert grade_data(SpeedGrade.G1L).logic_stage_uw_per_mhz == 3.937

    def test_low_power_grade_is_slower_and_cooler(self):
        g2 = grade_data(SpeedGrade.G2)
        g1l = grade_data(SpeedGrade.G1L)
        assert g1l.static_power_w < g2.static_power_w
        assert g1l.base_fmax_mhz < g2.base_fmax_mhz
        assert g1l.logic_stage_uw_per_mhz < g2.logic_stage_uw_per_mhz

    def test_throughput_cost_roughly_thirty_percent(self):
        g2 = grade_data(SpeedGrade.G2)
        g1l = grade_data(SpeedGrade.G1L)
        ratio = g1l.base_fmax_mhz / g2.base_fmax_mhz
        assert 0.65 <= ratio <= 0.75
