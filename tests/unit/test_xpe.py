"""XPE-like characterization (repro.fpga.xpe)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fpga.bram import BramKind
from repro.fpga.speedgrade import SpeedGrade
from repro.fpga.xpe import FrequencySweep, XPowerEstimator


class TestSweeps:
    def test_bram_sweep_monotone(self):
        sweep = XPowerEstimator().bram_sweep(BramKind.B18, SpeedGrade.G2)
        assert (np.diff(sweep.power_uw) > 0).all()

    def test_logic_sweep_monotone(self):
        sweep = XPowerEstimator().logic_stage_sweep(SpeedGrade.G2)
        assert (np.diff(sweep.power_uw) > 0).all()

    def test_36k_above_18k(self):
        xpe = XPowerEstimator()
        s18 = xpe.bram_sweep(BramKind.B18, SpeedGrade.G2)
        s36 = xpe.bram_sweep(BramKind.B36, SpeedGrade.G2)
        assert (s36.power_uw > s18.power_uw).all()

    def test_rejects_bad_frequencies(self):
        with pytest.raises(ConfigurationError):
            XPowerEstimator(frequencies_mhz=[])
        with pytest.raises(ConfigurationError):
            XPowerEstimator(frequencies_mhz=[-100.0])


class TestTable3Fit:
    def test_recovers_published_coefficients(self):
        fitted = XPowerEstimator().table3()
        assert fitted[(BramKind.B18, SpeedGrade.G2)] == pytest.approx(13.65)
        assert fitted[(BramKind.B36, SpeedGrade.G2)] == pytest.approx(24.60)
        assert fitted[(BramKind.B18, SpeedGrade.G1L)] == pytest.approx(11.00)
        assert fitted[(BramKind.B36, SpeedGrade.G1L)] == pytest.approx(19.70)

    def test_fit_residual_is_numerically_zero(self):
        sweep = XPowerEstimator().bram_sweep(BramKind.B36, SpeedGrade.G1L)
        assert sweep.max_residual_uw() < 1e-9

    def test_logic_fit_matches_section_5c(self):
        sweep = XPowerEstimator().logic_stage_sweep(SpeedGrade.G2)
        assert sweep.fit_uw_per_mhz() == pytest.approx(5.180)


class TestFrequencySweep:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencySweep("x", np.array([1.0, 2.0]), np.array([1.0]))

    def test_all_zero_frequencies_rejected(self):
        sweep = FrequencySweep("x", np.zeros(3), np.zeros(3))
        with pytest.raises(ConfigurationError):
            sweep.fit_uw_per_mhz()
