"""GitHub-annotation reporter coverage (``--format github``)."""

import textwrap

from repro.staticcheck import LintConfig, lint_paths, render_github
from repro.staticcheck.finding import Finding
from repro.staticcheck.runner import LintReport
from repro.tools.repro_lint import main as lint_main


class TestRenderGithub:
    def test_error_workflow_command_shape(self):
        report = LintReport(
            findings=[
                Finding(path="src/m.py", line=7, col=4, rule="FLT001", message="no == floats")
            ],
            files_checked=1,
        )
        out = render_github(report)
        assert (
            "::error file=src/m.py,line=7,col=5,title=FLT001::FLT001: no == floats"
            in out
        )
        assert "1 finding(s)" in out

    def test_newlines_and_percent_are_escaped(self):
        report = LintReport(
            findings=[
                Finding(path="m.py", line=1, col=0, rule="X001", message="50% bad\nreally")
            ]
        )
        out = render_github(report)
        assert "50%25 bad%0Areally" in out
        assert "\nreally" not in out.splitlines()[0]

    def test_clean_report_has_only_the_summary(self):
        out = render_github(LintReport(files_checked=3))
        assert out == "0 finding(s), 0 suppressed, 3 file(s) checked"


class TestCliGithubFormat:
    def test_cli_emits_workflow_commands(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def check(x):\n    return x == 1.0\n")
        code = lint_main(
            ["--no-config", "--select", "FLT001", "--format", "github", str(dirty)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "FLT001" in out

    def test_github_format_respects_suppressions(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text(
            textwrap.dedent(
                """
                def check(x):
                    return x == 1.0  # repro-lint: disable=FLT001
                """
            )
        )
        code = lint_main(
            ["--no-config", "--select", "FLT001", "--format", "github", str(clean)]
        )
        assert code == 0
        assert "::error" not in capsys.readouterr().out


class TestStatisticsTimings:
    def test_text_statistics_report_pass_timings(self, tmp_path):
        (tmp_path / "m.py").write_text("X = 1\n")
        from repro.staticcheck import render_text

        report = lint_paths([tmp_path], LintConfig(root=tmp_path))
        out = render_text(report, statistics=True)
        assert "project pass" in out
        assert report.duration_s >= report.project_duration_s >= 0.0
