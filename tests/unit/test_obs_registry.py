"""Unit tests for the metrics registry (repro.obs.registry)."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(4.0)
        g.inc(1.0)
        g.dec(2.0)
        assert g.value == 3.0


class TestHistogramBucketMath:
    def test_le_semantics_on_exact_bound(self):
        """An observation equal to a bound lands in that bound's bucket."""
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        h.observe(2.0)
        assert h.bucket_counts() == (0, 1, 0, 0)

    def test_overflow_lands_in_inf_bucket_only(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.bucket_counts() == (0, 0, 1)
        assert h.cumulative_counts() == (0, 0, 1)

    def test_cumulative_counts_are_running_totals(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 1.5, 3.0, 9.0):
            h.observe(value)
        assert h.bucket_counts() == (2, 1, 1, 1)
        assert h.cumulative_counts() == (2, 3, 4, 5)
        assert h.cumulative_counts()[-1] == h.count

    def test_sum_and_count(self):
        h = Histogram(bounds=(1.0,))
        h.observe(0.25)
        h.observe(4.0)
        assert h.count == 2
        assert h.sum == pytest.approx(4.25)

    def test_default_bounds_strictly_increasing(self):
        assert all(
            b2 > b1
            for b1, b2 in zip(DEFAULT_LATENCY_BUCKETS_S, DEFAULT_LATENCY_BUCKETS_S[1:])
        )

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram(bounds=())


class TestMetricFamily:
    def test_labels_get_or_create(self, registry):
        family = registry.counter("x_total", "x", labels=("scheme",))
        family.labels("VS").inc()
        family.labels("VS").inc()
        family.labels("NV").inc()
        values = {key: child.value for key, child in family.samples()}
        assert values == {("VS",): 2.0, ("NV",): 1.0}

    def test_label_values_are_stringified(self, registry):
        family = registry.gauge("g", "g", labels=("vn",))
        family.labels(3).set(1.0)
        assert family.labels("3").value == 1.0

    def test_label_arity_enforced(self, registry):
        family = registry.counter("y_total", "y", labels=("a", "b"))
        with pytest.raises(ObservabilityError):
            family.labels("only-one")

    def test_labelless_passthroughs(self, registry):
        registry.counter("c_total", "c").inc(2)
        registry.gauge("g2", "g").set(7)
        registry.histogram("h_seconds", "h").observe(0.001)
        assert registry.get("c_total").labels().value == 2.0
        assert registry.get("g2").labels().value == 7.0
        assert registry.get("h_seconds").labels().count == 1

    def test_wrong_passthrough_kind_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("c2_total", "c").observe(1.0)
        with pytest.raises(ObservabilityError):
            registry.histogram("h2_seconds", "h").inc()

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("bad name", "x")
        with pytest.raises(ObservabilityError):
            registry.counter("ok_total", "x", labels=("bad-label",))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        a = registry.counter("z_total", "z", labels=("scheme",))
        b = registry.counter("z_total", "other help", labels=("scheme",))
        assert a is b

    def test_conflicting_reregistration_rejected(self, registry):
        registry.counter("w_total", "w")
        with pytest.raises(ObservabilityError):
            registry.gauge("w_total", "w")
        with pytest.raises(ObservabilityError):
            registry.counter("w_total", "w", labels=("scheme",))

    def test_collect_sorted_by_name(self, registry):
        registry.counter("b_total", "")
        registry.counter("a_total", "")
        assert [f.name for f in registry.collect()] == ["a_total", "b_total"]

    def test_reset_keeps_families_clears_children(self, registry):
        family = registry.counter("r_total", "", labels=("scheme",))
        family.labels("VS").inc()
        registry.reset()
        assert registry.get("r_total") is family
        assert list(family.samples()) == []
        family.labels("VS").inc()  # cached handle still usable
        assert family.labels("VS").value == 1.0

    def test_enabled_scope_restores_flag(self):
        registry = MetricsRegistry(enabled=False)
        with registry.enabled_scope():
            assert registry.enabled
        assert not registry.enabled

    def test_starts_disabled_by_default(self):
        assert not MetricsRegistry().enabled

    def test_infinite_observation_allowed(self, registry):
        h = registry.histogram("inf_seconds", "h", buckets=(1.0,))
        h.observe(math.inf)
        assert h.labels().bucket_counts() == (0, 1)
