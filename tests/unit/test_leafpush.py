"""Leaf pushing (repro.iplookup.leafpush)."""

import numpy as np

from repro.iplookup.leafpush import leaf_push
from repro.iplookup.prefix import parse_prefix
from repro.iplookup.rib import NO_ROUTE, RoutingTable
from repro.iplookup.trie import UnibitTrie


class TestStructure:
    def test_postcondition(self, small_pushed):
        assert small_pushed.is_leaf_pushed()

    def test_output_validates(self, small_pushed):
        small_pushed.validate()

    def test_input_not_modified(self, small_table):
        trie = UnibitTrie(small_table)
        before = trie.num_nodes
        leaf_push(trie)
        assert trie.num_nodes == before

    def test_full_binary_node_count_is_odd(self, small_pushed):
        # full binary tree: leaves = internal + 1 → total odd
        assert small_pushed.num_nodes % 2 == 1

    def test_grows_node_count(self, small_trie, small_pushed):
        assert small_pushed.num_nodes >= small_trie.num_nodes

    def test_empty_trie(self):
        pushed = leaf_push(UnibitTrie())
        assert pushed.num_nodes == 1
        assert pushed.is_leaf_pushed()
        assert pushed.nhi(0) == NO_ROUTE

    def test_default_route_only(self):
        t = UnibitTrie()
        t.insert(parse_prefix("0.0.0.0/0"), 3)
        pushed = leaf_push(t)
        assert pushed.num_nodes == 1
        assert pushed.nhi(0) == 3


class TestSemantics:
    def test_lookup_preserved(self, small_table, small_trie, small_pushed, random_addresses):
        plain = small_trie.lookup_batch(random_addresses)
        pushed = small_pushed.lookup_batch(random_addresses)
        assert np.array_equal(plain, pushed)

    def test_internal_nodes_carry_no_nhi(self, small_pushed):
        for node in small_pushed.nodes():
            if not small_pushed.is_leaf(node):
                assert small_pushed.nhi(node) == NO_ROUTE

    def test_miss_path_encoded_as_no_route_leaves(self):
        t = UnibitTrie()
        t.insert(parse_prefix("128.0.0.0/1"), 1)
        pushed = leaf_push(t)
        # the 0-side leaf must exist and carry NO_ROUTE
        left = pushed.left(0)
        assert pushed.is_leaf(left)
        assert pushed.nhi(left) == NO_ROUTE

    def test_nested_prefixes_push_correctly(self):
        t = UnibitTrie(
            RoutingTable.from_strings([("0.0.0.0/0", 0), ("10.0.0.0/8", 1), ("10.128.0.0/9", 2)])
        )
        pushed = leaf_push(t)
        assert pushed.lookup(parse_prefix("10.128.0.0/9").value) == 2
        assert pushed.lookup(parse_prefix("10.0.0.0/9").value) == 1
        assert pushed.lookup(0) == 0

    def test_prefix_count_tracks_real_leaves(self, small_pushed):
        real_leaves = sum(
            1
            for n in small_pushed.nodes()
            if small_pushed.is_leaf(n) and small_pushed.nhi(n) != NO_ROUTE
        )
        assert small_pushed.num_prefixes == real_leaves
