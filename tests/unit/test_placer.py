"""Place-and-route simulator (repro.fpga.placer)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PlacementError, ResourceExhaustedError
from repro.fpga.catalog import XC6VLX240T
from repro.fpga.placer import EngineNetlist, PlaceAndRoute
from repro.fpga.speedgrade import SpeedGrade


def netlist(label="engine", stages=28, bits_per_stage=12_000) -> EngineNetlist:
    return EngineNetlist(
        label=label,
        stage_memory_bits=np.full(stages, bits_per_stage, dtype=np.int64),
    )


class TestNetlist:
    def test_properties(self):
        n = netlist(stages=4, bits_per_stage=100)
        assert n.n_stages == 4
        assert n.total_memory_bits == 400

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            EngineNetlist(label="x", stage_memory_bits=np.array([], dtype=np.int64))

    def test_rejects_negative_bits(self):
        with pytest.raises(ConfigurationError):
            EngineNetlist(label="x", stage_memory_bits=np.array([-1]))

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            EngineNetlist(label="x", stage_memory_bits=np.array([1]), word_width=0)


class TestPlacement:
    def test_single_engine(self):
        placed = PlaceAndRoute().place([netlist()])
        assert placed.n_engines == 1
        assert placed.fmax_mhz > 0
        assert 0 < placed.used_area_fraction <= 1

    def test_rejects_empty_design(self):
        with pytest.raises(PlacementError):
            PlaceAndRoute().place([])

    def test_usage_accounts_every_engine(self):
        one = PlaceAndRoute().place([netlist("a")])
        two = PlaceAndRoute().place([netlist("a"), netlist("b")])
        assert two.total_usage.registers == pytest.approx(
            2 * (one.total_usage.registers), rel=1e-9
        )
        assert two.total_usage.bram18_equivalent == 2 * one.total_usage.bram18_equivalent

    def test_io_pin_wall_at_k16(self):
        # the paper's VS sweep stops at K = 15 for I/O pins
        engines15 = [netlist(f"e{i}") for i in range(15)]
        PlaceAndRoute().place(engines15)  # fits
        engines16 = [netlist(f"e{i}") for i in range(16)]
        with pytest.raises(ResourceExhaustedError) as excinfo:
            PlaceAndRoute().place(engines16)
        assert excinfo.value.resource == "I/O pins"

    def test_bram_exhaustion_on_small_device(self):
        big = netlist(bits_per_stage=40 * 36 * 1024)  # 40 blocks/stage × 28
        with pytest.raises(ResourceExhaustedError):
            PlaceAndRoute(device=XC6VLX240T).place([big, big])


class TestDeterminism:
    def test_identical_designs_place_identically(self):
        a = PlaceAndRoute().place([netlist()], name="same")
        b = PlaceAndRoute().place([netlist()], name="same")
        assert a.jitter_factor == b.jitter_factor
        assert a.fmax_mhz == b.fmax_mhz

    def test_different_names_jitter_differently(self):
        a = PlaceAndRoute().place([netlist()], name="design-a")
        b = PlaceAndRoute().place([netlist()], name="design-b")
        assert a.jitter_factor != b.jitter_factor

    def test_jitter_bounded(self):
        for name in ("x", "y", "z", "w"):
            placed = PlaceAndRoute().place([netlist()], name=name)
            assert abs(placed.jitter_factor - 1.0) <= 0.016


class TestOptimizationFactors:
    def test_single_engine_no_sharing(self):
        placed = PlaceAndRoute().place([netlist()])
        assert placed.logic_opt_factor == pytest.approx(1.0)
        assert placed.static_opt_factor == pytest.approx(1.0)

    def test_sharing_grows_with_engines(self):
        two = PlaceAndRoute().place([netlist(f"e{i}") for i in range(2)])
        ten = PlaceAndRoute().place([netlist(f"e{i}") for i in range(10)])
        assert ten.logic_opt_factor < two.logic_opt_factor < 1.0
        assert ten.static_opt_factor < two.static_opt_factor < 1.0

    def test_bram_optimization_grows_with_blocks(self):
        small = PlaceAndRoute().place([netlist(bits_per_stage=1_000)])
        large = PlaceAndRoute().place([netlist(bits_per_stage=400_000)])
        assert large.bram_opt_factor < small.bram_opt_factor <= 1.0

    def test_fmax_drops_with_widest_stage(self):
        light = PlaceAndRoute().place([netlist(bits_per_stage=10_000)])
        heavy = PlaceAndRoute().place([netlist(bits_per_stage=500_000)])
        assert heavy.fmax_mhz < light.fmax_mhz

    def test_grade_affects_fmax(self):
        g2 = PlaceAndRoute(grade=SpeedGrade.G2).place([netlist()])
        g1l = PlaceAndRoute(grade=SpeedGrade.G1L).place([netlist()])
        assert g1l.fmax_mhz < g2.fmax_mhz
