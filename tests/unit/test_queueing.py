"""Queueing latency model (repro.virt.queueing)."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.virt.queueing import md1_wait_ns, scheme_latency_ns


class TestMD1:
    def test_zero_load_zero_wait(self):
        assert md1_wait_ns(0.0, 300) == 0.0

    def test_known_value(self):
        # ρ=0.5, 1-cycle service at 100 MHz (10 ns): W = 0.5·10/(2·0.5) = 5 ns
        assert md1_wait_ns(0.5, 100) == pytest.approx(5.0)

    def test_diverges_towards_saturation(self):
        assert md1_wait_ns(0.99, 300) > 50 * md1_wait_ns(0.5, 300)

    def test_monotone_in_load(self):
        waits = [md1_wait_ns(rho, 300) for rho in (0.1, 0.3, 0.6, 0.9)]
        assert all(a < b for a, b in zip(waits, waits[1:]))

    def test_rejects_saturated_queue(self):
        with pytest.raises(CapacityError):
            md1_wait_ns(1.0, 300)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            md1_wait_ns(0.5, 0)


class TestSchemeLatency:
    def test_splitting_over_engines_reduces_wait(self):
        shared = scheme_latency_ns("VM", 80.0, 100.0, 1, 300)
        split = scheme_latency_ns("VS", 80.0, 100.0, 8, 300)
        assert split.queueing_ns < shared.queueing_ns
        assert split.pipeline_ns == shared.pipeline_ns

    def test_total_decomposition(self):
        report = scheme_latency_ns("VS", 10.0, 100.0, 2, 300)
        assert report.total_ns == pytest.approx(report.pipeline_ns + report.queueing_ns)

    def test_saturation_raises(self):
        with pytest.raises(CapacityError):
            scheme_latency_ns("VM", 120.0, 100.0, 1, 300)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            scheme_latency_ns("x", -1.0, 100.0, 1, 300)
        with pytest.raises(ConfigurationError):
            scheme_latency_ns("x", 1.0, 100.0, 0, 300)


class TestExperiment:
    def test_vm_latency_dominates_and_diverges(self):
        from repro.experiments.latency import run
        from repro.iplookup.synth import SyntheticTableConfig

        result = run(k=4, load_fractions=(0.2, 0.8), table=SyntheticTableConfig(n_prefixes=400, seed=99))
        vs = result.get("VS_total_ns")
        vm = result.get("VM_total_ns")
        assert (vm > vs).all()
        assert vm[1] - vm[0] > vs[1] - vs[0]
