"""Unit tests for the MRT/TABLE_DUMP2 ingest path."""

import gzip
import os

import pytest

from repro.errors import MrtError, PrefixError
from repro.iplookup.mrt import (
    NextHopInterner,
    RibEntry,
    _parse_prefix_text,
    dataset_from_entries,
    downsample,
    file_sha256,
    load_dataset,
    load_rib,
    parse_as_path,
    parse_bgpdump_text,
    parse_mrt_bytes,
    render_bgpdump_line,
    render_mrt_bytes,
    virtual_tables_from_table,
)
from repro.iplookup.prefix import parse_prefix
from repro.iplookup.rib import RoutingTable

LINE = (
    "TABLE_DUMP2|1702742400|B|80.77.16.114|34549|1.0.0.0/24|"
    "34549 13335|IGP|80.77.16.114||0|||"
)

ENTRIES = [
    RibEntry(1702742400, "80.77.16.114", 34549, "0.0.0.0/0", "34549 3356", "80.77.16.114"),
    RibEntry(1702742400, "80.77.16.114", 34549, "1.0.0.0/24", "34549 13335", "80.77.16.114"),
    RibEntry(1702742401, "192.0.2.9", 64500, "1.0.0.0/24", "64500 13335", "192.0.2.9"),
    RibEntry(1702742401, "192.0.2.9", 64500, "203.0.113.7/32", "64500 65001", "192.0.2.9"),
    RibEntry(1702742402, "2001:db8::9", 64501, "2001:db8:1::/48", "64501 13335", "2001:db8::9"),
    RibEntry(1702742402, "2001:db8::9", 64501, "::/0", "64501", "2001:db8::9"),
]


class TestTextParser:
    def test_parses_the_canonical_bgpdump_line(self):
        (entry,) = parse_bgpdump_text(LINE)
        assert entry.prefix == "1.0.0.0/24"
        assert entry.peer_as == 34549
        assert entry.next_hop == "80.77.16.114"
        assert entry.origin == "IGP"
        assert not entry.is_ipv6

    def test_skips_non_rib_and_comment_lines(self):
        text = "\n".join(
            [
                "# comment",
                "",
                "BGP4MP|1702742400|A|80.77.16.114|34549|1.0.0.0/24|34549|IGP",
                "TABLE_DUMP2|1702742400|STATE|80.77.16.114|34549",
                LINE,
            ]
        )
        assert len(list(parse_bgpdump_text(text))) == 1

    def test_strict_raises_with_line_number(self):
        text = LINE + "\nTABLE_DUMP2|oops|B|1.2.3.4|x"
        with pytest.raises(MrtError, match="line 2"):
            list(parse_bgpdump_text(text))

    def test_lenient_mode_skips_malformed_lines(self):
        text = LINE + "\nTABLE_DUMP2|notanumber|B|1.2.3.4|65000|9.0.0.0/8|65000|IGP|1.2.3.4"
        assert len(list(parse_bgpdump_text(text, strict=False))) == 1

    def test_render_parse_round_trip(self):
        for entry in ENTRIES:
            assert list(parse_bgpdump_text(render_bgpdump_line(entry))) == [entry]


class TestBinaryParser:
    def test_round_trip_plain_and_gzip(self):
        for compress in (False, True):
            blob = render_mrt_bytes(ENTRIES, compress=compress)
            back = list(parse_mrt_bytes(blob))
            assert sorted(back, key=str) == sorted(ENTRIES, key=str)

    def test_truncated_header_raises(self):
        blob = render_mrt_bytes(ENTRIES)
        with pytest.raises(MrtError, match="truncated|overruns"):
            list(parse_mrt_bytes(blob[: len(blob) - 3]))

    def test_rib_before_peer_index_raises_in_strict_mode(self):
        blob = render_mrt_bytes(ENTRIES)
        # peel off the PEER_INDEX_TABLE record (12-byte header + body)
        import struct

        length = struct.unpack(">I", blob[8:12])[0]
        headless = blob[12 + length :]
        with pytest.raises(MrtError, match="PEER_INDEX_TABLE"):
            list(parse_mrt_bytes(headless))
        assert list(parse_mrt_bytes(headless, strict=False)) == []

    def test_non_table_dump2_records_are_skipped(self):
        import struct

        alien = struct.pack(">IHHI", 0, 16, 1, 4) + b"\x00" * 4
        blob = alien + render_mrt_bytes(ENTRIES[:2])
        assert len(list(parse_mrt_bytes(blob))) == 2


class TestLoadRib:
    def test_autodetects_text_binary_and_gzip(self, tmp_path):
        text_path = tmp_path / "dump.txt"
        text_path.write_text(
            "\n".join(render_bgpdump_line(e) for e in ENTRIES) + "\n"
        )
        bin_path = tmp_path / "dump.mrt"
        bin_path.write_bytes(render_mrt_bytes(ENTRIES))
        gz_path = tmp_path / "dump.txt.gz"
        gz_path.write_bytes(gzip.compress(text_path.read_bytes()))
        assert load_rib(str(text_path)) == ENTRIES
        assert sorted(load_rib(str(bin_path)), key=str) == sorted(ENTRIES, key=str)
        assert load_rib(str(gz_path)) == ENTRIES

    def test_load_dataset_names_and_counts(self, tmp_path):
        path = tmp_path / "dump.txt"
        path.write_text("\n".join(render_bgpdump_line(e) for e in ENTRIES) + "\n")
        dataset = load_dataset(str(path), name="unit")
        assert dataset.v4.name == "unit-v4"
        assert dataset.n_entries == len(ENTRIES)


class TestDatasetReduction:
    def test_interner_is_first_seen_stable(self):
        interner = NextHopInterner()
        assert interner.intern("10.0.0.1") == 0
        assert interner.intern("10.0.0.2") == 1
        assert interner.intern("10.0.0.1") == 0
        assert interner.table == ("10.0.0.1", "10.0.0.2")

    def test_duplicate_announcements_dedup_last_write_wins(self):
        dataset = dataset_from_entries(ENTRIES)
        assert dataset.n_duplicates == 1
        # the later peer's announcement of 1.0.0.0/24 wins
        winner = dataset.next_hops.index("192.0.2.9")
        assert dataset.v4.next_hop_of(parse_prefix("1.0.0.0/24")) == winner

    def test_families_split(self):
        dataset = dataset_from_entries(ENTRIES)
        assert len(dataset.v4) == 3
        assert len(dataset.v6) == 2
        assert dataset.v4.max_length() == 32

    def test_default_route_ingests(self):
        dataset = dataset_from_entries(ENTRIES)
        assert parse_prefix("0.0.0.0/0") in dataset.v4
        assert dataset.v4.lookup_linear(0xDEADBEEF) != -1

    def test_host_bits_are_normalized_not_rejected(self):
        # binary NLRI cannot carry host bits, but buggy text dumps can
        assert _parse_prefix_text("1.2.3.5/24") == parse_prefix("1.2.3.0/24")
        with pytest.raises(PrefixError):
            _parse_prefix_text("1.2.3.0/33")
        with pytest.raises(PrefixError):
            _parse_prefix_text("1.2.3.0/x")


class TestDownsample:
    def _table(self, n=50):
        table = RoutingTable(name="t")
        table.add(parse_prefix("0.0.0.0/0"), 0)
        for i in range(n - 1):
            table.add(parse_prefix(f"10.{i // 256}.{i % 256}.0/24"), i % 8)
        return table

    def test_deterministic_under_fixed_seed(self):
        table = self._table()
        a = downsample(table, 20, seed=7)
        b = downsample(table, 20, seed=7)
        assert a.routes() == b.routes()
        assert len(a) == 20

    def test_keeps_the_default_route(self):
        small = downsample(self._table(), 5, seed=1)
        assert parse_prefix("0.0.0.0/0") in small

    def test_target_at_or_above_size_copies(self):
        table = self._table(10)
        assert downsample(table, 10).routes() == table.routes()
        assert downsample(table, 99).routes() == table.routes()

    def test_target_zero_and_negative(self):
        assert len(downsample(self._table(), 0)) == 0
        with pytest.raises(PrefixError):
            downsample(self._table(), -1)


class TestVirtualTables:
    def test_shared_plus_private_partition(self):
        table = self._table()
        virtuals = virtual_tables_from_table(table, 4, shared_fraction=0.5, seed=3)
        assert len(virtuals) == 4
        union = set()
        for vt in virtuals:
            union.update(vt.prefixes())
        assert union == set(table.prefixes())
        shared = set(virtuals[0].prefixes())
        for vt in virtuals[1:]:
            shared &= set(vt.prefixes())
        assert len(shared) >= round(0.5 * len(table)) - 1

    def test_next_hops_preserved(self):
        table = self._table()
        for vt in virtual_tables_from_table(table, 3, seed=1):
            for route in vt:
                assert route.next_hop == table.next_hop_of(route.prefix)

    def test_bad_arguments_raise(self):
        with pytest.raises(PrefixError):
            virtual_tables_from_table(self._table(), 0)
        with pytest.raises(PrefixError):
            virtual_tables_from_table(self._table(), 2, shared_fraction=1.5)

    def _table(self, n=60):
        table = RoutingTable(name="t")
        for i in range(n):
            table.add(parse_prefix(f"10.{i // 256}.{i % 256}.0/24"), i % 8)
        return table


class TestAsPath:
    def test_prepending_collapses(self):
        assert parse_as_path("64500 65001 65001 65001") == (64500, 65001)

    def test_as_sets_contribute_first_member(self):
        assert parse_as_path("64500 {13335,2914} 13335") == (64500, 13335)

    def test_garbage_tokens_are_ignored(self):
        assert parse_as_path("64500 ? 65001") == (64500, 65001)


class TestFileSha:
    def test_hash_tracks_content(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"one")
        first = file_sha256(str(path))
        path.write_bytes(b"two")
        assert file_sha256(str(path)) != first
        assert len(first) == 64


class TestCommittedFixture:
    FIXTURE = os.path.join(
        os.path.dirname(__file__), "..", "..", "examples", "data",
        "ris_sample.bgpdump.txt",
    )
    BINARY = os.path.join(
        os.path.dirname(__file__), "..", "..", "examples", "data",
        "ris_sample_head.mrt.gz",
    )

    def test_fixture_parses_with_realistic_shape(self):
        dataset = load_dataset(self.FIXTURE, name="fixture")
        assert len(dataset.v4) >= 2000
        assert len(dataset.v6) >= 500
        assert dataset.n_duplicates > 0
        assert parse_prefix("0.0.0.0/0") in dataset.v4
        assert dataset.v4.max_length() == 32
        hist = dataset.v4.length_histogram()
        # /24 dominates the DFZ, as in every real collector snapshot
        assert hist[24] == hist.max()

    def test_binary_head_matches_text_head(self):
        text = load_rib(self.FIXTURE)
        head = load_rib(self.BINARY)
        assert text[: len(head)] == head
        assert len(head) > 0
