"""Separate virtual router (repro.virt.separate)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MergeError
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.virt.separate import SeparateVirtualRouter
from repro.virt.traffic import TrafficModel


@pytest.fixture(scope="module")
def vn_tables():
    return generate_virtual_tables(3, 0.4, SyntheticTableConfig(n_prefixes=200, seed=31))


@pytest.fixture(scope="module")
def router(vn_tables):
    return SeparateVirtualRouter(vn_tables, n_stages=28)


class TestConstruction:
    def test_one_engine_per_table(self, router):
        assert router.k == 3
        assert len(router.pipelines) == 3

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SeparateVirtualRouter([])

    def test_leaf_pushed_by_default(self, router):
        for trie in router.tries:
            assert trie.is_leaf_pushed()

    def test_plain_tries_optional(self, vn_tables):
        router = SeparateVirtualRouter(vn_tables, leaf_pushed=False)
        assert not all(t.is_leaf_pushed() for t in router.tries)


class TestLookup:
    def test_scalar_matches_oracle(self, vn_tables, router, random_addresses):
        for vn, table in enumerate(vn_tables):
            for addr in random_addresses[:50]:
                assert router.lookup(int(addr), vn) == table.lookup_linear(int(addr))

    def test_batch_matches_scalar(self, router, random_addresses):
        rng = np.random.default_rng(4)
        vnids = rng.integers(0, 3, size=len(random_addresses))
        batch = router.lookup_batch(random_addresses, vnids)
        scalar = np.array(
            [router.lookup(int(a), int(v)) for a, v in zip(random_addresses, vnids)]
        )
        assert np.array_equal(batch, scalar)

    def test_rejects_bad_vnid(self, router):
        with pytest.raises(MergeError):
            router.lookup(0, 3)

    def test_rejects_shape_mismatch(self, router):
        with pytest.raises(ConfigurationError):
            router.lookup_batch(np.array([0], dtype=np.uint32), np.array([0, 1]))


class TestResources:
    def test_stage_maps_per_engine(self, router):
        maps = router.stage_maps()
        assert len(maps) == 3
        assert router.total_memory_bits() == sum(m.total_bits for m in maps)

    def test_memory_scales_with_k(self, vn_tables):
        one = SeparateVirtualRouter(vn_tables[:1]).total_memory_bits()
        three = SeparateVirtualRouter(vn_tables).total_memory_bits()
        assert three > 2 * one


class TestUtilization:
    def test_observed_matches_offered(self, vn_tables, router):
        model = TrafficModel.uniform(3)
        _, vnids = model.generate(3000, vn_tables, seed=5)
        observed = router.engine_utilizations(vnids)
        assert observed.sum() == pytest.approx(1.0)
        assert np.abs(observed - 1 / 3).max() < 0.05

    def test_empty_stream(self, router):
        assert (router.engine_utilizations(np.array([], dtype=np.int64)) == 0).all()
