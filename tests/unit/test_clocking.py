"""Clock gating (repro.fpga.clocking)."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.clocking import PAPER_CLOCK_GATING, ClockGating


class TestPaperPolicy:
    def test_fully_gated(self):
        assert PAPER_CLOCK_GATING.gate_logic and PAPER_CLOCK_GATING.gate_memory

    def test_gated_activity_equals_duty(self):
        for duty in (0.0, 0.25, 1.0):
            assert PAPER_CLOCK_GATING.logic_activity(duty) == pytest.approx(duty)
            assert PAPER_CLOCK_GATING.memory_activity(duty) == pytest.approx(duty)


class TestUngated:
    def test_idle_residual(self):
        policy = ClockGating(gate_logic=False, gate_memory=False, ungated_idle_activity=0.4)
        # at zero duty, residual activity remains
        assert policy.logic_activity(0.0) == pytest.approx(0.4)
        # at full duty there is no idle to gate
        assert policy.logic_activity(1.0) == pytest.approx(1.0)

    def test_ungated_always_at_least_gated(self):
        gated = ClockGating()
        ungated = ClockGating(gate_logic=False, gate_memory=False)
        for duty in (0.0, 0.3, 0.7, 1.0):
            assert ungated.logic_activity(duty) >= gated.logic_activity(duty)
            assert ungated.memory_activity(duty) >= gated.memory_activity(duty)

    def test_mixed_policy(self):
        policy = ClockGating(gate_logic=True, gate_memory=False)
        assert policy.logic_activity(0.2) == pytest.approx(0.2)
        assert policy.memory_activity(0.2) > 0.2


class TestValidation:
    def test_rejects_bad_duty(self):
        with pytest.raises(ConfigurationError):
            PAPER_CLOCK_GATING.logic_activity(1.5)
        with pytest.raises(ConfigurationError):
            PAPER_CLOCK_GATING.memory_activity(-0.1)

    def test_rejects_bad_residual(self):
        with pytest.raises(ConfigurationError):
            ClockGating(ungated_idle_activity=2.0)
