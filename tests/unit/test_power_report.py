"""XPA-like power reporting (repro.fpga.power_report)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fpga.placer import EngineNetlist, PlaceAndRoute
from repro.fpga.power_report import XPowerAnalyzer
from repro.fpga.speedgrade import SpeedGrade


@pytest.fixture(scope="module")
def placed():
    engines = [
        EngineNetlist(label=f"e{i}", stage_memory_bits=np.full(28, 12_000))
        for i in range(4)
    ]
    return PlaceAndRoute().place(engines, name="report-test")


@pytest.fixture(scope="module")
def analyzer():
    return XPowerAnalyzer()


class TestReportStructure:
    def test_totals_add_up(self, placed, analyzer):
        report = analyzer.report(placed)
        assert report.total_w == pytest.approx(report.static_w + report.dynamic_w)
        assert report.dynamic_w == pytest.approx(
            report.logic_w + report.signal_w + report.bram_w
        )

    def test_per_engine_breakdown(self, placed, analyzer):
        report = analyzer.report(placed)
        assert len(report.engines) == 4
        assert report.logic_w == pytest.approx(sum(e.logic_w for e in report.engines))

    def test_defaults_to_fmax(self, placed, analyzer):
        report = analyzer.report(placed)
        assert report.frequency_mhz == pytest.approx(placed.fmax_mhz)

    def test_static_close_to_catalog(self, placed, analyzer):
        report = analyzer.report(placed)
        assert report.static_w == pytest.approx(4.5, rel=0.05)


class TestActivities:
    def test_zero_activity_kills_dynamic(self, placed, analyzer):
        report = analyzer.report(placed, engine_activities=np.zeros(4))
        assert report.dynamic_w == pytest.approx(0.0)
        assert report.static_w > 0

    def test_dynamic_linear_in_activity(self, placed, analyzer):
        full = analyzer.report(placed, engine_activities=np.ones(4))
        half = analyzer.report(placed, engine_activities=np.full(4, 0.5))
        assert half.dynamic_w == pytest.approx(full.dynamic_w / 2)

    def test_activity_shape_checked(self, placed, analyzer):
        with pytest.raises(ConfigurationError):
            analyzer.report(placed, engine_activities=np.ones(3))

    def test_activity_range_checked(self, placed, analyzer):
        with pytest.raises(ConfigurationError):
            analyzer.report(placed, engine_activities=np.full(4, 1.5))


class TestOperatingPoint:
    def test_dynamic_linear_in_frequency(self, placed, analyzer):
        lo = analyzer.report(placed, frequency_mhz=100)
        hi = analyzer.report(placed, frequency_mhz=200)
        assert hi.dynamic_w == pytest.approx(2 * lo.dynamic_w)
        assert hi.static_w == pytest.approx(lo.static_w)

    def test_rejects_negative_frequency(self, placed, analyzer):
        with pytest.raises(ConfigurationError):
            analyzer.report(placed, frequency_mhz=-1)

    def test_write_rate_raises_bram_power(self, placed, analyzer):
        lo = analyzer.report(placed, write_rate=0.01)
        hi = analyzer.report(placed, write_rate=0.5)
        assert hi.bram_w > lo.bram_w
        assert hi.logic_w == pytest.approx(lo.logic_w)

    def test_grade_reduces_power(self):
        engines = [EngineNetlist(label="e", stage_memory_bits=np.full(28, 12_000))]
        analyzer = XPowerAnalyzer()
        g2 = analyzer.report(PlaceAndRoute(grade=SpeedGrade.G2).place(engines), frequency_mhz=200)
        g1l = analyzer.report(PlaceAndRoute(grade=SpeedGrade.G1L).place(engines), frequency_mhz=200)
        assert g1l.total_w < g2.total_w
