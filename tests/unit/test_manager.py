"""Virtual-router manager (repro.virt.manager)."""

import pytest

from repro.errors import ConfigurationError, MergeError
from repro.iplookup.prefix import parse_prefix
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.iplookup.updates import synthesize_churn
from repro.virt.manager import VirtualRouterManager


@pytest.fixture()
def manager():
    tables = generate_virtual_tables(3, 0.5, SyntheticTableConfig(n_prefixes=150, seed=12))
    return VirtualRouterManager(tables)


class TestLifecycle:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            VirtualRouterManager([])

    def test_initial_consistency(self, manager):
        assert manager.verify_consistency()

    def test_defensive_copy(self, manager):
        tables = generate_virtual_tables(2, 0.5, SyntheticTableConfig(n_prefixes=50, seed=1))
        m = VirtualRouterManager(tables)
        m.announce(0, parse_prefix("9.9.9.0/24"), 3)
        assert parse_prefix("9.9.9.0/24") not in tables[0]


class TestUpdates:
    def test_announce_visible_in_lookups(self, manager):
        p = parse_prefix("203.0.113.0/24")
        manager.announce(1, p, 9)
        assert manager.lookup(p.value, 1) == 9
        assert manager.lookup_merged(p.value, 1) == 9
        # other VNs unaffected (unless their own routes cover it)
        assert manager.lookup(p.value, 0) == manager.table(0).lookup_linear(p.value)

    def test_withdraw(self, manager):
        p = manager.table(2).prefixes()[-1]
        assert manager.withdraw(2, p)
        assert p not in manager.table(2)
        assert manager.verify_consistency()

    def test_withdraw_missing_returns_false(self, manager):
        assert not manager.withdraw(0, parse_prefix("198.51.100.0/24"))

    def test_vn_bounds_checked(self, manager):
        with pytest.raises(MergeError):
            manager.announce(3, parse_prefix("1.0.0.0/8"), 1)
        with pytest.raises(MergeError):
            manager.lookup(0, -1)

    def test_churn_stream_stays_consistent(self, manager):
        for vn in range(manager.k):
            updates = synthesize_churn(manager.table(vn), 100, seed=vn)
            manager.apply(vn, updates)
        assert manager.verify_consistency()


class TestMergedRefresh:
    def test_lazy_rebuild(self, manager):
        manager.merged()
        rebuilds = manager.merged_rebuilds
        manager.merged()  # cached
        assert manager.merged_rebuilds == rebuilds
        manager.announce(0, parse_prefix("203.0.113.0/24"), 1)
        manager.merged()
        assert manager.merged_rebuilds == rebuilds + 1

    def test_noop_withdraw_does_not_invalidate(self, manager):
        manager.merged()
        rebuilds = manager.merged_rebuilds
        manager.withdraw(0, parse_prefix("198.51.100.0/24"))
        manager.merged()
        assert manager.merged_rebuilds == rebuilds

    def test_identical_reannounce_does_not_invalidate(self, manager):
        """Regression: re-announcing a route with its current next hop
        must not trigger a full merged-trie rebuild."""
        prefix = manager.table(0).prefixes()[0]
        next_hop = manager.table(0).next_hop_of(prefix)
        manager.merged()
        rebuilds = manager.merged_rebuilds
        manager.announce(0, prefix, next_hop)
        manager.merged()
        assert manager.merged_rebuilds == rebuilds
        assert manager.update_stats(0).no_ops == 1
        # a genuine next-hop change still invalidates
        manager.announce(0, prefix, next_hop + 1)
        manager.merged()
        assert manager.merged_rebuilds == rebuilds + 1

    def test_churn_with_duplicate_announcements_rebuilds_once(self, manager):
        """A BGP churn stream replayed verbatim is all no-ops: the
        merged view must be rebuilt at most once after the first pass
        and not at all after the duplicate pass."""
        updates = synthesize_churn(
            manager.table(1), 60, seed=3, withdraw_fraction=0.0
        )
        manager.apply(1, updates)
        manager.merged()
        rebuilds = manager.merged_rebuilds
        # replaying announces whose routes are already present with
        # the same next hops changes nothing
        for vn in range(manager.k):
            for route in list(manager.table(vn)):
                manager.announce(vn, route.prefix, route.next_hop)
        manager.merged()
        assert manager.merged_rebuilds == rebuilds
        assert manager.verify_consistency()


class TestAccounting:
    def test_update_stats_per_vn(self, manager):
        manager.announce(1, parse_prefix("203.0.113.0/24"), 9)
        assert manager.update_stats(1).announces == 1
        assert manager.update_stats(0).announces == 0

    def test_write_rate_aggregates(self, manager):
        for vn in range(manager.k):
            manager.apply(vn, synthesize_churn(manager.table(vn), 50, seed=10 + vn))
        rate = manager.write_rate(updates_per_second=50_000, lookup_rate_mhz=300)
        assert 0.0 < rate < 0.05
