"""Static power model (repro.fpga.static_power)."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.catalog import XC6VLX240T, XC6VLX760
from repro.fpga.device import ResourceUsage
from repro.fpga.speedgrade import SpeedGrade
from repro.fpga.static_power import STATIC_VARIATION, area_factor, static_power_w


class TestAreaFactor:
    def test_envelope(self):
        assert area_factor(0.0) == pytest.approx(1 - STATIC_VARIATION)
        assert area_factor(1.0) == pytest.approx(1 + STATIC_VARIATION)
        assert area_factor(0.5) == pytest.approx(1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            area_factor(1.5)


class TestStaticPower:
    def test_paper_nominal_values(self):
        assert static_power_w(SpeedGrade.G2) == pytest.approx(4.5)
        assert static_power_w(SpeedGrade.G1L) == pytest.approx(3.1)

    def test_usage_stays_within_five_percent(self):
        full = ResourceUsage(
            registers=XC6VLX760.slice_registers,
            luts_logic=XC6VLX760.slice_luts,
            bram18=XC6VLX760.bram18_blocks,
        )
        for usage in (ResourceUsage(), full):
            p = static_power_w(SpeedGrade.G2, usage)
            assert 4.5 * 0.95 <= p <= 4.5 * 1.05

    def test_scales_with_device_size(self):
        small = static_power_w(SpeedGrade.G2, device=XC6VLX240T)
        big = static_power_w(SpeedGrade.G2, device=XC6VLX760)
        assert small < big

    def test_temperature_derating(self):
        cold = static_power_w(SpeedGrade.G2, temperature_c=25)
        hot = static_power_w(SpeedGrade.G2, temperature_c=85)
        assert cold < 4.5 < hot

    def test_rejects_out_of_range_temperature(self):
        with pytest.raises(ConfigurationError):
            static_power_w(SpeedGrade.G2, temperature_c=200)
