"""Traffic model (repro.virt.traffic)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.virt.traffic import TrafficModel, uniform_utilization, zipf_utilization


class TestUtilizationVectors:
    def test_uniform_is_assumption_1(self):
        mu = uniform_utilization(5)
        assert np.allclose(mu, 0.2)
        assert mu.sum() == pytest.approx(1.0)

    def test_zipf_zero_is_uniform(self):
        assert np.allclose(zipf_utilization(6, 0.0), uniform_utilization(6))

    def test_zipf_skews_to_front(self):
        mu = zipf_utilization(6, 1.5)
        assert (np.diff(mu) < 0).all()
        assert mu.sum() == pytest.approx(1.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            uniform_utilization(0)
        with pytest.raises(ConfigurationError):
            zipf_utilization(3, -1.0)


class TestTrafficModel:
    def test_uniform_factory(self):
        model = TrafficModel.uniform(4)
        assert model.k == 4
        assert np.allclose(model.utilizations, 0.25)

    def test_rejects_unnormalized(self):
        with pytest.raises(ConfigurationError):
            TrafficModel(utilizations=np.array([0.5, 0.4]))

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            TrafficModel(utilizations=np.array([1.5, -0.5]))

    def test_rejects_bad_duty(self):
        with pytest.raises(ConfigurationError):
            TrafficModel(utilizations=np.array([1.0]), duty_cycle=0.0)

    def test_inter_arrival_gap(self):
        assert TrafficModel.uniform(2, duty_cycle=1.0).inter_arrival_gap() == 0
        assert TrafficModel.uniform(2, duty_cycle=0.25).inter_arrival_gap() == 3


class TestGeneration:
    @pytest.fixture(scope="class")
    def tables(self):
        return generate_virtual_tables(3, 0.5, SyntheticTableConfig(n_prefixes=200, seed=8))

    def test_shapes_and_ranges(self, tables):
        model = TrafficModel.uniform(3)
        addrs, vnids = model.generate(500, tables, seed=1)
        assert addrs.shape == vnids.shape == (500,)
        assert vnids.min() >= 0 and vnids.max() < 3

    def test_deterministic_in_seed(self, tables):
        model = TrafficModel.uniform(3)
        a1, v1 = model.generate(100, tables, seed=7)
        a2, v2 = model.generate(100, tables, seed=7)
        assert np.array_equal(a1, a2) and np.array_equal(v1, v2)

    def test_vnid_frequencies_track_mu(self, tables):
        mu = zipf_utilization(3, 1.0)
        model = TrafficModel(utilizations=mu, miss_fraction=0.0)
        _, vnids = model.generate(6000, tables, seed=2)
        observed = np.bincount(vnids, minlength=3) / 6000
        assert np.abs(observed - mu).max() < 0.04

    def test_most_packets_hit_table(self, tables):
        model = TrafficModel(utilizations=uniform_utilization(3), miss_fraction=0.0)
        addrs, vnids = model.generate(300, tables, seed=3)
        hits = sum(
            tables[v].lookup_linear(int(a)) != -1 for a, v in zip(addrs, vnids)
        )
        assert hits == 300

    def test_table_count_mismatch(self, tables):
        with pytest.raises(ConfigurationError):
            TrafficModel.uniform(2).generate(10, tables)

    def test_rejects_negative_count(self, tables):
        with pytest.raises(ConfigurationError):
            TrafficModel.uniform(3).generate(-1, tables)
