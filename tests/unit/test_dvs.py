"""Voltage scaling (repro.fpga.dvs)."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.fpga.dvs import (
    NOMINAL_POINT,
    NOMINAL_VOLTAGE,
    OperatingPoint,
    dynamic_scale,
    fit_voltage,
    frequency_scale,
    static_scale,
    synthetic_grade,
    voltage_for_frequency_scale,
)
from repro.fpga.speedgrade import SpeedGrade, grade_data


class TestScalingLaws:
    def test_nominal_is_identity(self):
        assert dynamic_scale(NOMINAL_VOLTAGE) == pytest.approx(1.0)
        assert static_scale(NOMINAL_VOLTAGE) == pytest.approx(1.0)
        assert frequency_scale(NOMINAL_VOLTAGE) == pytest.approx(1.0)

    def test_all_monotone_in_voltage(self):
        for scale in (dynamic_scale, static_scale, frequency_scale):
            assert scale(0.8) < scale(0.9) < scale(1.0)

    def test_static_drops_faster_than_dynamic(self):
        assert static_scale(0.85) < dynamic_scale(0.85)

    def test_rejects_implausible_voltage(self):
        with pytest.raises(ConfigurationError):
            dynamic_scale(0.3)
        with pytest.raises(ConfigurationError):
            frequency_scale(1.5)


class TestSyntheticGrade:
    def test_nominal_recovers_g2(self):
        g = synthetic_grade(NOMINAL_VOLTAGE)
        base = grade_data(SpeedGrade.G2)
        assert g.static_power_w == pytest.approx(base.static_power_w)
        assert g.base_fmax_mhz == pytest.approx(base.base_fmax_mhz)

    def test_lower_voltage_cheaper_and_slower(self):
        g = synthetic_grade(0.85)
        base = grade_data(SpeedGrade.G2)
        assert g.static_power_w < base.static_power_w
        assert g.logic_stage_uw_per_mhz < base.logic_stage_uw_per_mhz
        assert g.base_fmax_mhz < base.base_fmax_mhz


class TestFit:
    def test_fit_lands_in_low_power_band(self):
        v, err = fit_voltage()
        assert 0.8 <= v <= 0.95
        assert err < 0.25

    def test_power_constants_explained_well(self):
        v, _ = fit_voltage()
        g = synthetic_grade(v)
        low = grade_data(SpeedGrade.G1L)
        assert g.static_power_w == pytest.approx(low.static_power_w, rel=0.10)
        assert g.logic_stage_uw_per_mhz == pytest.approx(
            low.logic_stage_uw_per_mhz, rel=0.10
        )

    def test_fit_of_g2_itself_is_nominal(self):
        v, err = fit_voltage(grade_data(SpeedGrade.G2))
        assert v == pytest.approx(1.0, abs=1e-6)
        assert err < 1e-9

    def test_round_trips_below_old_bracket(self):
        # 0.62 V sits below the historical 0.7..1.0 search bracket;
        # the widened boundary search must recover it instead of
        # silently clamping to the bracket edge
        for voltage in (0.62, 0.7, 1.0, 1.05):
            fitted, err = fit_voltage(synthetic_grade(voltage))
            assert fitted == pytest.approx(voltage, abs=1e-6)
            assert err < 1e-9

    def test_out_of_model_target_raises(self):
        # a grade manufactured far outside the plausible band cannot
        # be explained by any plausible voltage: the best fit pins to
        # the plausible edge with material error, which must raise
        base = grade_data(SpeedGrade.G2)
        absurd = dataclasses.replace(
            base,
            static_power_w=base.static_power_w * 8.0,
            bram18_uw_per_mhz=base.bram18_uw_per_mhz * 6.0,
            bram36_uw_per_mhz=base.bram36_uw_per_mhz * 6.0,
            logic_stage_uw_per_mhz=base.logic_stage_uw_per_mhz * 6.0,
            base_fmax_mhz=base.base_fmax_mhz * 3.0,
        )
        with pytest.raises(ConfigurationError):
            fit_voltage(absurd)


class TestOperatingPoint:
    def test_nominal_point_is_identity(self):
        assert NOMINAL_POINT.is_nominal
        assert NOMINAL_POINT.frequency_scale == pytest.approx(1.0)
        assert NOMINAL_POINT.dynamic_scale == pytest.approx(1.0)
        assert NOMINAL_POINT.static_scale == pytest.approx(1.0)

    def test_rejects_implausible_voltage(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(0.2)

    def test_inverse_frequency_scale(self):
        for voltage in (0.7, 0.85, 1.0):
            scale = frequency_scale(voltage)
            assert voltage_for_frequency_scale(scale) == pytest.approx(voltage)

    def test_inverse_rejects_unreachable_scale(self):
        with pytest.raises(ConfigurationError):
            voltage_for_frequency_scale(2.0)
