"""Voltage scaling (repro.fpga.dvs)."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.dvs import (
    NOMINAL_VOLTAGE,
    dynamic_scale,
    fit_voltage,
    frequency_scale,
    static_scale,
    synthetic_grade,
)
from repro.fpga.speedgrade import SpeedGrade, grade_data


class TestScalingLaws:
    def test_nominal_is_identity(self):
        assert dynamic_scale(NOMINAL_VOLTAGE) == pytest.approx(1.0)
        assert static_scale(NOMINAL_VOLTAGE) == pytest.approx(1.0)
        assert frequency_scale(NOMINAL_VOLTAGE) == pytest.approx(1.0)

    def test_all_monotone_in_voltage(self):
        for scale in (dynamic_scale, static_scale, frequency_scale):
            assert scale(0.8) < scale(0.9) < scale(1.0)

    def test_static_drops_faster_than_dynamic(self):
        assert static_scale(0.85) < dynamic_scale(0.85)

    def test_rejects_implausible_voltage(self):
        with pytest.raises(ConfigurationError):
            dynamic_scale(0.3)
        with pytest.raises(ConfigurationError):
            frequency_scale(1.5)


class TestSyntheticGrade:
    def test_nominal_recovers_g2(self):
        g = synthetic_grade(NOMINAL_VOLTAGE)
        base = grade_data(SpeedGrade.G2)
        assert g.static_power_w == pytest.approx(base.static_power_w)
        assert g.base_fmax_mhz == pytest.approx(base.base_fmax_mhz)

    def test_lower_voltage_cheaper_and_slower(self):
        g = synthetic_grade(0.85)
        base = grade_data(SpeedGrade.G2)
        assert g.static_power_w < base.static_power_w
        assert g.logic_stage_uw_per_mhz < base.logic_stage_uw_per_mhz
        assert g.base_fmax_mhz < base.base_fmax_mhz


class TestFit:
    def test_fit_lands_in_low_power_band(self):
        v, err = fit_voltage()
        assert 0.8 <= v <= 0.95
        assert err < 0.25

    def test_power_constants_explained_well(self):
        v, _ = fit_voltage()
        g = synthetic_grade(v)
        low = grade_data(SpeedGrade.G1L)
        assert g.static_power_w == pytest.approx(low.static_power_w, rel=0.10)
        assert g.logic_stage_uw_per_mhz == pytest.approx(
            low.logic_stage_uw_per_mhz, rel=0.10
        )

    def test_fit_of_g2_itself_is_nominal(self):
        v, err = fit_voltage(grade_data(SpeedGrade.G2))
        assert v == pytest.approx(1.0, abs=1e-6)
        assert err < 1e-9
