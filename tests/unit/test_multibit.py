"""Multi-bit trie extension (repro.iplookup.multibit)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iplookup.multibit import MultibitTrie
from repro.iplookup.rib import RoutingTable


class TestConstruction:
    @pytest.mark.parametrize("stride", [0, 9])
    def test_rejects_bad_stride(self, small_table, stride):
        with pytest.raises(ConfigurationError):
            MultibitTrie(small_table, stride=stride)

    def test_stride_one_matches_unibit_depth(self, small_table):
        t = MultibitTrie(small_table, stride=1)
        assert t.depth() <= 32

    def test_fewer_levels_with_larger_stride(self, medium_table):
        depths = [MultibitTrie(medium_table, stride=s).depth() for s in (1, 2, 4)]
        assert depths[0] >= depths[1] >= depths[2]


class TestLookup:
    @pytest.mark.parametrize("stride", [1, 2, 3, 4, 8])
    def test_matches_oracle(self, small_table, random_addresses, stride):
        t = MultibitTrie(small_table, stride=stride)
        expected = small_table.lookup_linear_batch(random_addresses[:128])
        got = np.array([t.lookup(int(a)) for a in random_addresses[:128]])
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("stride", [2, 4])
    def test_batch_matches_scalar(self, medium_table, random_addresses, stride):
        t = MultibitTrie(medium_table, stride=stride)
        batch = t.lookup_batch(random_addresses)
        scalar = np.array([t.lookup(int(a)) for a in random_addresses])
        assert np.array_equal(batch, scalar)

    def test_default_route(self):
        table = RoutingTable.from_strings([("0.0.0.0/0", 7)])
        t = MultibitTrie(table, stride=4)
        assert t.lookup(0xDEADBEEF) == 7


class TestMemoryTradeoff:
    def test_stats_consistency(self, medium_table):
        t = MultibitTrie(medium_table, stride=4)
        stats = t.stats()
        assert stats.total_nodes == t.num_nodes
        assert sum(stats.nodes_per_level) == stats.total_nodes
        assert stats.total_entries == t.num_nodes * 16

    def test_memory_grows_with_stride(self, medium_table):
        m2 = MultibitTrie(medium_table, stride=2).memory_bits()
        m8 = MultibitTrie(medium_table, stride=8).memory_bits()
        assert m8 > m2  # prefix expansion cost

    def test_pipeline_stages_shrink_with_stride(self, medium_table):
        s1 = MultibitTrie(medium_table, stride=1).pipeline_stages()
        s4 = MultibitTrie(medium_table, stride=4).pipeline_stages()
        assert s4 < s1

    def test_memory_bits_rejects_bad_width(self, small_table):
        t = MultibitTrie(small_table, stride=2)
        from repro.errors import TrieError

        with pytest.raises(TrieError):
            t.memory_bits(entry_bits=0)
