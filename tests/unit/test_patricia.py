"""Path-compressed trie (repro.iplookup.patricia)."""

import numpy as np

from repro.iplookup.patricia import PatriciaTrie
from repro.iplookup.rib import NO_ROUTE, RoutingTable
from repro.iplookup.trie import UnibitTrie


class TestCorrectness:
    def test_matches_oracle_small(self, small_table, random_addresses):
        patricia = PatriciaTrie(small_table)
        expected = small_table.lookup_linear_batch(random_addresses)
        assert np.array_equal(patricia.lookup_batch(random_addresses), expected)

    def test_matches_oracle_medium(self, medium_table, random_addresses):
        patricia = PatriciaTrie(medium_table)
        expected = medium_table.lookup_linear_batch(random_addresses)
        assert np.array_equal(patricia.lookup_batch(random_addresses), expected)

    def test_prefix_values_hit_exactly(self, medium_table):
        patricia = PatriciaTrie(medium_table)
        for route in list(medium_table)[:100]:
            assert patricia.lookup(route.prefix.value) == medium_table.lookup_linear(
                route.prefix.value
            )

    def test_empty_table(self):
        patricia = PatriciaTrie(RoutingTable())
        assert patricia.num_nodes == 1
        assert patricia.lookup(0x12345678) == NO_ROUTE

    def test_default_route_only(self):
        patricia = PatriciaTrie(RoutingTable.from_strings([("0.0.0.0/0", 7)]))
        assert patricia.lookup(0xDEADBEEF) == 7

    def test_structure_validates(self, medium_table):
        PatriciaTrie(medium_table).validate()


class TestCompression:
    def test_fewer_nodes_than_plain_trie(self, medium_table):
        plain = UnibitTrie(medium_table)
        patricia = PatriciaTrie(medium_table)
        assert patricia.num_nodes < plain.num_nodes / 2

    def test_label_bits_bounded(self, medium_table):
        stats = PatriciaTrie(medium_table).stats()
        assert 1 <= stats.max_label_bits <= 32

    def test_node_accounting(self, medium_table):
        stats = PatriciaTrie(medium_table).stats()
        assert stats.internal_nodes + stats.leaf_nodes == stats.total_nodes

    def test_single_long_prefix_collapses_to_one_edge(self):
        table = RoutingTable.from_strings([("10.1.1.0/24", 5)])
        patricia = PatriciaTrie(table)
        assert patricia.num_nodes == 2  # root + one compressed leaf
        stats = patricia.stats()
        assert stats.max_label_bits == 24

    def test_memory_comparison_with_plain(self, medium_table):
        """A10's headline: compression beats the plain trie's memory."""
        plain = UnibitTrie(medium_table)
        plain_bits = plain.num_nodes * (2 * 18 + 8 + 2)
        patricia_bits = PatriciaTrie(medium_table).stats().memory_bits()
        assert patricia_bits < plain_bits

    def test_depth_shrinks(self, medium_table):
        plain = UnibitTrie(medium_table)
        patricia = PatriciaTrie(medium_table)
        assert patricia.stats().depth_nodes < plain.depth()
