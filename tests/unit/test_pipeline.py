"""Pipeline simulator (repro.iplookup.pipeline)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iplookup.pipeline import LookupPipeline
from repro.iplookup.trie import UnibitTrie


@pytest.fixture(scope="module")
def pipeline(small_pushed_module):
    return LookupPipeline(small_pushed_module, n_stages=32)


@pytest.fixture(scope="module")
def small_pushed_module():
    from repro.iplookup.leafpush import leaf_push
    from repro.iplookup.rib import RoutingTable

    table = RoutingTable.from_strings(
        [
            ("0.0.0.0/0", 0),
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.1.0/24", 3),
            ("192.168.0.0/16", 6),
        ]
    )
    return leaf_push(UnibitTrie(table))


class TestConstruction:
    def test_rejects_shallow_pipeline(self, small_pushed_module):
        with pytest.raises(ConfigurationError):
            LookupPipeline(small_pushed_module, n_stages=2)

    def test_rejects_zero_stages(self):
        with pytest.raises(ConfigurationError):
            LookupPipeline(UnibitTrie(), n_stages=0)


class TestFunctional:
    def test_results_match_direct_lookup(self, pipeline, random_addresses):
        assert pipeline.verify(random_addresses)

    def test_empty_stream(self, pipeline):
        trace = pipeline.run(np.array([], dtype=np.uint32))
        assert trace.n_packets == 0
        assert trace.total_cycles == 0
        assert trace.accesses_per_stage.sum() == 0

    def test_result_order_preserved(self, pipeline):
        addrs = np.array([0x0A010101, 0xC0A80001, 0x08080808], dtype=np.uint32)
        trace = pipeline.run(addrs)
        assert list(trace.results) == [3, 6, 0]


class TestTiming:
    def test_back_to_back_cycle_count(self, pipeline):
        n = 100
        addrs = np.zeros(n, dtype=np.uint32)
        trace = pipeline.run(addrs)
        # fill + drain: (n-1) admissions after the first + pipeline depth + exit
        assert trace.total_cycles == (n - 1) + pipeline.n_stages + 1

    def test_gap_inflates_cycles(self, pipeline):
        addrs = np.zeros(10, dtype=np.uint32)
        dense = pipeline.run(addrs, inter_arrival_gap=0)
        sparse = pipeline.run(addrs, inter_arrival_gap=3)
        assert sparse.total_cycles > dense.total_cycles

    def test_rejects_negative_gap(self, pipeline):
        with pytest.raises(ConfigurationError):
            pipeline.run(np.zeros(1, dtype=np.uint32), inter_arrival_gap=-1)

    def test_latency(self, pipeline):
        trace = pipeline.run(np.zeros(1, dtype=np.uint32))
        assert trace.latency_cycles == pipeline.n_stages + 1


class TestActivity:
    def test_stage_accesses_monotone_nonincreasing(self, pipeline, random_addresses):
        # a packet that reaches stage j+1 necessarily reached stage j
        trace = pipeline.run(random_addresses)
        acc = trace.accesses_per_stage
        assert (np.diff(acc) <= 0).all()

    def test_stage0_accessed_by_all_matching_walks(self, pipeline):
        # every address whose walk enters level 1 touches stage 0
        addrs = np.array([0x0A000000, 0xC0A80000], dtype=np.uint32)
        trace = pipeline.run(addrs)
        assert trace.accesses_per_stage[0] == 2

    def test_duty_cycle_bounds(self, pipeline, random_addresses):
        trace = pipeline.run(random_addresses)
        duty = trace.stage_duty_cycle()
        assert (duty >= 0).all() and (duty <= 1).all()
        assert 0.0 <= trace.mean_duty_cycle() <= 1.0

    def test_throughput_packets_per_cycle(self, pipeline):
        addrs = np.zeros(50, dtype=np.uint32)
        dense = pipeline.run(addrs)
        sparse = pipeline.run(addrs, inter_arrival_gap=1)
        assert dense.throughput_packets_per_cycle() > sparse.throughput_packets_per_cycle()
