"""Rule-by-rule fixtures for the repro-lint static analysis subsystem.

Every rule gets at least one positive fixture (the rule must fire) and
one negative fixture (the rule must stay quiet), plus coverage of the
framework pieces: suppression comments, configuration, reporters, and
the CLI entry point.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path


from repro.staticcheck import (
    LintConfig,
    Severity,
    all_rules,
    lint_file,
    lint_paths,
    load_config,
    render_json,
    render_text,
)
from repro.staticcheck.suppressions import collect_suppressions
from repro.tools.repro_lint import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint(tmp_path, source, *, select=None, config=None, filename="mod.py"):
    """Lint a dedented source snippet with only ``select`` rules active."""
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source))
    cfg = config or LintConfig()
    if select:
        cfg.select = set(select)
    return lint_file(path, cfg)


def rule_ids(report):
    return [f.rule for f in report.findings]


class TestUnit001BareConversionFactor:
    def test_fires_on_bare_factor_in_power_context(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def stage_power_w(power_uw):
                return power_uw * 1e-6
            """,
            select={"UNIT001"},
        )
        assert rule_ids(report) == ["UNIT001"]
        assert "1e-06" in report.findings[0].message

    def test_context_from_function_name_alone(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def freq_scaling(x):
                return x * 1e6
            """,
            select={"UNIT001"},
        )
        assert rule_ids(report) == ["UNIT001"]

    def test_quiet_without_unit_context(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def scale(count):
                return count * 1e6
            """,
            select={"UNIT001"},
        )
        assert report.findings == []

    def test_byte_factor_fires_only_in_bit_context(self, tmp_path):
        positive = run_lint(
            tmp_path,
            """
            def table(n_bytes):
                return n_bytes * 8
            """,
            select={"UNIT001"},
        )
        negative = run_lint(
            tmp_path,
            """
            def widen(count):
                return count * 8
            """,
            select={"UNIT001"},
            filename="neg.py",
        )
        assert rule_ids(positive) == ["UNIT001"]
        assert negative.findings == []

    def test_allow_modules_option_exempts_defining_module(self, tmp_path):
        cfg = LintConfig(
            select={"UNIT001"},
            rule_options={"UNIT001": {"allow-modules": ["units.py"]}},
        )
        report = run_lint(
            tmp_path,
            """
            def uw_to_w(microwatts):
                return microwatts * 1e-6
            """,
            config=cfg,
            filename="units.py",
        )
        assert report.findings == []


class TestUnit002UnitSuffixMismatch:
    def test_fires_when_return_unit_contradicts_name(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            from repro.units import w_to_mw

            def total_power_w(watts):
                return w_to_mw(watts)
            """,
            select={"UNIT002"},
        )
        assert rule_ids(report) == ["UNIT002"]
        assert "total_power_w" in report.findings[0].message

    def test_quiet_when_units_agree(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            from repro.units import mw_to_w

            def total_power_w(milliwatts):
                return mw_to_w(milliwatts)
            """,
            select={"UNIT002"},
        )
        assert report.findings == []

    def test_quiet_for_unsuffixed_functions(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            from repro.units import w_to_mw

            def display_value(watts):
                return w_to_mw(watts)
            """,
            select={"UNIT002"},
        )
        assert report.findings == []

    def test_quiet_across_dimensions(self, tmp_path):
        # converting to a *different* dimension is not a suffix mismatch
        report = run_lint(
            tmp_path,
            """
            from repro.units import mhz_to_hz

            def cycles_w(freq):
                return mhz_to_hz(freq)
            """,
            select={"UNIT002"},
        )
        assert report.findings == []


class TestFlt001FloatEquality:
    def test_fires_on_float_literal_equality(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def check(x):
                return x == 0.3
            """,
            select={"FLT001"},
        )
        assert rule_ids(report) == ["FLT001"]

    def test_fires_on_not_equal_and_negative_literal(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def check(x):
                return x != -1.5
            """,
            select={"FLT001"},
        )
        assert rule_ids(report) == ["FLT001"]

    def test_quiet_on_integer_literals_and_ordering(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def check(x):
                return x == 3 or x < 0.5
            """,
            select={"FLT001"},
        )
        assert report.findings == []


class TestApi001ExportedDocstring:
    def test_fires_on_undocumented_export(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            __all__ = ["estimate"]

            def estimate(x: float) -> float:
                return x
            """,
            select={"API001"},
        )
        assert rule_ids(report) == ["API001"]

    def test_quiet_when_documented_or_private(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            __all__ = ["estimate"]

            def estimate(x: float) -> float:
                \"\"\"Documented.\"\"\"
                return x

            def _helper(y):
                return y
            """,
            select={"API001"},
        )
        assert report.findings == []


class TestApi002ExportedTypeHints:
    def test_fires_and_names_the_missing_pieces(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            __all__ = ["estimate"]

            def estimate(x, budget: float = 0.0):
                \"\"\"Doc.\"\"\"
                return x
            """,
            select={"API002"},
        )
        assert rule_ids(report) == ["API002"]
        message = report.findings[0].message
        assert "x" in message and "return" in message and "budget" not in message

    def test_quiet_when_fully_annotated(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            __all__ = ["estimate"]

            def estimate(x: float, *rest: float) -> float:
                \"\"\"Doc.\"\"\"
                return x
            """,
            select={"API002"},
        )
        assert report.findings == []

    def test_self_is_exempt_in_exported_class_context(self, tmp_path):
        # only functions named in __all__ are checked; unexported helpers pass
        report = run_lint(
            tmp_path,
            """
            __all__ = ["Model"]

            class Model:
                \"\"\"Doc.\"\"\"

                def run(self, x):
                    return x
            """,
            select={"API002"},
        )
        assert report.findings == []


class TestInv001InvariantCoverage:
    def _config(self, tmp_path, corpus_text):
        tests_dir = tmp_path / "props"
        tests_dir.mkdir()
        (tests_dir / "test_props.py").write_text(corpus_text)
        return LintConfig(
            select={"INV001"},
            property_test_dirs=[str(tests_dir)],
            root=tmp_path,
        )

    SOURCE = """
        from repro.core.invariants import monotone_in

        @monotone_in("freq_mhz")
        def stage_power_uw(freq_mhz):
            return 2.0 * freq_mhz
    """

    def test_fires_when_no_property_test_mentions_function(self, tmp_path):
        cfg = self._config(tmp_path, "def test_other():\n    pass\n")
        report = run_lint(tmp_path, self.SOURCE, config=cfg)
        assert rule_ids(report) == ["INV001"]
        assert "stage_power_uw" in report.findings[0].message

    def test_quiet_when_property_test_covers_function(self, tmp_path):
        cfg = self._config(
            tmp_path,
            "def test_monotone():\n    assert stage_power_uw(2) >= stage_power_uw(1)\n",
        )
        report = run_lint(tmp_path, self.SOURCE, config=cfg)
        assert report.findings == []

    def test_quiet_for_undecorated_functions(self, tmp_path):
        cfg = self._config(tmp_path, "def test_other():\n    pass\n")
        report = run_lint(
            tmp_path,
            """
            def stage_power_uw(freq_mhz):
                return 2.0 * freq_mhz
            """,
            config=cfg,
        )
        assert report.findings == []

    def test_skips_when_no_test_directory_exists(self, tmp_path):
        cfg = LintConfig(
            select={"INV001"},
            property_test_dirs=[str(tmp_path / "missing")],
            root=tmp_path,
        )
        report = run_lint(tmp_path, self.SOURCE, config=cfg)
        assert report.findings == []


class TestImp001DeadImport:
    def test_fires_on_unused_import(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            import os
            import sys

            print(sys.argv)
            """,
            select={"IMP001"},
        )
        assert rule_ids(report) == ["IMP001"]
        assert "'os'" in report.findings[0].message

    def test_quiet_for_used_reexported_and_future_imports(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            from __future__ import annotations

            import json
            import numpy as numpy
            from pathlib import Path

            __all__ = ["Path"]

            print(json.dumps({}))
            """,
            select={"IMP001"},
        )
        assert report.findings == []


class TestImp002StaleAllEntry:
    def test_fires_on_phantom_export(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            __all__ = ["real", "phantom"]

            def real():
                pass
            """,
            select={"IMP002"},
        )
        assert rule_ids(report) == ["IMP002"]
        assert "'phantom'" in report.findings[0].message

    def test_quiet_when_all_entries_are_bound(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            from pathlib import Path

            __all__ = ["Path", "CONSTANT", "Model", "helper"]

            CONSTANT = 3

            class Model:
                pass

            def helper():
                pass
            """,
            select={"IMP002"},
        )
        assert report.findings == []

    def test_skips_modules_with_star_imports(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            from os.path import *

            __all__ = ["join", "whatever"]
            """,
            select={"IMP002"},
        )
        assert report.findings == []


class TestSuppressions:
    def test_line_suppression_moves_finding_to_suppressed(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def check(x):
                return x == 0.3  # repro-lint: disable=FLT001
            """,
            select={"FLT001"},
        )
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["FLT001"]
        assert report.suppressed[0].suppressed is True

    def test_line_suppression_is_rule_specific(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def check(x):
                return x == 0.3  # repro-lint: disable=UNIT001
            """,
            select={"FLT001"},
        )
        assert rule_ids(report) == ["FLT001"]

    def test_file_wide_and_all_wildcard(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            # repro-lint: disable-file=all

            def check(x):
                return x == 0.3
            """,
            select={"FLT001"},
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_marker_inside_string_is_not_a_suppression(self):
        sup = collect_suppressions(
            'text = "# repro-lint: disable=FLT001"\nvalue = 1\n'
        )
        assert not sup.by_line and not sup.file_wide

    def test_comma_and_space_separated_rule_lists(self):
        sup = collect_suppressions("x = 1  # repro-lint: disable=FLT001, UNIT001\n")
        assert sup.is_suppressed("FLT001", 1)
        assert sup.is_suppressed("UNIT001", 1)
        assert not sup.is_suppressed("FLT001", 2)


class TestConfig:
    def test_load_config_reads_tool_section(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                ignore = ["API002"]
                exclude = ["**/generated/**"]
                property-test-dirs = ["tests/property"]

                [tool.repro-lint.rules.UNIT001]
                allow-modules = ["src/repro/units.py"]
                """
            )
        )
        config = load_config(pyproject)
        assert config.ignore == {"API002"}
        assert config.root == tmp_path
        assert config.property_test_dirs == ["tests/property"]
        assert config.rule_options["UNIT001"]["allow-modules"] == ["src/repro/units.py"]
        assert not config.is_rule_enabled("API002")
        assert config.is_rule_enabled("UNIT001")
        assert config.is_path_excluded(Path("src/generated/x.py"))
        assert not config.is_path_excluded(Path("src/repro/units.py"))

    def test_options_for_overlays_defaults(self):
        config = LintConfig(rule_options={"UNIT001": {"byte-factors": [512]}})
        merged = config.options_for("UNIT001", {"byte-factors": [8], "factors": [1e6]})
        assert merged == {"byte-factors": [512], "factors": [1e6]}

    def test_select_restricts_active_rules(self, tmp_path):
        # a file violating FLT001 passes when only IMP001 is selected
        report = run_lint(
            tmp_path,
            """
            def check(x):
                return x == 0.3
            """,
            select={"IMP001"},
        )
        assert report.findings == []


class TestRunnerAndReporters:
    def test_syntax_error_yields_parse_finding(self, tmp_path):
        report = run_lint(tmp_path, "def broken(:\n")
        assert rule_ids(report) == ["PARSE"]
        assert report.findings[0].severity is Severity.ERROR

    def test_lint_paths_walks_directories_and_respects_excludes(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text("def f(x):\n    return x == 0.5\n")
        (tmp_path / "pkg" / "skipped.py").write_text("def g(x):\n    return x == 0.5\n")
        config = LintConfig(select={"FLT001"}, exclude=["skipped.py"])
        report = lint_paths([tmp_path / "pkg"], config)
        assert report.files_checked == 1
        assert rule_ids(report) == ["FLT001"]
        assert report.exit_code == 1

    def test_render_text_summary_and_statistics(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def check(x):
                return x == 0.1 or x == 0.2
            """,
            select={"FLT001"},
        )
        text = render_text(report, statistics=True)
        assert "2 finding(s), 0 suppressed, 1 file(s) checked" in text
        assert "FLT001" in text

    def test_render_json_is_parseable_and_complete(self, tmp_path):
        report = run_lint(
            tmp_path,
            """
            def check(x):
                return x == 0.1
            """,
            select={"FLT001"},
        )
        payload = json.loads(render_json(report))
        assert payload["summary"] == {
            "findings": 1,
            "suppressed": 0,
            "files_checked": 1,
        }
        (finding,) = payload["findings"]
        assert finding["rule"] == "FLT001"
        assert finding["line"] == 3


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Module."""\n\nVALUE = 1\n')
        assert lint_main(["--no-config", str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def check(x):\n    return x == 0.5\n")
        assert lint_main(["--no-config", "--select", "FLT001", str(dirty)]) == 1
        assert "FLT001" in capsys.readouterr().out

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        assert lint_main([]) == 2
        assert lint_main([str(tmp_path / "nope.py")]) == 2
        dirty = tmp_path / "f.py"
        dirty.write_text("x = 1\n")
        assert lint_main(["--select", "NOPE999", str(dirty)]) == 2
        capsys.readouterr()

    def test_list_rules_names_the_full_pack(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("UNIT001", "UNIT002", "FLT001", "API001", "API002",
                        "INV001", "IMP001", "IMP002"):
            assert rule_id in out

    def test_registry_exposes_the_documented_rule_pack(self):
        assert set(all_rules()) == {
            # file scope
            "UNIT001", "UNIT002", "FLT001", "API001", "API002",
            "INV001", "IMP001", "IMP002", "CONC004",
            # project scope (whole-program pass)
            "DET001", "DET002", "DET003", "DET004",
            "FRZ001", "FRZ002",
            "OBS001", "OBS002", "OBS003", "OBS004",
            "CONC001", "CONC002", "CONC003",
            # post-run sweep
            "SUP001",
        }

    def test_module_is_runnable_as_console_script(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Module."""\n\nVALUE = 1\n')
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools.repro_lint", "--no-config", str(clean)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
