"""Unit conversions (repro.units)."""

import pytest

from repro import units


class TestPowerConversions:
    def test_uw_to_w(self):
        assert units.uw_to_w(1_000_000) == pytest.approx(1.0)

    def test_w_to_uw_roundtrip(self):
        assert units.w_to_uw(units.uw_to_w(13.65)) == pytest.approx(13.65)

    def test_mw_to_w(self):
        assert units.mw_to_w(4500) == pytest.approx(4.5)

    def test_w_to_mw(self):
        assert units.w_to_mw(4.5) == pytest.approx(4500)


class TestMemoryConversions:
    def test_bram_block_sizes(self):
        assert units.BRAM18K_BITS == 18 * 1024
        assert units.BRAM36K_BITS == 2 * units.BRAM18K_BITS

    def test_bits_to_mb_roundtrip(self):
        assert units.mb_to_bits(units.bits_to_mb(26 * 1024 * 1024)) == pytest.approx(
            26 * 1024 * 1024
        )

    def test_one_mib_is_one_mb(self):
        assert units.bits_to_mb(1024 * 1024) == pytest.approx(1.0)


class TestFrequency:
    def test_mhz_to_hz(self):
        assert units.mhz_to_hz(350) == pytest.approx(350e6)

    def test_hz_to_mhz_roundtrip(self):
        assert units.hz_to_mhz(units.mhz_to_hz(123.4)) == pytest.approx(123.4)


class TestThroughput:
    def test_gbps_at_min_packets(self):
        # 350 MHz × 40 B × 8 = 112 Gbps
        assert units.gbps(350) == pytest.approx(112.0)

    def test_gbps_scales_with_packet_size(self):
        assert units.gbps(100, 80) == pytest.approx(2 * units.gbps(100, 40))

    def test_gbps_zero_frequency(self):
        assert units.gbps(0) == 0.0

    def test_gbps_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            units.gbps(-1)

    def test_gbps_rejects_bad_packet(self):
        with pytest.raises(ValueError):
            units.gbps(100, 0)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "n,d,expected",
        [(0, 5, 0), (1, 5, 1), (5, 5, 1), (6, 5, 2), (18 * 1024, 18 * 1024, 1), (18 * 1024 + 1, 18 * 1024, 2)],
    )
    def test_values(self, n, d, expected):
        assert units.ceil_div(n, d) == expected

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            units.ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            units.ceil_div(-1, 2)
