"""Unit conversions (repro.units)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units

#: magnitudes that cover every quantity the paper reports, from single
#: µW components to multi-GHz clocks, without float-overflow noise
magnitudes = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)


class TestPowerConversions:
    def test_uw_to_w(self):
        assert units.uw_to_w(1_000_000) == pytest.approx(1.0)

    def test_w_to_uw_roundtrip(self):
        assert units.w_to_uw(units.uw_to_w(13.65)) == pytest.approx(13.65)

    def test_mw_to_w(self):
        assert units.mw_to_w(4500) == pytest.approx(4.5)

    def test_w_to_mw(self):
        assert units.w_to_mw(4.5) == pytest.approx(4500)


class TestMemoryConversions:
    def test_bram_block_sizes(self):
        assert units.BRAM18K_BITS == 18 * 1024
        assert units.BRAM36K_BITS == 2 * units.BRAM18K_BITS

    def test_bits_to_mb_roundtrip(self):
        assert units.mb_to_bits(units.bits_to_mb(26 * 1024 * 1024)) == pytest.approx(
            26 * 1024 * 1024
        )

    def test_one_mib_is_one_mb(self):
        assert units.bits_to_mb(1024 * 1024) == pytest.approx(1.0)


class TestFrequency:
    def test_mhz_to_hz(self):
        assert units.mhz_to_hz(350) == pytest.approx(350e6)

    def test_hz_to_mhz_roundtrip(self):
        assert units.hz_to_mhz(units.mhz_to_hz(123.4)) == pytest.approx(123.4)


class TestThroughput:
    def test_gbps_at_min_packets(self):
        # 350 MHz × 40 B × 8 = 112 Gbps
        assert units.gbps(350) == pytest.approx(112.0)

    def test_gbps_scales_with_packet_size(self):
        assert units.gbps(100, 80) == pytest.approx(2 * units.gbps(100, 40))

    def test_gbps_zero_frequency(self):
        assert units.gbps(0) == 0.0

    def test_gbps_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            units.gbps(-1)

    def test_gbps_rejects_bad_packet(self):
        with pytest.raises(ValueError):
            units.gbps(100, 0)


class TestRoundTripProperties:
    """Every conversion pair must invert (within float rounding)."""

    @given(magnitudes)
    def test_power_uw_w(self, x):
        assert units.w_to_uw(units.uw_to_w(x)) == pytest.approx(x)
        assert units.uw_to_w(units.w_to_uw(x)) == pytest.approx(x)

    @given(magnitudes)
    def test_power_mw_w(self, x):
        assert units.w_to_mw(units.mw_to_w(x)) == pytest.approx(x)

    @given(magnitudes)
    def test_power_uw_mw(self, x):
        assert units.mw_to_uw(units.uw_to_mw(x)) == pytest.approx(x)

    @given(magnitudes)
    def test_uw_to_mw_to_w_composes(self, x):
        assert units.mw_to_w(units.uw_to_mw(x)) == pytest.approx(units.uw_to_w(x))

    @given(magnitudes)
    def test_frequency_mhz_hz(self, x):
        assert units.hz_to_mhz(units.mhz_to_hz(x)) == pytest.approx(x)

    @given(magnitudes)
    def test_memory_bits_mb(self, x):
        assert units.mb_to_bits(units.bits_to_mb(x)) == pytest.approx(x)
        assert units.bits_to_mb(units.mb_to_bits(x)) == pytest.approx(x)

    @given(magnitudes)
    def test_time_ns_ms(self, x):
        assert units.ns_to_s(units.s_to_ns(x)) == pytest.approx(x)
        assert units.ms_to_s(units.s_to_ms(x)) == pytest.approx(x)

    @given(magnitudes)
    def test_energy_nj_pj(self, x):
        assert units.nj_to_j(units.j_to_nj(x)) == pytest.approx(x)
        assert units.j_to_pj(units.pj_to_j(x)) == pytest.approx(x)

    @given(magnitudes)
    def test_conversions_preserve_sign_and_zero(self, x):
        assert units.uw_to_w(0.0) == 0.0
        assert units.uw_to_w(x) >= 0.0


class TestCeilDiv:
    @pytest.mark.parametrize(
        "n,d,expected",
        [(0, 5, 0), (1, 5, 1), (5, 5, 1), (6, 5, 2), (18 * 1024, 18 * 1024, 1), (18 * 1024 + 1, 18 * 1024, 2)],
    )
    def test_values(self, n, d, expected):
        assert units.ceil_div(n, d) == expected

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            units.ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            units.ceil_div(-1, 2)

    def test_rejects_negative_denominator(self):
        with pytest.raises(ValueError):
            units.ceil_div(1, -2)

    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=1, max_value=10**6))
    def test_ceiling_property(self, n, d):
        q = units.ceil_div(n, d)
        assert q * d >= n
        assert (q - 1) * d < n or n == 0

    @given(st.integers(min_value=0, max_value=10**9))
    def test_unit_denominator_is_identity(self, n):
        assert units.ceil_div(n, 1) == n
