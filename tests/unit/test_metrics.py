"""Throughput & efficiency metrics (repro.core.metrics)."""

import pytest

from repro.core.metrics import (
    energy_per_packet_nj,
    mw_per_gbps,
    throughput_gbps,
    watts_per_gbps,
)
from repro.errors import ConfigurationError


class TestThroughput:
    def test_paper_operating_point(self):
        # one engine at 350 MHz, 40 B packets → 112 Gbps
        assert throughput_gbps(350) == pytest.approx(112.0)

    def test_aggregates_engines(self):
        assert throughput_gbps(350, 15) == pytest.approx(15 * 112.0)

    def test_zero_engines(self):
        assert throughput_gbps(350, 0) == 0.0

    def test_rejects_negative_engines(self):
        with pytest.raises(ConfigurationError):
            throughput_gbps(350, -1)


class TestEfficiency:
    def test_mw_per_gbps(self):
        assert mw_per_gbps(4.5, 112.0) == pytest.approx(4500 / 112)

    def test_watts_variant(self):
        assert watts_per_gbps(4.5, 112.0) == pytest.approx(4.5 / 112)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            mw_per_gbps(1.0, 0.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            mw_per_gbps(-1.0, 10.0)


class TestEnergyPerPacket:
    def test_value(self):
        # 4.5 W at 350e6 packets/s ≈ 12.86 nJ/packet
        assert energy_per_packet_nj(4.5, 350) == pytest.approx(4.5 / 350e6 * 1e9)

    def test_more_engines_cheaper_packets(self):
        one = energy_per_packet_nj(4.5, 350, 1)
        four = energy_per_packet_nj(4.5, 350, 4)
        assert four == pytest.approx(one / 4)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            energy_per_packet_nj(1.0, 0)


class TestLatency:
    def test_paper_pipeline_latency(self):
        from repro.core.metrics import lookup_latency_ns

        # 29 cycles at 350 MHz ≈ 82.9 ns
        assert lookup_latency_ns(350, 28) == pytest.approx(29 / 350e6 * 1e9)

    def test_faster_clock_lower_latency(self):
        from repro.core.metrics import lookup_latency_ns

        assert lookup_latency_ns(350) < lookup_latency_ns(245)

    def test_rejects_bad_inputs(self):
        from repro.core.metrics import lookup_latency_ns

        with pytest.raises(ConfigurationError):
            lookup_latency_ns(0)
        with pytest.raises(ConfigurationError):
            lookup_latency_ns(100, 0)
