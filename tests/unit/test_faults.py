"""Unit tests for fault injection and graceful degradation (repro.faults)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MalformedBatchError, TransientEngineError
from repro.faults import (
    SHED_RESULT,
    ActiveFaults,
    BramWriteStorm,
    DegradationPolicy,
    EngineStall,
    FaultPlan,
    FaultWindow,
    TransientWalkFailure,
)
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER
from repro.serve import LookupService
from repro.virt.schemes import Scheme

K = 4


@pytest.fixture(scope="module")
def tables():
    return generate_virtual_tables(K, 0.5, SyntheticTableConfig(n_prefixes=250, seed=17))


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(3)
    addresses = rng.integers(0, 1 << 32, size=800, dtype=np.uint64).astype(np.uint32)
    vnids = rng.integers(0, K, size=800, dtype=np.int64)
    return addresses, vnids


def plan_for(fault, start=0, duration=1_000_000):
    return FaultPlan((FaultWindow(start, duration, fault),))


class TestInjectors:
    def test_stall_validation(self):
        with pytest.raises(ConfigurationError):
            EngineStall(engine=-1, frequency_scale=0.5)
        with pytest.raises(ConfigurationError):
            EngineStall(engine=0, frequency_scale=1.0)  # 1.0 = no stall

    def test_storm_validation(self):
        with pytest.raises(ConfigurationError):
            BramWriteStorm(write_rate=1.5)
        with pytest.raises(ConfigurationError):
            BramWriteStorm(write_rate=0.1, slot_steal_fraction=1.0)

    def test_transient_validation(self):
        with pytest.raises(ConfigurationError):
            TransientWalkFailure(engine=0, n_failures=0)

    def test_labels_are_stable(self):
        assert EngineStall(2, 0.25).label() == "stall(engine=2, scale=0.25)"
        assert "write_storm" in BramWriteStorm(0.3, 0.2).label()
        assert "transient_walk" in TransientWalkFailure(1, 2).label()


class TestActiveFaults:
    def test_empty_is_falsy(self):
        assert not ActiveFaults(())
        assert ActiveFaults((EngineStall(0, 0.5),))

    def test_overlapping_stalls_compound(self):
        active = ActiveFaults((EngineStall(1, 0.5), EngineStall(1, 0.5)))
        assert active.capacity_scales(2)[1] == pytest.approx(0.25)

    def test_slot_steal_composes(self):
        active = ActiveFaults(
            (BramWriteStorm(0.1, 0.5), BramWriteStorm(0.1, 0.5))
        )
        # 1 - (1-0.5)(1-0.5): storms contend independently for slots
        assert active.capacity_scales(1)[0] == pytest.approx(0.25)

    def test_write_rate_is_max(self):
        active = ActiveFaults((BramWriteStorm(0.1), BramWriteStorm(0.4)))
        assert active.write_rate == pytest.approx(0.4)
        assert ActiveFaults((EngineStall(0, 0.5),)).write_rate is None

    def test_stall_beyond_topology_ignored(self):
        active = ActiveFaults((EngineStall(7, 0.0),))
        assert np.all(active.capacity_scales(2) == 1.0)

    def test_kind_counts(self):
        active = ActiveFaults(
            (EngineStall(0, 0.5), EngineStall(1, 0.5), BramWriteStorm(0.2))
        )
        assert active.kind_counts() == {
            "stall": 2,
            "write_storm": 1,
            "transient_walk": 0,
        }

    def test_check_walk_schedule(self):
        active = ActiveFaults((TransientWalkFailure(engine=1, n_failures=2),))
        with pytest.raises(TransientEngineError):
            active.check_walk(1, 0)
        with pytest.raises(TransientEngineError):
            active.check_walk(1, 1)
        active.check_walk(1, 2)  # third attempt succeeds
        active.check_walk(0, 0)  # other engines unaffected


class TestFaultPlan:
    def test_windows_sorted_and_active(self):
        late = FaultWindow(10, 5, EngineStall(0, 0.5))
        early = FaultWindow(0, 3, BramWriteStorm(0.2))
        plan = FaultPlan((late, early))
        assert plan.windows[0] is early
        assert plan.horizon == 15
        assert [f.kind for f in plan.active_at(1)] == ["write_storm"]
        assert plan.active_at(3) == ()
        assert [f.kind for f in plan.active_at(14)] == ["stall"]
        assert plan.active_at(15) == ()

    def test_context_outside_windows_is_falsy(self):
        plan = plan_for(EngineStall(0, 0.5), start=5, duration=2)
        assert not plan.context_at(0)
        assert plan.context_at(6)

    def test_generate_is_deterministic(self):
        kwargs = dict(n_batches=200, n_engines=K, n_faults=5)
        first = FaultPlan.generate(2012, **kwargs)
        second = FaultPlan.generate(2012, **kwargs)
        assert first.trace(200) == second.trace(200)
        assert first.trace(200) != FaultPlan.generate(2013, **kwargs).trace(200)

    def test_generate_covers_species(self):
        plan = FaultPlan.generate(7, n_batches=500, n_engines=K, n_faults=40)
        kinds = {w.fault.kind for w in plan.windows}
        assert kinds == {"stall", "write_storm", "transient_walk"}


class TestDegradationPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationPolicy(shed_utilization=1.0)
        with pytest.raises(ConfigurationError):
            DegradationPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            DegradationPolicy(backoff_base_s=-0.1)

    def test_backoff_doubles(self):
        policy = DegradationPolicy(backoff_base_s=0.5)
        assert policy.backoff_s(0) == pytest.approx(0.5)
        assert policy.backoff_s(2) == pytest.approx(2.0)


class TestDegradedServing:
    def test_stalled_engine_sheds_expected_fraction(self, tables, batch):
        addresses, vnids = batch
        rho, scale = 0.5, 0.25
        plan = plan_for(EngineStall(engine=2, frequency_scale=scale))
        service = LookupService(
            tables, Scheme.VS, fault_plan=plan, offered_load_fraction=rho
        )
        results, trace = service.serve(addresses, vnids)
        offered = np.bincount(vnids, minlength=K)
        # only VN 2 sheds, and exactly down to the policy's bound
        expected_admit = service.policy.shed_utilization * scale / rho
        assert trace.vn_shed[2] == offered[2] - int(expected_admit * offered[2] + 0.5)
        assert all(trace.vn_shed[vn] == 0 for vn in (0, 1, 3))
        assert (results == SHED_RESULT).sum() == trace.n_shed
        assert trace.fault_labels == ("stall(engine=2, scale=0.25)",)

    def test_admitted_results_match_nominal(self, tables, batch):
        """Degradation sheds lookups; it never corrupts admitted answers."""
        addresses, vnids = batch
        plan = plan_for(EngineStall(engine=1, frequency_scale=0.1))
        degraded = LookupService(tables, Scheme.VS, fault_plan=plan)
        nominal = LookupService(tables, Scheme.VS)
        got, _ = degraded.serve(addresses, vnids)
        want = nominal.lookup_batch(addresses, vnids)
        admitted = got != SHED_RESULT
        assert np.array_equal(got[admitted], want[admitted])

    def test_offline_engine_sheds_whole_vn(self, tables, batch):
        addresses, vnids = batch
        plan = plan_for(EngineStall(engine=1, frequency_scale=0.0))
        service = LookupService(tables, Scheme.NV, fault_plan=plan)
        results, trace = service.serve(addresses, vnids)
        offered = np.bincount(vnids, minlength=K)
        assert trace.vn_shed[1] == offered[1]
        assert (results[vnids == 1] == SHED_RESULT).all()
        assert trace.engine_traces[1].n_packets == 0

    def test_vm_storm_sheds_every_vn(self, tables, batch):
        addresses, vnids = batch
        plan = plan_for(BramWriteStorm(write_rate=0.4, slot_steal_fraction=0.5))
        service = LookupService(
            tables, Scheme.VM, fault_plan=plan, offered_load_fraction=0.8
        )
        _, trace = service.serve(addresses, vnids)
        assert all(s > 0 for s in trace.vn_shed)

    def test_transient_failure_recovered_by_retry(self, tables, batch):
        plan = plan_for(TransientWalkFailure(engine=0, n_failures=2))
        service = LookupService(tables, Scheme.VM, fault_plan=plan)
        results, trace = service.serve(*batch)
        assert trace.retries == 2
        assert trace.walk_failures == 2
        assert trace.failed_engines == ()
        assert trace.n_shed == 0
        assert not (results == SHED_RESULT).any()

    def test_exhausted_retries_shed_the_engine(self, tables, batch):
        addresses, vnids = batch
        plan = plan_for(TransientWalkFailure(engine=0, n_failures=3))
        service = LookupService(
            tables,
            Scheme.VS,
            fault_plan=plan,
            policy=DegradationPolicy(max_retries=1),
        )
        results, trace = service.serve(addresses, vnids)
        assert trace.failed_engines == (0,)
        assert trace.vn_shed[0] == np.bincount(vnids, minlength=K)[0]
        assert (results[vnids == 0] == SHED_RESULT).all()
        # the other engines were untouched
        assert all(trace.vn_shed[vn] == 0 for vn in (1, 2, 3))

    def test_slice_admission_matches_index_list_reference(self, tables, batch):
        """SoA shedding keeps exactly the old index-list admitted set.

        The slice path admits the head of each VN's contiguous slice;
        by sort stability that must equal the reference partition
        ``np.flatnonzero(vnids == vn)[:keep]`` — earliest arrivals in,
        latest arrivals shed.
        """
        addresses, vnids = batch
        plan = plan_for(EngineStall(engine=2, frequency_scale=0.25))
        degraded = LookupService(tables, Scheme.NV, fault_plan=plan)
        nominal = LookupService(tables, Scheme.NV)
        results, trace = degraded.serve(addresses, vnids)
        want = nominal.lookup_batch(addresses, vnids)
        for vn in range(K):
            offered = np.flatnonzero(vnids == vn)
            keep = len(offered) - trace.vn_shed[vn]
            kept_ref, shed_ref = offered[:keep], offered[keep:]
            assert np.array_equal(results[kept_ref], want[kept_ref])
            assert (results[shed_ref] == SHED_RESULT).all()

    def test_retry_replays_the_failing_engines_own_slice(self, tables, batch):
        """Retry thunks must capture their own engine's slice.

        A late-binding closure over the loop variables would make the
        retried walk replay the *last* engine's batch; with the fault
        on a middle engine, every admitted answer must still match the
        nominal service.
        """
        addresses, vnids = batch
        plan = plan_for(TransientWalkFailure(engine=1, n_failures=2))
        degraded = LookupService(tables, Scheme.NV, fault_plan=plan)
        nominal = LookupService(tables, Scheme.NV)
        results, trace = degraded.serve(addresses, vnids)
        assert trace.retries == 2
        assert trace.n_shed == 0
        assert np.array_equal(results, nominal.lookup_batch(addresses, vnids))

    def test_degraded_latency_exceeds_nominal(self, tables, batch):
        plan = plan_for(EngineStall(engine=2, frequency_scale=0.25))
        degraded = LookupService(tables, Scheme.VS, fault_plan=plan)
        nominal = LookupService(tables, Scheme.VS)
        _, degraded_trace = degraded.serve(*batch)
        _, nominal_trace = nominal.serve(*batch)
        assert degraded_trace.latency.total_ns > nominal_trace.latency.total_ns

    def test_batches_outside_window_are_nominal(self, tables, batch):
        plan = plan_for(EngineStall(engine=0, frequency_scale=0.0), start=1, duration=1)
        service = LookupService(tables, Scheme.VS, fault_plan=plan)
        _, first = service.serve(*batch)
        _, second = service.serve(*batch)  # batch index 1: stalled
        _, third = service.serve(*batch)
        assert first.n_shed == 0 and first.fault_labels == ()
        assert second.n_shed > 0
        assert third.n_shed == 0 and third.fault_labels == ()

    def test_engine_loads_carry_degraded_activity(self, tables, batch):
        """engine_loads() under shed is the power model's activity vector."""
        addresses, vnids = batch
        plan = plan_for(EngineStall(engine=2, frequency_scale=0.25))
        service = LookupService(tables, Scheme.VS, fault_plan=plan)
        _, trace = service.serve(addresses, vnids)
        offered = np.bincount(vnids, minlength=K)
        expected = (offered - np.asarray(trace.vn_shed)) / len(addresses)
        assert np.allclose(trace.engine_loads(), expected)


class TestFaultObservability:
    @pytest.fixture()
    def obs_enabled(self):
        REGISTRY.enable()
        TRACER.enable()
        yield REGISTRY
        REGISTRY.disable()
        TRACER.disable()
        REGISTRY.clear()
        TRACER.drain()

    def test_error_budget_metrics_emitted(self, tables, batch, obs_enabled):
        plan = plan_for(EngineStall(engine=2, frequency_scale=0.25))
        service = LookupService(tables, Scheme.VS, fault_plan=plan)
        _, trace = service.serve(*batch)
        shed = obs_enabled.get("repro_serve_shed_lookups_total")
        assert sum(c.value for _, c in shed.samples()) == trace.n_shed
        gauge = obs_enabled.get("repro_fault_active")
        assert gauge.labels("stall").value == 1.0
        assert gauge.labels("write_storm").value == 0.0

    def test_fault_gauge_decays_after_window(self, tables, batch, obs_enabled):
        plan = plan_for(EngineStall(engine=0, frequency_scale=0.5), duration=1)
        service = LookupService(tables, Scheme.VS, fault_plan=plan)
        service.serve(*batch)
        assert obs_enabled.get("repro_fault_active").labels("stall").value == 1.0
        service.serve(*batch)  # window closed
        assert obs_enabled.get("repro_fault_active").labels("stall").value == 0.0

    def test_retry_and_error_counters(self, tables, batch, obs_enabled):
        plan = plan_for(TransientWalkFailure(engine=0, n_failures=2))
        service = LookupService(tables, Scheme.VM, fault_plan=plan)
        service.serve(*batch)
        retries = obs_enabled.get("repro_serve_retries_total").labels("VM")
        assert retries.value == 2.0
        errors = obs_enabled.get("repro_serve_errors_total")
        assert errors.labels("transient_walk").value == 2.0

    def test_walk_failed_counted(self, tables, batch, obs_enabled):
        plan = plan_for(TransientWalkFailure(engine=0, n_failures=5))
        service = LookupService(
            tables, Scheme.VM, fault_plan=plan, policy=DegradationPolicy(max_retries=0)
        )
        service.serve(*batch)
        errors = obs_enabled.get("repro_serve_errors_total")
        assert errors.labels("walk_failed").value == 1.0

    def test_fault_child_spans_emitted(self, tables, batch, obs_enabled):
        plan = plan_for(EngineStall(engine=1, frequency_scale=0.5))
        service = LookupService(tables, Scheme.VS, fault_plan=plan)
        service.serve(*batch)
        spans = {s.name for s in TRACER.spans()}
        assert "serve.batch" in spans
        assert "fault.stall" in spans

    def test_malformed_rejection_counts_only_errors(self, tables, obs_enabled):
        service = LookupService(tables, Scheme.VS)
        with pytest.raises(MalformedBatchError):
            service.serve(np.array([1.5, np.nan]), np.array([0, 1], dtype=np.int64))
        errors = obs_enabled.get("repro_serve_errors_total")
        assert errors.labels("non_finite").value == 1.0
        # the rejected batch must not masquerade as served traffic
        assert obs_enabled.get("repro_serve_batches_total") is None

    def test_verify_does_not_inflate_serve_metrics(self, tables, batch, obs_enabled):
        sampler_free = LookupService(tables, Scheme.VS)
        assert sampler_free.verify(*batch)
        assert obs_enabled.get("repro_serve_batches_total") is None
        assert obs_enabled.get("repro_serve_lookups_total") is None
        assert obs_enabled.get("repro_serve_batch_latency_seconds") is None

    def test_verify_ignores_fault_plan(self, tables, batch):
        """verify() is an oracle cross-check, not production traffic."""
        plan = plan_for(EngineStall(engine=0, frequency_scale=0.0))
        service = LookupService(tables, Scheme.VS, fault_plan=plan)
        assert service.verify(*batch)
