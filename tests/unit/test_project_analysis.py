"""Unit coverage for the whole-program analysis pass (project.py).

Projects are assembled from in-memory (display path, tree, source)
triples — the same shape the runner hands to :func:`build_project` —
so each test states its program as a dict of module sources.
"""

import ast
import textwrap

from repro.staticcheck.project import (
    ModuleSummary,
    ProjectCache,
    build_project,
    extract_module_summary,
    module_name_for,
    source_sha,
)


def build(files, *, root=None, cache=None):
    """Build a ProjectAnalysis from ``{display_path: source}``."""
    parsed = []
    for display, source in files.items():
        source = textwrap.dedent(source)
        parsed.append((display, ast.parse(source), source))
    return build_project(parsed, root=root, cache=cache)


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert module_name_for("src/repro/virt/merged.py") == "repro.virt.merged"

    def test_plain_tree_keeps_its_prefix(self):
        assert module_name_for("tests/unit/test_x.py") == "tests.unit.test_x"

    def test_package_init_collapses_to_the_package(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"


class TestExtraction:
    def test_imports_instances_and_entry_ids_are_recorded(self):
        source = textwrap.dedent(
            """
            import random
            from pkg.registry import register

            class Estimator:
                def evaluate(self, cfg):
                    return cfg

            EST = Estimator()

            @register("exp_one")
            def run(params):
                return EST.evaluate(params)
            """
        )
        summary = extract_module_summary("src/pkg/mod.py", ast.parse(source))
        assert summary.module == "pkg.mod"
        assert summary.imports["register"] == ["symbol", "pkg.registry.register"]
        assert summary.instances == {"EST": "Estimator"}
        assert summary.functions["run"].entry_id == "exp_one"
        assert "register" in summary.functions["run"].decorators

    def test_effect_classification_covers_all_kinds(self):
        source = textwrap.dedent(
            """
            import os
            import random
            import time

            def f(xs):
                total = random.random() + time.time()
                flag = os.environ.get("X")
                for x in {1, 2}:
                    total += x
                time.sleep(1)
                return total, flag
            """
        )
        summary = extract_module_summary("m.py", ast.parse(source))
        kinds = {e.kind for e in summary.functions["f"].effects}
        assert kinds == {"random", "time", "env", "set_iter", "blocking"}

    def test_seeded_random_is_not_an_effect(self):
        source = textwrap.dedent(
            """
            import random

            def f(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        )
        summary = extract_module_summary("m.py", ast.parse(source))
        assert [e for e in summary.functions["f"].effects if e.kind == "random"] == []

    def test_json_round_trip_preserves_the_summary(self):
        source = textwrap.dedent(
            """
            import time
            from pkg.lib import helper

            class C:
                def __init__(self):
                    self.x = 0

            def g(a, b=1):
                c = C()
                c.items = helper(a)
                return time.time()
            """
        )
        summary = extract_module_summary("src/pkg/m.py", ast.parse(source))
        summary.sha = source_sha(source)
        clone = ModuleSummary.from_json(summary.to_json())
        assert clone == summary


class TestCallGraph:
    def test_cross_module_resolution_through_imports(self):
        project = build(
            {
                "src/pkg/lib.py": """
                    import time

                    def helper():
                        return time.time()
                    """,
                "src/pkg/app.py": """
                    from pkg.lib import helper

                    def main():
                        return helper()
                    """,
            }
        )
        assert "pkg.lib.helper" in project.callees("pkg.app.main")
        reach = project.reachable_from("pkg.app.main")
        assert {"pkg.app.main", "pkg.lib.helper"} <= reach

    def test_method_resolution_via_constructed_local(self):
        project = build(
            {
                "src/pkg/m.py": """
                    class Engine:
                        def step(self):
                            return 1

                    def drive():
                        e = Engine()
                        return e.step()
                    """
            }
        )
        assert "pkg.m.Engine.step" in project.callees("pkg.m.drive")

    def test_method_resolution_via_module_level_instance(self):
        project = build(
            {
                "src/pkg/m.py": """
                    class Engine:
                        def step(self):
                            return 1

                    ENGINE = Engine()

                    def drive():
                        return ENGINE.step()
                    """
            }
        )
        assert "pkg.m.Engine.step" in project.callees("pkg.m.drive")

    def test_method_resolution_via_imported_instance(self):
        project = build(
            {
                "src/pkg/core.py": """
                    class Engine:
                        def step(self):
                            return 1

                    ENGINE = Engine()
                    """,
                "src/pkg/app.py": """
                    from pkg.core import ENGINE

                    def drive():
                        return ENGINE.step()
                    """,
            }
        )
        assert "pkg.core.Engine.step" in project.callees("pkg.app.drive")

    def test_method_resolution_via_annotated_parameter(self):
        project = build(
            {
                "src/pkg/m.py": """
                    class Trie:
                        def walk(self):
                            return ()

                    def scan(trie: Trie):
                        return trie.walk()
                    """
            }
        )
        assert "pkg.m.Trie.walk" in project.callees("pkg.m.scan")

    def test_self_calls_resolve_within_the_class(self):
        project = build(
            {
                "src/pkg/m.py": """
                    class C:
                        def outer(self):
                            return self.inner()

                        def inner(self):
                            return 1
                    """
            }
        )
        assert "pkg.m.C.inner" in project.callees("pkg.m.C.outer")

    def test_unresolvable_receivers_get_no_edge(self):
        project = build(
            {
                "src/pkg/m.py": """
                    def f(thing):
                        return thing.mystery()
                    """
            }
        )
        assert project.callees("pkg.m.f") == []

    def test_entry_points_by_decorator(self):
        project = build(
            {
                "src/pkg/m.py": """
                    from pkg.registry import register

                    @register("exp")
                    def run():
                        return 0

                    def not_an_entry():
                        return 1
                    """
            }
        )
        assert [f.qualname for f in project.entry_points()] == ["pkg.m.run"]


class TestMutatedParams:
    def test_direct_parameter_mutation(self):
        project = build(
            {
                "src/pkg/m.py": """
                    def push(box, item):
                        box.items.append(item)
                    """
            }
        )
        assert project.mutated_params("pkg.m.push") == frozenset({"box"})

    def test_mutation_propagates_through_forwarding(self):
        project = build(
            {
                "src/pkg/m.py": """
                    def inner(target):
                        target.x = 1

                    def outer(obj):
                        inner(obj)

                    def outermost(o):
                        outer(o)
                    """
            }
        )
        assert project.mutated_params("pkg.m.outermost") == frozenset({"o"})

    def test_keyword_forwarding_counts(self):
        project = build(
            {
                "src/pkg/m.py": """
                    def inner(target):
                        target.x = 1

                    def outer(obj):
                        inner(target=obj)
                    """
            }
        )
        assert project.mutated_params("pkg.m.outer") == frozenset({"obj"})

    def test_read_only_callee_does_not_propagate(self):
        project = build(
            {
                "src/pkg/m.py": """
                    def inner(target):
                        return target.x

                    def outer(obj):
                        return inner(obj)
                    """
            }
        )
        assert project.mutated_params("pkg.m.outer") == frozenset()


class TestProjectCache:
    FILES = {
        "src/pkg/m.py": """
            import time

            def f():
                return time.time()
            """
    }

    def test_cold_then_warm(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache = ProjectCache(cache_path)
        build(self.FILES, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache_path.is_file()

        warm = ProjectCache(cache_path)
        project = build(self.FILES, cache=warm)
        assert (warm.hits, warm.misses) == (1, 0)
        # cached summaries answer queries identically
        assert {e.kind for e in project.functions["pkg.m.f"].effects} == {"time"}

    def test_changed_source_misses(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        build(self.FILES, cache=ProjectCache(cache_path))
        changed = {
            "src/pkg/m.py": self.FILES["src/pkg/m.py"].replace(
                "time.time()", "time.time() + 1"
            )
        }
        warm = ProjectCache(cache_path)
        build(changed, cache=warm)
        assert (warm.hits, warm.misses) == (0, 1)

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        cache = ProjectCache(cache_path)
        build(self.FILES, cache=cache)
        assert cache.misses == 1
