"""Merged trie (repro.virt.merged)."""

import numpy as np
import pytest

from repro.errors import MergeError
from repro.iplookup.rib import NO_ROUTE, RoutingTable
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.iplookup.trie import UnibitTrie
from repro.virt.merged import (
    global_alpha_from_pairwise,
    merge_tries,
    pairwise_alpha_from_global,
)


@pytest.fixture(scope="module")
def vn_tables():
    return generate_virtual_tables(3, 0.6, SyntheticTableConfig(n_prefixes=250, seed=17))


@pytest.fixture(scope="module")
def merged(vn_tables):
    return merge_tries([UnibitTrie(t) for t in vn_tables])


class TestAlphaConversions:
    def test_roundtrip(self):
        for k in (2, 5, 15):
            for alpha in (0.1, 0.5, 0.9):
                g = global_alpha_from_pairwise(alpha, k)
                assert pairwise_alpha_from_global(g, k) == pytest.approx(alpha)

    def test_identical_tables_bound(self):
        # K identical tables: global alpha = (K-1)/K maps to pairwise 1
        assert pairwise_alpha_from_global(14 / 15, 15) == pytest.approx(1.0)

    def test_rejects_small_k(self):
        with pytest.raises(MergeError):
            pairwise_alpha_from_global(0.5, 1)

    def test_rejects_out_of_range(self):
        with pytest.raises(MergeError):
            pairwise_alpha_from_global(0.9, 2)  # > (k-1)/k
        with pytest.raises(MergeError):
            global_alpha_from_pairwise(1.5, 3)


class TestMergeStructure:
    def test_full_and_leaf_pushed(self, merged):
        merged.structure.validate()
        assert merged.structure.is_leaf_pushed()

    def test_every_leaf_has_a_vector(self, merged):
        trie = merged.structure
        for node in trie.nodes():
            if trie.is_leaf(node):
                assert merged.leaf_vector(node).shape == (merged.k,)
            else:
                with pytest.raises(MergeError):
                    merged.leaf_vector(node)

    def test_identical_tries_fully_overlap(self, vn_tables):
        tries = [UnibitTrie(vn_tables[0]) for _ in range(4)]
        m = merge_tries(tries)
        assert m.union_input_nodes == tries[0].num_nodes
        assert m.global_alpha == pytest.approx(3 / 4)
        assert m.pairwise_alpha == pytest.approx(1.0)

    def test_disjoint_tries_small_alpha(self):
        a = UnibitTrie(RoutingTable.from_strings([("10.0.0.0/8", 1)]))
        b = UnibitTrie(RoutingTable.from_strings([("192.0.0.0/8", 2)]))
        m = merge_tries([a, b])
        # only the root is shared
        assert m.union_input_nodes == a.num_nodes + b.num_nodes - 1

    def test_single_trie_merge(self, vn_tables):
        m = merge_tries([UnibitTrie(vn_tables[0])])
        assert m.k == 1
        assert m.pairwise_alpha == 1.0

    def test_empty_input_rejected(self):
        with pytest.raises(MergeError):
            merge_tries([])

    def test_merge_of_empty_tries(self):
        m = merge_tries([UnibitTrie(), UnibitTrie()])
        assert m.num_nodes == 1
        assert m.lookup(0, 0) == NO_ROUTE


class TestMergedLookup:
    def test_per_vn_correctness(self, vn_tables, merged, random_addresses):
        for vn, table in enumerate(vn_tables):
            expected = table.lookup_linear_batch(random_addresses[:100])
            got = np.array([merged.lookup(int(a), vn) for a in random_addresses[:100]])
            assert np.array_equal(expected, got)

    def test_batch_matches_scalar(self, merged, random_addresses):
        rng = np.random.default_rng(0)
        vnids = rng.integers(0, merged.k, size=len(random_addresses))
        batch = merged.lookup_batch(random_addresses, vnids)
        scalar = np.array(
            [merged.lookup(int(a), int(v)) for a, v in zip(random_addresses, vnids)]
        )
        assert np.array_equal(batch, scalar)

    def test_rejects_bad_vnid(self, merged):
        with pytest.raises(MergeError):
            merged.lookup(0, merged.k)
        with pytest.raises(MergeError):
            merged.lookup_batch(np.array([0], dtype=np.uint32), np.array([merged.k]))

    def test_rejects_shape_mismatch(self, merged):
        with pytest.raises(MergeError):
            merged.lookup_batch(np.array([0, 1], dtype=np.uint32), np.array([0]))


class TestMergedStats:
    def test_stats_describe_structure(self, merged):
        stats = merged.stats()
        assert stats.total_nodes == merged.num_nodes
        assert stats.internal_nodes + stats.leaf_nodes == stats.total_nodes

    def test_alpha_monotone_in_sharing(self):
        config = SyntheticTableConfig(n_prefixes=250, seed=23)
        alphas = []
        for fraction in (0.0, 0.5, 1.0):
            tables = generate_virtual_tables(3, fraction, config)
            m = merge_tries([UnibitTrie(t) for t in tables])
            alphas.append(m.global_alpha)
        assert alphas[0] < alphas[1] < alphas[2]


class TestMergeWidths:
    """Width handling regressions from the real-RIB ingest path."""

    def _v6_tables(self):
        from repro.iplookup.prefix6 import parse_prefix6

        t1 = RoutingTable(name="a")
        t1.add(parse_prefix6("2001:db8::/32"), 1)
        t1.add(parse_prefix6("2001:db8:1::/48"), 2)
        t2 = RoutingTable(name="b")
        t2.add(parse_prefix6("2001:db8::/32"), 3)
        t2.add(parse_prefix6("::/0"), 4)
        return t1, t2

    def test_v6_merge_inherits_the_128_bit_width(self):
        t1, t2 = self._v6_tables()
        merged = merge_tries([UnibitTrie(t, width=128) for t in (t1, t2)])
        assert merged.structure.width == 128
        assert merged.structure.depth() == 48
        assert 0.0 < merged.global_alpha <= 0.5

    def test_mixed_width_merge_is_rejected(self):
        t1, _ = self._v6_tables()
        v4 = RoutingTable.from_strings([("10.0.0.0/8", 1)])
        with pytest.raises(MergeError, match="mixed widths"):
            merge_tries([UnibitTrie(v4), UnibitTrie(t1, width=128)])
