"""Model validation helpers (repro.core.validation)."""

import numpy as np
import pytest

from repro.core.validation import (
    PAPER_MAX_ERROR_PCT,
    ErrorSummary,
    percentage_error,
    summarize_errors,
)
from repro.errors import ConfigurationError


class TestPercentageError:
    def test_definition(self):
        assert percentage_error(103.0, 100.0) == pytest.approx(3.0)
        assert percentage_error(97.0, 100.0) == pytest.approx(-3.0)

    def test_rejects_nonpositive_experimental(self):
        with pytest.raises(ConfigurationError):
            percentage_error(1.0, 0.0)


class TestErrorSummary:
    def test_statistics(self):
        s = ErrorSummary("x", np.array([1.0, -2.0, 0.5]))
        assert s.max_abs_pct == 2.0
        assert s.mean_pct == pytest.approx(-1 / 6)
        assert s.rms_pct == pytest.approx(np.sqrt((1 + 4 + 0.25) / 3))

    def test_empty(self):
        s = ErrorSummary("x", np.array([]))
        assert s.max_abs_pct == 0.0
        assert s.mean_pct == 0.0
        assert s.rms_pct == 0.0

    def test_paper_bound_check(self):
        assert ErrorSummary("x", np.array([2.9, -2.9])).within_paper_bound()
        assert not ErrorSummary("x", np.array([3.1])).within_paper_bound()
        assert PAPER_MAX_ERROR_PCT == 3.0


class TestSummarize:
    def test_from_series(self):
        s = summarize_errors("test", [103.0, 98.0], [100.0, 100.0])
        assert s.errors_pct == pytest.approx([3.0, -2.0])

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            summarize_errors("x", [1.0], [1.0, 2.0])

    def test_nonpositive_experimental(self):
        with pytest.raises(ConfigurationError):
            summarize_errors("x", [1.0], [0.0])
