"""IPv6 prefixes and tables (repro.iplookup.prefix6)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PrefixError
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.prefix6 import (
    Prefix6,
    Synthetic6Config,
    generate_table6,
    parse_prefix6,
)
from repro.iplookup.trie import UnibitTrie


class TestPrefix6:
    def test_parse_and_str_roundtrip(self):
        p = parse_prefix6("2001:db8::/32")
        assert p.length == 32
        assert str(p) == "2001:db8::/32"

    def test_bare_address_is_slash128(self):
        assert parse_prefix6("::1").length == 128

    def test_normalized_clears_host_bits(self):
        p = Prefix6.normalized((1 << 127) | 0xFFFF, 16)
        assert p.value == 1 << 127

    def test_contains(self):
        p = parse_prefix6("2001:db8::/32")
        assert p.contains(int(parse_prefix6("2001:db8:1::").value))
        assert not p.contains(int(parse_prefix6("2001:db9::").value))

    def test_bit_extraction(self):
        p = parse_prefix6("8000::/1")
        assert p.bit(0) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(PrefixError):
            Prefix6(0, 129)
        with pytest.raises(PrefixError):
            Prefix6(1, 16)  # host bits
        with pytest.raises(PrefixError):
            parse_prefix6("not-an-address/32")
        with pytest.raises(PrefixError):
            parse_prefix6("2001:db8::/xx")

    def test_ordering(self):
        a = parse_prefix6("2001:db8::/32")
        b = parse_prefix6("2001:db8::/48")
        assert a < b


class TestSynthetic6:
    def test_exact_count_and_lengths(self):
        config = Synthetic6Config(n_prefixes=300, seed=4)
        table = generate_table6(config)
        assert len(table) == 300
        assert table.max_length() <= config.max_length
        hist = table.length_histogram()
        assert hist[48] > 0.5 * hist.sum()  # /48-dominated edge table

    def test_deterministic(self):
        config = Synthetic6Config(n_prefixes=100, seed=5)
        assert generate_table6(config).routes() == generate_table6(config).routes()

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            Synthetic6Config(n_prefixes=0)
        with pytest.raises(ConfigurationError):
            Synthetic6Config(max_length=40)


class TestWideTrie:
    @pytest.fixture(scope="class")
    def v6_setup(self):
        table = generate_table6(Synthetic6Config(n_prefixes=200, seed=6))
        trie = UnibitTrie(table, width=128)
        return table, trie

    def test_width_rejects_overlong_prefix(self):
        trie = UnibitTrie()  # width 32
        with pytest.raises(Exception):
            trie.insert(parse_prefix6("2001:db8::/48"), 1)

    def test_lookup_matches_oracle(self, v6_setup):
        table, trie = v6_setup
        rng = np.random.default_rng(7)
        prefixes = table.prefixes()
        for _ in range(150):
            p = prefixes[int(rng.integers(0, len(prefixes)))]
            addr = p.value | int(rng.integers(0, 1 << 40))
            assert trie.lookup(addr) == table.lookup_linear(addr)

    def test_batch_falls_back_to_scalar(self, v6_setup):
        table, trie = v6_setup
        addrs = [p.value for p in table.prefixes()[:20]]
        batch = trie.lookup_batch(addrs)
        scalar = np.array([trie.lookup(a) for a in addrs])
        assert np.array_equal(batch, scalar)

    def test_leaf_push_preserves_width_and_lookups(self, v6_setup):
        table, trie = v6_setup
        pushed = leaf_push(trie)
        assert pushed.width == 128
        assert pushed.is_leaf_pushed()
        for p in table.prefixes()[:50]:
            assert pushed.lookup(p.value) == table.lookup_linear(p.value)

    def test_pipeline_rejects_wide_trie(self, v6_setup):
        from repro.iplookup.pipeline import LookupPipeline

        _, trie = v6_setup
        with pytest.raises(ConfigurationError):
            LookupPipeline(trie, n_stages=128)

    def test_validate_and_stats(self, v6_setup):
        _, trie = v6_setup
        trie.validate()
        stats = trie.stats()
        assert stats.depth <= 64


class TestIpv6Experiment:
    def test_ipv6_costs_more(self):
        from repro.experiments.ipv6_outlook import run

        result = run(n_prefixes=500, k=4)
        stages = result.get("stages")
        assert stages[1] > stages[0]
        assert result.get("merged_total_W")[1] > result.get("merged_total_W")[0]
        assert result.get("mW_per_Gbps")[1] > result.get("mW_per_Gbps")[0]
