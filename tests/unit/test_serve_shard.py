"""Shard worker runtime and fault-plan scoping (repro.serve.shard)."""

import numpy as np
import pytest

from repro.faults.injectors import BramWriteStorm, EngineStall, TransientWalkFailure
from repro.faults.plan import FaultPlan, FaultWindow
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.serve.shard import ShardBatchRequest, ShardConfig, ShardRuntime
from repro.virt.schemes import Scheme

K = 4


@pytest.fixture(scope="module")
def tables():
    config = SyntheticTableConfig(n_prefixes=200, seed=5)
    return generate_virtual_tables(K, 0.5, config)


def _config(tables, lo, hi, **kwargs):
    return ShardConfig(
        shard_id=lo,
        vn_base=lo,
        tables=tuple(tables[lo:hi]),
        scheme=kwargs.pop("scheme", Scheme.VS),
        **kwargs,
    )


def _request(k_local, n=400, seed=9, batch_index=0):
    rng = np.random.default_rng(seed)
    return ShardBatchRequest(
        batch_index=batch_index,
        addresses=rng.integers(0, 1 << 32, size=n, dtype=np.uint64).astype(np.uint32),
        vnids=rng.integers(0, k_local, size=n, dtype=np.int64),
        queue_seed=seed,
    )


class TestShardRuntime:
    def test_serves_local_vn_range(self, tables):
        runtime = ShardRuntime(_config(tables, 2, 4))
        request = _request(2)
        result = runtime.serve(request)
        for local_vn in (0, 1):
            mask = request.vnids == local_vn
            oracle = tables[2 + local_vn].lookup_linear_batch(
                request.addresses[mask]
            )
            assert np.array_equal(result.results[mask], oracle)

    def test_deterministic_replay(self, tables):
        a = ShardRuntime(_config(tables, 0, 2)).serve(_request(2))
        b = ShardRuntime(_config(tables, 0, 2)).serve(_request(2))
        assert np.array_equal(a.results, b.results)
        assert a.queue == b.queue
        assert a.trace.vn_counts == b.trace.vn_counts

    def test_queue_validation_published(self, tables):
        runtime = ShardRuntime(_config(tables, 0, 2))
        result = runtime.serve(_request(2, n=20_000))
        assert result.queue.utilization == pytest.approx(0.5)
        assert result.queue.relative_error < 0.5
        snapshot = runtime.snapshot()
        names = {f.name for f in snapshot.families}
        assert "repro_shard_queue_wait_ns" in names
        assert "repro_shard_queue_error" in names

    def test_batch_clock_pinned_to_frontend_index(self, tables):
        """The same shard must consult its fault plan at the frontend's
        batch index, not its own serve count."""
        plan = FaultPlan(
            (FaultWindow(start=5, duration=1, fault=EngineStall(0, 0.0)),)
        )
        runtime = ShardRuntime(_config(tables, 0, 2, fault_plan=plan))
        nominal = runtime.serve(_request(2, batch_index=0))
        assert nominal.trace.n_shed == 0
        faulted = runtime.serve(_request(2, batch_index=5))
        assert faulted.trace.n_shed > 0

    def test_handle_protocol(self, tables):
        runtime = ShardRuntime(_config(tables, 0, 2))
        op, payload = runtime.handle(("serve", _request(2)))
        assert op == "ok"
        op, snapshot = runtime.handle(("metrics", None))
        assert op == "ok" and snapshot.shard == "0"
        assert runtime.handle(("stop", None)) == ("bye", None)
        op, message = runtime.handle(("unknown", None))
        assert op == "error" and "unknown" in message

    def test_handle_wraps_failures_as_error_replies(self, tables):
        runtime = ShardRuntime(_config(tables, 0, 2))
        bad = ShardBatchRequest(
            batch_index=0,
            addresses=np.zeros(3, dtype=np.uint32),
            vnids=np.zeros(2, dtype=np.int64),  # truncated
            queue_seed=0,
        )
        op, message = runtime.handle(("serve", bad))
        assert op == "error"
        assert "truncated" in message


class TestScopedPlans:
    def test_engine_faults_rebased_to_local_indices(self):
        plan = FaultPlan(
            (
                FaultWindow(0, 2, EngineStall(2, 0.5)),
                FaultWindow(1, 2, TransientWalkFailure(3, 1)),
            )
        )
        scoped = plan.scoped_to_engines((2, 3))
        kinds = {(w.fault.kind, w.fault.engine) for w in scoped.windows}
        assert kinds == {("stall", 0), ("transient_walk", 1)}

    def test_other_shards_faults_dropped(self):
        plan = FaultPlan((FaultWindow(0, 2, EngineStall(0, 0.5)),))
        scoped = plan.scoped_to_engines((2, 3))
        assert scoped.windows == ()

    def test_device_wide_storm_reaches_every_shard(self):
        storm = BramWriteStorm(write_rate=0.2, slot_steal_fraction=0.3)
        plan = FaultPlan((FaultWindow(0, 3, storm),))
        scoped = plan.scoped_to_engines((5, 6))
        assert len(scoped.windows) == 1
        assert scoped.windows[0].fault == storm

    def test_windows_keep_their_batch_intervals(self):
        plan = FaultPlan((FaultWindow(7, 4, EngineStall(1, 0.0)),))
        scoped = plan.scoped_to_engines((1,))
        assert scoped.windows[0].start == 7
        assert scoped.windows[0].duration == 4
