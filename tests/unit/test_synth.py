"""Synthetic routing-table generator (repro.iplookup.synth)."""

import pytest

from repro.errors import CalibrationError, ConfigurationError
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.synth import (
    PAPER_TABLE_PREFIXES,
    SyntheticTableConfig,
    calibrate_shared_fraction,
    generate_table,
    generate_virtual_tables,
    paper_reference_table,
)
from repro.iplookup.trie import UnibitTrie


class TestConfigValidation:
    def test_defaults_are_paper_sized(self):
        assert SyntheticTableConfig().n_prefixes == PAPER_TABLE_PREFIXES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_prefixes": 0},
            {"max_length": 7},
            {"max_length": 33},
            {"n_allocation_blocks": 0},
            {"mean_run_length": 0.5},
            {"aggregate_fraction": 1.0},
            {"aggregate_fraction": -0.1},
            {"long_fraction": 1.0},
            {"aggregate_fraction": 0.6, "long_fraction": 0.5},
            {"n_next_hops": 0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            SyntheticTableConfig(**kwargs)


class TestGeneration:
    def test_exact_prefix_count(self, medium_config, medium_table):
        assert len(medium_table) == medium_config.n_prefixes

    def test_deterministic(self, medium_config):
        a = generate_table(medium_config)
        b = generate_table(medium_config)
        assert a.routes() == b.routes()

    def test_different_seeds_differ(self, medium_config):
        from dataclasses import replace

        other = generate_table(replace(medium_config, seed=medium_config.seed + 1))
        base = generate_table(medium_config)
        assert base.routes() != other.routes()

    def test_respects_max_length(self, medium_table, medium_config):
        assert medium_table.max_length() <= medium_config.max_length

    def test_length_distribution_dominated_by_24s(self, medium_table):
        hist = medium_table.length_histogram()
        assert hist[24] > 0.4 * hist.sum()

    def test_next_hops_in_range(self, medium_table, medium_config):
        assert max(medium_table.next_hops()) < medium_config.n_next_hops


class TestPaperCalibration:
    def test_reference_table_statistics(self):
        table = paper_reference_table()
        assert len(table) == 3725
        trie = UnibitTrie(table)
        pushed = leaf_push(trie)
        # calibration targets from the paper (Section V-E), with the
        # tolerance documented in EXPERIMENTS.md
        assert 9_000 <= trie.num_nodes <= 12_500
        assert 15_000 <= pushed.num_nodes <= 17_500
        assert pushed.stats().depth <= 28


class TestVirtualTables:
    def test_shapes(self, medium_config):
        tables = generate_virtual_tables(3, 0.5, medium_config)
        assert len(tables) == 3
        for t in tables:
            assert len(t) == medium_config.n_prefixes

    def test_zero_sharing_mostly_disjoint(self, medium_config):
        a, b = generate_virtual_tables(2, 0.0, medium_config)
        common = set(a.prefixes()) & set(b.prefixes())
        assert len(common) < 0.15 * len(a)

    def test_full_sharing_identical_structure(self, medium_config):
        a, b = generate_virtual_tables(2, 1.0, medium_config)
        assert a.prefixes() == b.prefixes()

    def test_next_hops_differ_across_vns(self, medium_config):
        a, b = generate_virtual_tables(2, 1.0, medium_config)
        hops_a = [a.next_hop_of(p) for p in a.prefixes()]
        hops_b = [b.next_hop_of(p) for p in b.prefixes()]
        assert hops_a != hops_b

    def test_rejects_bad_arguments(self, medium_config):
        with pytest.raises(ConfigurationError):
            generate_virtual_tables(0, 0.5, medium_config)
        with pytest.raises(ConfigurationError):
            generate_virtual_tables(2, 1.5, medium_config)


class TestCalibration:
    def test_hits_midrange_alpha(self):
        config = SyntheticTableConfig(n_prefixes=300, seed=5)
        fraction = calibrate_shared_fraction(0.5, 3, config, tolerance=0.06)
        assert 0.0 <= fraction <= 1.0

    def test_rejects_k_below_two(self):
        with pytest.raises(CalibrationError):
            calibrate_shared_fraction(0.5, 1)

    def test_rejects_alpha_bounds(self):
        with pytest.raises(CalibrationError):
            calibrate_shared_fraction(0.0, 3)
        with pytest.raises(CalibrationError):
            calibrate_shared_fraction(1.0, 3)
