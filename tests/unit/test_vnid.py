"""VNID handling (repro.virt.vnid)."""

import pytest

from repro.errors import ConfigurationError
from repro.virt.vnid import decode_vnid, encode_vnid, vnid_bits


class TestVnidBits:
    @pytest.mark.parametrize("k,bits", [(1, 1), (2, 1), (3, 2), (4, 2), (15, 4), (16, 4), (17, 5)])
    def test_widths(self, k, bits):
        assert vnid_bits(k) == bits

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            vnid_bits(0)


class TestEncodeDecode:
    def test_roundtrip(self):
        for vnid in range(8):
            word = encode_vnid(0xDEADBEEF, vnid, 8)
            assert decode_vnid(word, 8) == (0xDEADBEEF, vnid)

    def test_rejects_out_of_range_vnid(self):
        with pytest.raises(ConfigurationError):
            encode_vnid(0, 8, 8)

    def test_rejects_out_of_range_address(self):
        with pytest.raises(ConfigurationError):
            encode_vnid(1 << 32, 0, 2)

    def test_decode_rejects_foreign_vnid(self):
        word = encode_vnid(0, 7, 8)
        with pytest.raises(ConfigurationError):
            decode_vnid(word, 4)

    def test_decode_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            decode_vnid(-1, 4)
