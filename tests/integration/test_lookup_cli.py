"""repro-lookup CLI (repro.tools.lookup_cli)."""

import os

import pytest

from repro.tools.lookup_cli import main

SAMPLE = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "data", "edge_sample.rib"
)


class TestStats:
    def test_stats_output(self, capsys):
        assert main(["stats", SAMPLE]) == 0
        out = capsys.readouterr().out
        assert "prefixes" in out and "250" in out
        assert "patricia" in out and "leaf-pushed" in out

    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent.rib"]) == 2
        assert "error:" in capsys.readouterr().err


class TestLookup:
    def test_structures_agree(self, capsys):
        assert main(["lookup", SAMPLE, "8.8.8.8", "1.2.3.4"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") >= 2

    def test_routed_address_reports_hop(self, capsys):
        from repro.iplookup.rib import RoutingTable
        from repro.iplookup.prefix import format_address

        table = RoutingTable.from_file(SAMPLE)
        route = table.routes()[0]
        address = format_address(route.prefix.first_address())
        assert main(["lookup", SAMPLE, address]) == 0
        out = capsys.readouterr().out
        assert address in out

    def test_malformed_address(self, capsys):
        assert main(["lookup", SAMPLE, "not-an-ip"]) == 2
        assert "error:" in capsys.readouterr().err


class TestChurn:
    def test_churn_report(self, capsys):
        assert main(["churn", SAMPLE, "--updates", "100"]) == 0
        out = capsys.readouterr().out
        assert "memory writes" in out
        assert "paper assumes 1%" in out

    def test_deterministic_seed(self, capsys):
        main(["churn", SAMPLE, "--updates", "50", "--seed", "4"])
        first = capsys.readouterr().out
        main(["churn", SAMPLE, "--updates", "50", "--seed", "4"])
        second = capsys.readouterr().out
        assert first == second


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
