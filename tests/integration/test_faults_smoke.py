"""Chaos smoke: degraded telemetry must track the analytical model.

The headline acceptance criterion of the fault-injection layer: under
an injected single-engine stall (VS, K = 8, G2), the *live* power
telemetry and the degraded M/D/1 latency attached to the serve trace
must match the analytical model re-evaluated at the degraded activity
vector — within 1% relative.  The live side flows through admission
shedding, the trace's engine loads and the
:class:`~repro.obs.power.PowerTelemetrySampler`; the analytical side
calls the XPA-like reporter and the queueing primitives directly with
the activity the degradation policy *should* produce.  Agreement means
the whole degradation path (shed arithmetic → trace accounting →
power/latency evaluation) is self-consistent, not just plausible.
"""

import numpy as np
import pytest

from repro.core.metrics import lookup_latency_ns
from repro.faults import EngineStall, FaultPlan, FaultWindow
from repro.fpga.power_report import XPowerAnalyzer
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.power import PowerTelemetrySampler
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER
from repro.serve import LookupService
from repro.virt.queueing import md1_wait_ns
from repro.virt.schemes import Scheme

K = 8
STALLED_ENGINE = 2
FREQUENCY_SCALE = 0.25
RHO = 0.5
PER_VN = 1000
RTOL = 0.01


@pytest.fixture(scope="module")
def stall_run():
    """Serve one uniform batch under the stall, with live telemetry on."""
    tables = generate_virtual_tables(
        K, 0.5, SyntheticTableConfig(n_prefixes=150, seed=41)
    )
    plan = FaultPlan(
        (FaultWindow(0, 10, EngineStall(STALLED_ENGINE, FREQUENCY_SCALE)),)
    )
    sampler = PowerTelemetrySampler(Scheme.VS, K, grade=SpeedGrade.G2)
    service = LookupService(
        tables,
        Scheme.VS,
        fault_plan=plan,
        offered_load_fraction=RHO,
        power_sampler=sampler,
    )
    rng = np.random.default_rng(13)
    addresses = rng.integers(0, 1 << 32, size=PER_VN * K, dtype=np.uint64)
    vnids = np.tile(np.arange(K, dtype=np.int64), PER_VN)
    REGISTRY.enable()
    TRACER.enable()
    try:
        _, trace = service.serve(addresses.astype(np.uint32), vnids)
        live_watts = (
            REGISTRY.get("repro_power_total_watts").labels("VS", "G2").value
        )
    finally:
        REGISTRY.disable()
        TRACER.disable()
        REGISTRY.clear()
        TRACER.drain()
    return service, sampler, trace, live_watts


def degraded_loads(service):
    """The engine-share vector the stall should produce, from first
    principles: every engine owns 1/K of the batch, the stalled one
    only its admitted fraction of that share."""
    admit = service.policy.shed_utilization * FREQUENCY_SCALE / RHO
    loads = np.full(K, 1.0 / K)
    loads[STALLED_ENGINE] *= admit
    return loads


class TestHeadlineStall:
    def test_live_power_tracks_analytical_model(self, stall_run):
        service, sampler, trace, live_watts = stall_run
        # the live sampler observes the batch's *measured* duty cycle
        # (a trace measurement, like latency); the analytical side
        # re-derives the engine shares from the shed arithmetic alone
        # and evaluates the model at shares x measured duty
        report = XPowerAnalyzer().report(
            sampler.scenario.placed,
            sampler.scenario.frequency_mhz,
            degraded_loads(service) * trace.mean_duty_cycle(),
        )
        analytical = report.static_w + report.dynamic_w
        assert live_watts == pytest.approx(analytical, rel=RTOL)

    def test_degraded_power_below_nominal(self, stall_run):
        _, sampler, trace, live_watts = stall_run
        report = XPowerAnalyzer().report(
            sampler.scenario.placed,
            sampler.scenario.frequency_mhz,
            np.full(K, trace.mean_duty_cycle() / K),
        )
        assert live_watts < report.static_w + report.dynamic_w

    def test_degraded_latency_tracks_md1_model(self, stall_run):
        service, _, trace, _ = stall_run
        f = service.frequency_mhz
        admit = service.policy.shed_utilization * FREQUENCY_SCALE / RHO
        # admitted-load weights: healthy engines serve PER_VN, the
        # stalled one its admitted share
        weights = np.full(K, float(PER_VN))
        weights[STALLED_ENGINE] = round(admit * PER_VN)
        healthy = lookup_latency_ns(f, service.n_stages) + md1_wait_ns(RHO, f)
        stalled = lookup_latency_ns(
            FREQUENCY_SCALE * f, service.n_stages
        ) + md1_wait_ns(service.policy.shed_utilization, FREQUENCY_SCALE * f)
        per_engine = np.full(K, healthy)
        per_engine[STALLED_ENGINE] = stalled
        analytical = float((per_engine * weights).sum() / weights.sum())
        assert trace.latency.total_ns == pytest.approx(analytical, rel=RTOL)

    def test_shed_confined_to_stalled_vn(self, stall_run):
        service, _, trace, _ = stall_run
        admit = service.policy.shed_utilization * FREQUENCY_SCALE / RHO
        assert trace.vn_shed[STALLED_ENGINE] == PER_VN - round(admit * PER_VN)
        assert sum(trace.vn_shed) == trace.vn_shed[STALLED_ENGINE]

    def test_sampler_folded_the_degraded_batch(self, stall_run):
        _, sampler, trace, live_watts = stall_run
        assert sampler.batches_observed == 1
        assert sampler.packets_observed == trace.n_packets
        assert sampler.running_total_w == pytest.approx(live_watts)
