"""Extended ablations: strides, temperature, heterogeneity (A7–A9)."""

import numpy as np
import pytest

from repro.analysis.sweeps import heterogeneity_sweep, stride_sweep, temperature_sweep
from repro.core.resources import (
    engine_stage_map,
    merged_stage_map,
    merged_stage_map_hetero,
    scheme_resources_hetero,
)
from repro.errors import ConfigurationError
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.synth import SyntheticTableConfig, generate_table
from repro.iplookup.trie import UnibitTrie
from repro.virt.schemes import Scheme


@pytest.fixture(scope="module")
def stats_pair():
    def build(n, seed):
        return leaf_push(UnibitTrie(generate_table(SyntheticTableConfig(n_prefixes=n, seed=seed)))).stats()

    return [build(300, 1), build(600, 2), build(150, 3)]


class TestStrideSweep:
    def test_stages_shrink_with_stride(self):
        r = stride_sweep(strides=(1, 2, 4))
        assert (np.diff(r.get("pipeline_stages")) < 0).all()

    def test_logic_power_tracks_stages(self):
        r = stride_sweep(strides=(1, 2, 4))
        stages = r.get("pipeline_stages")
        logic = r.get("logic_W")
        assert np.allclose(logic / stages, logic[0] / stages[0])

    def test_totals_are_components_sum(self):
        r = stride_sweep(strides=(1, 4))
        assert np.allclose(
            r.get("dynamic_total_W"), r.get("logic_W") + r.get("bram_W")
        )


class TestTemperatureSweep:
    def test_monotone_increasing(self):
        r = temperature_sweep()
        assert (np.diff(r.get("static_W")) > 0).all()

    def test_nominal_point(self):
        r = temperature_sweep(temperatures_c=(50.0,))
        assert r.get("static_W")[0] == pytest.approx(4.5)


class TestHeterogeneousResources:
    def test_identical_tables_match_homogeneous_model(self, stats_pair):
        stats = stats_pair[0]
        hetero = merged_stage_map_hetero([stats] * 4, 0.6, 32)
        homo = merged_stage_map(stats, 4, 0.6, 32)
        # same formula applied per level: totals agree within rounding
        assert hetero.total_bits == pytest.approx(homo.total_bits, rel=0.01)

    def test_alpha_one_keeps_largest_table(self, stats_pair):
        merged = merged_stage_map_hetero(stats_pair, 1.0, 32)
        biggest = max(engine_stage_map(s, 32).total_pointer_bits for s in stats_pair)
        assert merged.total_pointer_bits <= biggest * 1.01 + 64

    def test_alpha_zero_is_sum(self, stats_pair):
        merged = merged_stage_map_hetero(stats_pair, 0.0, 32)
        total_ptr = sum(engine_stage_map(s, 32).total_pointer_bits for s in stats_pair)
        assert merged.total_pointer_bits == pytest.approx(total_ptr, rel=0.01)

    def test_scheme_resources_hetero_structure(self, stats_pair):
        vs = scheme_resources_hetero(Scheme.VS, stats_pair, n_stages=32)
        assert vs.devices == 1
        assert len(vs.engine_maps) == 3
        nv = scheme_resources_hetero(Scheme.NV, stats_pair, n_stages=32)
        assert nv.devices == 3
        vm = scheme_resources_hetero(Scheme.VM, stats_pair, alpha=0.5, n_stages=32)
        assert len(vm.engine_maps) == 1
        assert vm.engine_maps[0].nhi_vector_width == 3

    def test_vm_requires_alpha(self, stats_pair):
        with pytest.raises(ConfigurationError):
            scheme_resources_hetero(Scheme.VM, stats_pair, n_stages=32)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            scheme_resources_hetero(Scheme.VS, [], n_stages=32)


class TestHeterogeneitySweep:
    def test_runs_and_reports(self):
        r = heterogeneity_sweep(k=4, spread_factors=(1.0, 4.0))
        # merging benefits from skew is bounded; separate roughly flat
        sep = r.get("separate_memory_Mb")
        assert abs(sep[1] - sep[0]) / sep[0] < 0.25


class TestStructureComparison:
    def test_rows_and_orderings(self):
        from repro.analysis.sweeps import structure_comparison

        r = structure_comparison()
        nodes = r.get("nodes")
        stages = r.get("pipeline_stages")
        # plain(0), leaf_pushed(1), patricia(2), multibit_s4(3)
        assert nodes[1] > nodes[0] > nodes[2] > nodes[3]
        assert stages[3] < stages[2] <= stages[0]
        assert (r.get("dynamic_W") > 0).all()
