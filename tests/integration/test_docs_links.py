"""Tier-1 gate: every relative link in the markdown docs must resolve.

Runs the same checker as ``make docs-check`` and the CI ``docs`` job
(:mod:`tools.check_links`) over README.md, EXPERIMENTS.md and
``docs/*.md`` — a renamed file or heading breaks this test, not the
reader.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    """Import tools/check_links.py by path (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_links", module)
    spec.loader.exec_module(module)
    return module


def test_docs_relative_links_resolve():
    checker = _load_checker()
    files = checker.collect(["README.md", "EXPERIMENTS.md", "docs"], REPO_ROOT)
    assert len(files) >= 3, "link check walked suspiciously few files"
    problems = []
    for path in files:
        problems.extend(checker.check_file(path, REPO_ROOT))
    assert problems == [], "\n".join(problems)


def test_anchor_slugging_matches_github_convention():
    checker = _load_checker()
    assert checker.github_anchor("Open items") == "open-items"
    assert checker.github_anchor("Power model (Eqs. 2/4/6)") == "power-model-eqs-246"
    assert checker.github_anchor("`repro-metrics` CLI") == "repro-metrics-cli"


def test_checker_flags_broken_link(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "doc.md"
    doc.write_text("# Title\n\nsee [missing](nope.md) and [ok](#title)\n")
    problems = checker.check_file(doc, tmp_path)
    assert len(problems) == 1 and "nope.md" in problems[0]
