"""Public API surface and documentation coverage."""

import inspect

import pytest

import repro


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_example_runs(self):
        from repro import ScenarioConfig, ScenarioEstimator, Scheme, SpeedGrade

        result = ScenarioEstimator().evaluate(
            ScenarioConfig(scheme=Scheme.VS, k=2, grade=SpeedGrade.G2)
        )
        assert result.model.total_w > 0


class TestDocumentation:
    PACKAGES = [
        "repro",
        "repro.core",
        "repro.fpga",
        "repro.iplookup",
        "repro.virt",
        "repro.baselines",
        "repro.analysis",
        "repro.reporting",
        "repro.experiments",
    ]

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_packages_documented(self, package_name):
        import importlib

        module = importlib.import_module(package_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_every_public_callable_documented(self):
        """Doc comments on every public item (deliverable e)."""
        import importlib
        import pkgutil

        undocumented = []
        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != info.name:
                    continue  # re-exports documented at their source
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{info.name}.{name}")
                    if inspect.isclass(obj):
                        for meth_name, meth in vars(obj).items():
                            if meth_name.startswith("_"):
                                continue
                            if inspect.isfunction(meth) and not (meth.__doc__ or "").strip():
                                undocumented.append(f"{info.name}.{name}.{meth_name}")
        assert not undocumented, f"undocumented public items: {undocumented}"
