"""Experiment engine: expansion, caching, provenance, parallel runs."""

import json

import numpy as np
import pytest

from repro.experiments.cache import (
    ResultCache,
    result_from_dict,
    result_to_dict,
    spec_hash,
)
from repro.experiments.engine import (
    ExperimentEngine,
    axis_token,
    expand_spec,
    run_experiment,
)
from repro.experiments.provenance import build_manifest, environment_info
from repro.fpga.speedgrade import SpeedGrade
from repro.reporting.registry import all_specs, get_experiment, get_spec
from repro.reporting.result import ExperimentResult


def make_engine(tmp_path, **kwargs) -> ExperimentEngine:
    return ExperimentEngine(cache=ResultCache(str(tmp_path / "cache")), **kwargs)


class TestExpansion:
    def test_axisless_spec_expands_to_one_run(self):
        requests = expand_spec(get_spec("table3"))
        assert len(requests) == 1
        assert requests[0].variant == ""
        assert requests[0].name == "table3"

    def test_grade_axis_expands_to_two_variants(self):
        requests = expand_spec(get_spec("fig5"))
        assert [r.variant for r in requests] == ["G2", "G1L"]
        assert [r.name for r in requests] == ["fig5_G2", "fig5_G1L"]

    def test_axis_tokens(self):
        assert axis_token(SpeedGrade.G1L) == "G1L"
        assert axis_token(0.8) == "0.8"
        assert axis_token("a b/c") == "a-b-c"

    def test_spec_hashes_distinguish_params(self):
        h1 = spec_hash("fig5", {"grade": SpeedGrade.G2})
        h2 = spec_hash("fig5", {"grade": SpeedGrade.G1L})
        h3 = spec_hash("fig6", {"grade": SpeedGrade.G2})
        assert len({h1, h2, h3}) == 3

    def test_spec_hash_salt_invalidates(self):
        base = spec_hash("fig5", {"grade": SpeedGrade.G2})
        salted = spec_hash("fig5", {"grade": SpeedGrade.G2}, salt="other")
        assert base != salted


class TestSerializationRoundTrip:
    def test_result_round_trips_exactly(self):
        result = get_experiment("table3")()
        clone = result_from_dict(result_to_dict(result))
        assert clone.to_rows() == result.to_rows()
        assert clone.notes == result.notes
        assert clone.title == result.title

    def test_nan_series_round_trip(self):
        result = ExperimentResult(
            experiment_id="nan_demo",
            title="nan",
            x_label="x",
            x_values=np.array([1.0, 2.0]),
        )
        result.add_series("s", [1.0, float("nan")])
        clone = result_from_dict(result_to_dict(result))
        values = clone.get("s")
        assert values[0] == 1.0 and np.isnan(values[1])


class TestGoldenOldVsNew:
    """Engine output is row-identical to direct runner invocation."""

    @pytest.mark.parametrize("experiment_id", ["fig5", "fig6", "fig7", "fig8"])
    def test_graded_figures_match_direct_calls(self, experiment_id):
        runner = get_experiment(experiment_id)
        old = [runner(grade=grade) for grade in (SpeedGrade.G2, SpeedGrade.G1L)]
        new = run_experiment(experiment_id)
        assert len(new) == len(old)
        for old_result, new_result in zip(old, new):
            assert new_result.to_rows() == old_result.to_rows()
            assert new_result.notes == old_result.notes

    def test_table3_matches_direct_call(self):
        old = get_experiment("table3")()
        (new,) = run_experiment("table3")
        assert new.to_rows() == old.to_rows()

    def test_cached_results_row_identical(self, tmp_path):
        engine = make_engine(tmp_path)
        cold = engine.run_ids(["fig5", "table3"])
        warm = engine.run_ids(["fig5", "table3"])
        assert [r.cache_hit for r in cold] == [False, False, False]
        assert [r.cache_hit for r in warm] == [True, True, True]
        for c, w in zip(cold, warm):
            assert w.result.to_rows() == c.result.to_rows()
            assert w.result.notes == c.result.notes


class TestDeterminism:
    def test_same_spec_identical_rows_twice(self):
        """Satellite: explicit seeds make runs bit-reproducible, so
        cache keys are meaningful."""
        for experiment_id in ("fig5", "trie_stats", "ablation_leafpush"):
            first = run_experiment(experiment_id)
            second = run_experiment(experiment_id)
            for a, b in zip(first, second):
                assert a.to_rows() == b.to_rows(), experiment_id
                assert a.notes == b.notes


class TestEngineExecution:
    def test_unknown_id_raises(self, tmp_path):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            make_engine(tmp_path).run_ids(["fig99"])

    def test_records_in_request_order(self, tmp_path):
        records = make_engine(tmp_path).run_ids(["fig8", "table2"])
        assert [r.request.name for r in records] == ["fig8_G2", "fig8_G1L", "table2"]

    def test_parallel_jobs_match_inline(self, tmp_path):
        ids = ["table2", "table3", "fig2", "fig3"]
        inline = ExperimentEngine(cache=None, jobs=1).run_ids(ids)
        parallel = ExperimentEngine(cache=None, jobs=2).run_ids(ids)
        for a, b in zip(inline, parallel):
            assert b.result.to_rows() == a.result.to_rows()
            assert b.status == "ok"

    def test_disabled_cache_never_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), enabled=False)
        engine = ExperimentEngine(cache=cache)
        engine.run_ids(["table2"])
        records = engine.run_ids(["table2"])
        assert records[0].cache_hit is False

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        engine = ExperimentEngine(cache=cache)
        (record,) = engine.run_ids(["table2"])
        path = cache._path(record.spec_hash)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        (again,) = engine.run_ids(["table2"])
        assert again.cache_hit is False
        assert again.status == "ok"


class TestProvenance:
    def test_environment_info_fields(self):
        info = environment_info()
        assert {"python", "platform", "numpy", "repro", "cache_salt"} <= set(info)

    def test_manifest_totals_consistent(self, tmp_path):
        engine = make_engine(tmp_path)
        records = engine.run_ids(["fig8", "table3"])
        manifest = build_manifest(
            records, jobs=1, cache_dir="x", cache_enabled=True, wall_time_s=1.0
        )
        totals = manifest["totals"]
        assert totals["runs"] == 3
        assert totals["cache_hits"] + totals["executed"] == 3
        assert json.dumps(manifest)  # JSON-serializable end to end


class TestFullRegistryViaEngine:
    def test_every_registered_spec_expands(self):
        for spec in all_specs().values():
            requests = expand_spec(spec)
            assert len(requests) == spec.n_runs()
            hashes = {r.spec_hash for r in requests}
            assert len(hashes) == len(requests)
