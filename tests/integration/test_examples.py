"""Every shipped example must run cleanly as a script."""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")


def _example_env():
    """Subprocess env whose PYTHONPATH can resolve ``import repro``.

    The examples run from a temp cwd (they must not depend on the repo
    layout), so the src tree has to come in through PYTHONPATH.
    """
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env

EXAMPLES = [
    "quickstart.py",
    "edge_consolidation.py",
    "low_power_exploration.py",
    "lookup_pipeline_demo.py",
    "bgp_churn.py",
    "capacity_planning.py",
    "consolidation_study.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(tmp_path),  # examples must not depend on the repo cwd
        env=_example_env(),
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must produce output"


def test_paper_figures_example(tmp_path):
    """The heavyweight example: regenerates every figure and exports CSVs."""
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "paper_figures.py"))
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=str(tmp_path),
        env=_example_env(),
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    out_dir = tmp_path / "out" / "figures"
    produced = sorted(p.name for p in out_dir.glob("*.csv"))
    # two grade-named panels per graded figure + singles
    assert "fig5_G2.csv" in produced and "fig5_G1L.csv" in produced
    assert "table3.csv" in produced
