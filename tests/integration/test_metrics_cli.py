"""Integration tests: the ``repro-metrics`` CLI end to end.

The acceptance hook: ``repro-metrics snapshot`` output must be valid
Prometheus text exposition — validated by round-tripping through the
strict bundled parser, not by eyeballing.
"""

import json

import pytest

from repro.obs.export import parse_prometheus_text
from repro.obs.registry import REGISTRY
from repro.obs.tracing import TRACER
from repro.tools.metrics_cli import main


@pytest.fixture(autouse=True)
def clean_obs_state():
    """The CLI enables the process-wide surfaces; reset them per test."""
    yield
    REGISTRY.disable()
    REGISTRY.clear()
    TRACER.disable()
    TRACER.drain()
    TRACER.attach_sink(None)


FAST = ["--k", "2", "--batches", "2", "--batch-size", "64", "--prefixes", "64"]


class TestSnapshot:
    def test_exposition_parses_as_valid_prometheus(self, capsys):
        assert main(["snapshot", *FAST]) == 0
        families = parse_prometheus_text(capsys.readouterr().out)
        assert "repro_serve_batches_total" in families
        assert families["repro_serve_batches_total"]["type"] == "counter"
        (sample,) = families["repro_serve_batches_total"]["samples"]
        assert sample[1] == {"scheme": "VS"} and sample[2] == 2.0
        assert families["repro_serve_batch_latency_seconds"]["type"] == "histogram"
        assert "repro_trie_node_visits_total" in families

    def test_power_flag_adds_power_gauges(self, capsys):
        assert main(["snapshot", "--power", *FAST]) == 0
        families = parse_prometheus_text(capsys.readouterr().out)
        assert "repro_power_total_watts" in families
        vn_samples = families["repro_power_vn_watts"]["samples"]
        total = families["repro_power_total_watts"]["samples"][0][2]
        assert sum(v for _, _, v in vn_samples) == pytest.approx(total, rel=1e-9)

    def test_jsonl_format(self, capsys):
        assert main(["snapshot", "--format", "jsonl", *FAST]) == 0
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        metrics = {r["metric"] for r in records}
        assert "repro_serve_batches_total" in metrics
        assert all("kind" in r and "labels" in r for r in records)

    def test_span_export(self, capsys, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert main(["snapshot", "--spans", str(path), *FAST]) == 0
        spans = [json.loads(line) for line in path.read_text().splitlines()]
        assert sum(s["name"] == "serve.batch" for s in spans) == 2

    def test_vm_scheme_workload(self, capsys):
        assert main(["snapshot", "--scheme", "VM", *FAST]) == 0
        families = parse_prometheus_text(capsys.readouterr().out)
        (sample,) = families["repro_serve_batches_total"]["samples"]
        assert sample[1] == {"scheme": "VM"}


class TestTail:
    def test_streams_spans_then_metrics(self, capsys):
        assert main(["tail", *FAST]) == 0
        out = capsys.readouterr().out
        span_lines = [line for line in out.splitlines() if line.startswith("{")]
        assert len(span_lines) == 2
        assert all(json.loads(line)["name"] == "serve.batch" for line in span_lines)
        text_tail = "\n".join(line for line in out.splitlines() if not line.startswith("{"))
        assert "repro_serve_batches_total" in parse_prometheus_text(text_tail)

    def test_no_metrics_flag(self, capsys):
        assert main(["tail", "--no-metrics", *FAST]) == 0
        out = capsys.readouterr().out
        assert all(line.startswith("{") for line in out.splitlines() if line.strip())


class TestDemo:
    def test_reduced_sweep_prints_live_table(self, capsys):
        assert main(["demo", "--kmax", "2", "--prefixes", "64", "--batch-size", "32"]) == 0
        out = capsys.readouterr().out
        assert "live power telemetry" in out
        for label in ("NV", "VS", "VM(a=80%)"):
            assert label in out
        # 3 schemes x 2 Ks = 6 batches observed
        assert "observed 6 batches" in out


class TestFaults:
    CHAOS = ["faults", "--k", "4", "--batches", "6", "--batch-size", "64",
             "--prefixes", "64", "--n-faults", "4", "--fault-seed", "7"]

    def test_chaos_ledger_and_error_budget(self, capsys):
        assert main(self.CHAOS) == 0
        out = capsys.readouterr().out
        assert "chaos run: scheme VS, K=4, fault seed 7" in out
        # the ledger names at least one active fault window
        assert any(kind in out for kind in ("stall(", "write_storm(", "transient_walk("))
        assert "error budget:" in out
        assert "repro_serve_shed_lookups_total" in out

    def test_same_fault_seed_same_ledger(self, capsys):
        """Chaos runs are replayable: same seeds, same printed ledger."""
        assert main(self.CHAOS) == 0
        first = capsys.readouterr().out
        REGISTRY.clear()
        TRACER.drain()
        assert main(self.CHAOS) == 0
        assert capsys.readouterr().out == first


class TestErrors:
    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
