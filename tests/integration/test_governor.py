"""Operating-point governor (repro.analysis.governor)."""

import pytest

from repro.analysis.governor import pareto_frontier, plan_operating_point
from repro.errors import CapacityError, ConfigurationError
from repro.fpga.speedgrade import SpeedGrade
from repro.virt.schemes import Scheme


class TestPlanOperatingPoint:
    def test_low_demand_prefers_low_power_grade(self):
        # a tiny demand is satisfiable at low frequency; the -1L grade's
        # lower static power should win
        point = plan_operating_point(5.0, k=4, frequency_steps=6)
        assert point.grade is SpeedGrade.G1L
        assert point.capacity_gbps >= 5.0

    def test_high_demand_forces_fast_grade_or_vs(self):
        point = plan_operating_point(800.0, k=12, frequency_steps=4)
        assert point.scheme is Scheme.VS  # only aggregated engines reach it
        assert point.capacity_gbps >= 800.0

    def test_infeasible_demand_raises(self):
        with pytest.raises(CapacityError):
            plan_operating_point(10_000.0, k=4, frequency_steps=3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            plan_operating_point(0.0, k=4)
        with pytest.raises(ConfigurationError):
            plan_operating_point(1.0, k=0)

    def test_chosen_point_is_minimal(self):
        demand = 50.0
        chosen = plan_operating_point(demand, k=4, frequency_steps=5)
        for point in pareto_frontier(k=4, frequency_steps=5):
            if point.capacity_gbps >= demand:
                assert chosen.total_power_w <= point.total_power_w + 1e-9

    def test_describe(self):
        point = plan_operating_point(5.0, k=2, frequency_steps=3)
        text = point.describe()
        assert "MHz" in text and "W" in text


class TestParetoFrontier:
    def test_frontier_is_pareto_optimal(self):
        frontier = pareto_frontier(k=6, frequency_steps=5)
        assert frontier
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominated = (
                    b.capacity_gbps >= a.capacity_gbps
                    and b.total_power_w < a.total_power_w
                )
                assert not dominated

    def test_frontier_sorted_by_capacity(self):
        frontier = pareto_frontier(k=6, frequency_steps=5)
        capacities = [p.capacity_gbps for p in frontier]
        assert capacities == sorted(capacities)

    def test_frontier_power_increases_with_capacity(self):
        frontier = pareto_frontier(k=6, frequency_steps=5)
        powers = [p.total_power_w for p in frontier]
        assert powers == sorted(powers)
