"""Analysis package integration (sweeps, crossover, advisor)."""

import numpy as np
import pytest

from repro.analysis.advisor import recommend_scheme
from repro.analysis.crossover import find_crossover, scheme_crossover_k
from repro.analysis.sweeps import (
    alpha_sweep,
    duty_cycle_sweep,
    frequency_sweep,
    leafpush_ablation,
    table_size_sweep,
    utilization_sweep,
)
from repro.errors import ConfigurationError
from repro.virt.schemes import Scheme


class TestSweeps:
    def test_utilization_invariance(self):
        r = utilization_sweep(k=6, zipf_exponents=(0.0, 1.0, 2.0))
        totals = r.get("model_total_W")
        assert totals.max() - totals.min() < 1e-9
        sustainable = r.get("sustainable_aggregate_Gbps")
        assert (np.diff(sustainable) < 0).all()

    def test_alpha_sweep_monotone(self):
        r = alpha_sweep(ks=(4,), alphas=(0.0, 0.25, 0.5, 0.75, 1.0))
        totals = r.get("total_W K=4")
        memory = r.get("memory_Mb K=4")
        assert (np.diff(totals) <= 1e-12).all()
        assert (np.diff(memory) < 0).all()

    def test_frequency_sweep_tradeoff(self):
        r = frequency_sweep(frequencies_mhz=(100.0, 200.0, 280.0), k=4)
        assert (np.diff(r.get("model_total_W")) > 0).all()
        assert (np.diff(r.get("model_mW_per_Gbps")) < 0).all()

    def test_duty_cycle_gating_gap(self):
        r = duty_cycle_sweep(duty_cycles=(0.1, 0.5, 1.0), k=4)
        gated = r.get("gated_dynamic_W")
        ungated = r.get("ungated_dynamic_W")
        assert (ungated >= gated).all()
        # for K engines at uniform load, each engine idles 1 − 1/K of
        # the time even at full offered duty, so the gap only closes
        # in the single-engine case
        single = duty_cycle_sweep(duty_cycles=(1.0,), k=1)
        assert single.get("ungated_dynamic_W")[0] == pytest.approx(
            single.get("gated_dynamic_W")[0]
        )

    def test_leafpush_tradeoff(self):
        r = leafpush_ablation()
        assert r.get("pushed_nodes")[0] > r.get("plain_nodes")[0]

    def test_table_size_scaling(self):
        r = table_size_sweep(sizes=(500, 2000), k=4)
        assert (np.diff(r.get("separate_memory_Mb")) > 0).all()
        assert (np.diff(r.get("merged_memory_Mb")) > 0).all()


class TestCrossover:
    def test_basic_interpolation(self):
        x = [1.0, 2.0, 3.0]
        assert find_crossover(x, [0.0, 1.0, 3.0], [1.0, 1.0, 1.0]) == pytest.approx(2.0)

    def test_no_crossover(self):
        assert find_crossover([1, 2], [0, 0], [1, 1]) is None

    def test_already_above(self):
        assert find_crossover([1, 2], [2, 3], [1, 1]) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            find_crossover([1], [1, 2], [1, 2])

    def test_vm_worse_than_vs_from_the_start(self):
        k = scheme_crossover_k(
            Scheme.VM, Scheme.VS, alpha_a=0.8, ks=(1, 2, 3, 4), metric="mw_per_gbps"
        )
        assert k is not None and k <= 2.0


class TestAdvisor:
    def test_vs_wins_under_modest_demand(self):
        recs = recommend_scheme(6, alpha=0.5, per_network_gbps=2.0)
        assert recs[0].scheme is Scheme.VS
        assert recs[0].feasible

    def test_vm_infeasible_under_heavy_aggregate(self):
        # aggregate demand far above a single engine's capacity
        recs = recommend_scheme(10, alpha=0.9, per_network_gbps=50.0)
        vm = next(r for r in recs if r.scheme is Scheme.VM)
        assert not vm.feasible
        assert "capacity" in vm.reason

    def test_descriptions_render(self):
        for rec in recommend_scheme(4, alpha=0.5):
            assert rec.describe()

    def test_rejects_bad_demand(self):
        with pytest.raises(ConfigurationError):
            recommend_scheme(4, per_network_gbps=0.0)
