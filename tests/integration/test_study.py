"""Consolidation study (repro.analysis.study)."""

import pytest

from repro.analysis.study import run_study
from repro.errors import ConfigurationError
from repro.iplookup.synth import SyntheticTableConfig
from repro.virt.schemes import Scheme

TABLE = SyntheticTableConfig(n_prefixes=400, seed=31)


@pytest.fixture(scope="module")
def study():
    return run_study([6, 4, 3, 2], duty_cycle=0.5, table=TABLE)


class TestStudy:
    def test_all_schemes_assessed(self, study):
        assert {a.scheme for a in study.assessments} == {Scheme.NV, Scheme.VS, Scheme.VM}

    def test_recommendation_is_feasible_and_cheapest(self, study):
        best = study.recommendation
        assert best.feasible
        for a in study.assessments:
            if a.feasible and a.result is not None:
                assert (
                    best.result.experimental.total_w
                    <= a.result.experimental.total_w + 1e-9
                )

    def test_vs_recommended_for_modest_edge_load(self, study):
        assert study.recommendation.scheme is Scheme.VS

    def test_bounds_contain_measurement(self, study):
        for a in study.assessments:
            if a.result is not None and a.bounds is not None:
                assert a.bounds.contains(a.result.experimental.total_w)

    def test_latency_reported_for_feasible(self, study):
        for a in study.assessments:
            if a.feasible:
                assert a.latency_ns is not None and a.latency_ns > 0

    def test_render_contains_everything(self, study):
        text = study.render()
        assert "recommendation: VS" in text
        assert "bounds_W" in text and "latency_ns" in text

    def test_vm_infeasible_under_heavy_aggregate(self):
        heavy = run_study([40.0] * 6, table=TABLE)
        vm = next(a for a in heavy.assessments if a.scheme is Scheme.VM)
        assert not vm.feasible
        assert "exceeds" in vm.reason

    def test_rejects_bad_demands(self):
        with pytest.raises(ConfigurationError):
            run_study([])
        with pytest.raises(ConfigurationError):
            run_study([1.0, -2.0])
