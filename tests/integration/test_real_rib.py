"""Real-RIB experiments: fixture → engine → α/BRAM/power, end to end."""

import numpy as np

from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine, run_experiment
from repro.experiments.real_rib import FIXTURE_PATH, FIXTURE_SHA, fixture_dataset
from repro.reporting.registry import get_spec


class TestRealRibExperiment:
    def test_runs_end_to_end_from_the_committed_fixture(self):
        """Acceptance: parse → virtual tables → builds → α/BRAM/power rows."""
        assert FIXTURE_PATH.exists()
        results = run_experiment("real_rib")
        assert "edge slice" in results[0].title
        assert "core slice" in results[1].title
        for result in results:
            for series in (
                "memory_Mb",
                "bram_blocks18",
                "fmax_MHz",
                "total_W",
                "mW_per_Gbps",
                "alpha",
            ):
                values = result.get(series)
                assert len(values) == 2, series
            # row 0 separate, row 1 merged: merging must shrink memory
            memory = result.get("memory_Mb")
            assert 0 < memory[1] < memory[0]
            assert result.get("bram_blocks18")[1] < result.get("bram_blocks18")[0]
            alpha = result.get("alpha")[1]
            assert 0.5 < alpha < 7 / 8 + 1e-9  # bounded by (K-1)/K for K=8
            assert any(FIXTURE_SHA in note for note in result.notes)
            assert all(result.get("total_W") > 0)

    def test_real_depth_exceeds_paper_pipeline(self):
        """The fixture carries /32 more-specifics: depth 32 > 28 stages."""
        assert fixture_dataset().v4.max_length() == 32
        (edge, _) = run_experiment("real_rib")
        assert any("depth 32" in note for note in edge.notes)

    def test_fixture_sha_axis_folds_content_into_the_cache_key(self):
        spec = get_spec("real_rib")
        axes = {axis.name: axis.values for axis in spec.axes}
        assert axes["fixture_sha"] == (FIXTURE_SHA,)
        requests = ExperimentEngine(cache=None).expand([spec])
        assert all(dict(r.params)["fixture_sha"] == FIXTURE_SHA for r in requests)

    def test_cold_then_warm_cache(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(str(tmp_path / "cache")))
        cold = engine.run_ids(["real_rib"])
        warm = engine.run_ids(["real_rib"])
        assert [r.cache_hit for r in cold] == [False, False]
        assert [r.cache_hit for r in warm] == [True, True]
        for c, w in zip(cold, warm):
            assert w.result.to_rows() == c.result.to_rows()
            assert w.result.notes == c.result.notes


class TestRealRibChurn:
    def test_live_vs_analytical_agreement_within_one_percent(self):
        """The PR-5 degraded-model bound holds for real-RIB traffic."""
        (result,) = run_experiment("real_rib_churn")
        agreement = result.get("agreement_pct")
        assert float(np.max(agreement)) < 1.0
        live = result.get("live_running_W")
        analytical = result.get("analytical_W")
        assert np.all(live > 0) and np.all(analytical > 0)
        # churn write power comes on top of the serve-only estimate
        assert np.all(result.get("churn_total_W") >= analytical * 0.99)
        assert any("bound: 1%" in note for note in result.notes)

    def test_churn_notes_record_the_replay(self):
        (result,) = run_experiment("real_rib_churn")
        note = next(n for n in result.notes if "announces" in n)
        assert "writes per update" in note
        assert FIXTURE_SHA in note


class TestRealRibV6:
    def test_v6_costs_more_than_v4_at_equal_route_count(self):
        (result,) = run_experiment("real_rib_v6")
        stages = result.get("stages")
        assert stages[1] > stages[0]  # v6 tries are deeper than v4
        power = result.get("merged_total_W")
        assert power[1] > power[0]
        alpha = result.get("alpha")
        assert np.all((alpha > 0) & (alpha < 1))
