"""Markdown rendering and the EXPERIMENTS.md generator."""

import numpy as np

from repro.experiments.report import build_experiments_md, main
from repro.experiments.scalability import max_k, run as scalability_run
from repro.iplookup.synth import SyntheticTableConfig
from repro.reporting.markdown import to_markdown_section, to_markdown_table
from repro.reporting.result import ExperimentResult
from repro.virt.schemes import Scheme


def make_result() -> ExperimentResult:
    r = ExperimentResult(
        experiment_id="demo",
        title="Demo",
        x_label="K",
        x_values=np.array([1.0, 2.0]),
    )
    r.add_series("a", [1.0, 2.0])
    r.add_note("hello")
    return r


class TestMarkdown:
    def test_table_shape(self):
        md = to_markdown_table(make_result())
        lines = md.strip().splitlines()
        assert lines[0] == "| K | a |"
        assert lines[1].startswith("|---")
        assert len(lines) == 4

    def test_section_contains_notes(self):
        md = to_markdown_section(make_result())
        assert "### demo" in md
        assert "* hello" in md


class TestScalabilityExperiment:
    def test_vs_pin_wall_is_paper_k15(self):
        k, gate = max_k(Scheme.VS, SyntheticTableConfig(n_prefixes=400, seed=99))
        assert k == 15
        assert gate == "I/O pins"

    def test_merged_wall_tightens_with_low_alpha(self):
        table = SyntheticTableConfig(n_prefixes=400, seed=99)
        k80, _ = max_k(Scheme.VM, table, alpha=0.8)
        k20, _ = max_k(Scheme.VM, table, alpha=0.2)
        assert k20 < k80

    def test_experiment_renders(self):
        result = scalability_run(sizes=(400,))
        text = result.render()
        assert "max_K VS" in text


class TestExperimentsMdGenerator:
    def test_builds_all_sections(self):
        content = build_experiments_md()
        for section in ("table2", "table3", "fig2", "fig5", "fig7", "fig8", "claims", "scalability"):
            assert f"### {section}" in content
        assert "Known deviations" in content

    def test_main_writes_file(self, tmp_path, capsys):
        path = tmp_path / "EXP.md"
        assert main([str(path)]) == 0
        assert path.read_text().startswith("# EXPERIMENTS")


class TestDeviceChoice:
    def test_lx760_dominates_pin_budget(self):
        from repro.experiments.device_choice import run
        from repro.iplookup.synth import SyntheticTableConfig

        result = run(k=8, table=SyntheticTableConfig(n_prefixes=400, seed=99))
        names = [n for n in result.notes if n.startswith("device")]
        max_k = result.get("max_K")
        lx760_row = next(i for i, n in enumerate(names) if "XC6VLX760" in n)
        assert max_k[lx760_row] == max_k.max() == 15
