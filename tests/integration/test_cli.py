"""CLI runner (repro.experiments.runner) on top of the engine."""

import json
import os

import pytest

from repro.experiments.runner import main, run_experiment


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def run_cli(args, cache_dir):
    """Invoke main with an isolated cache (never the repo's out/.cache)."""
    return main([*args, "--cache-dir", cache_dir])


class TestRunExperiment:
    def test_light_experiment_single_result(self):
        results = run_experiment("table3")
        assert len(results) == 1
        assert results[0].experiment_id == "table3"

    def test_graded_experiment_two_panels(self):
        results = run_experiment("fig5")
        assert len(results) == 2


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table2" in out
        assert "ablation_alpha" in out  # sweeps are registered too

    def test_run_selected(self, capsys, cache_dir):
        assert run_cli(["table2", "table3"], cache_dir) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out

    def test_csv_export(self, tmp_path, capsys, cache_dir):
        out_dir = str(tmp_path / "csv")
        assert run_cli(["table2", "--csv", out_dir], cache_dir) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(out_dir, "table2.csv"))

    def test_graded_csv_named_by_grade(self, tmp_path, capsys, cache_dir):
        """Panels are named from the expanded grade axis, not an index."""
        out_dir = str(tmp_path / "csv")
        assert run_cli(["fig8", "--csv", out_dir], cache_dir) == 0
        capsys.readouterr()
        assert sorted(os.listdir(out_dir)) == ["fig8_G1L.csv", "fig8_G2.csv"]

    def test_ungraded_csv_has_no_suffix(self, tmp_path, capsys, cache_dir):
        out_dir = str(tmp_path / "csv")
        assert run_cli(["fig2", "--csv", out_dir], cache_dir) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(out_dir, "fig2.csv"))

    def test_unknown_experiment_fails(self, capsys, cache_dir):
        assert run_cli(["fig99"], cache_dir) == 1
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_unknown_tag_fails(self, capsys, cache_dir):
        assert run_cli(["--tag", "no-such-tag"], cache_dir) == 1
        err = capsys.readouterr().err
        assert "no-such-tag" in err

    def test_tag_filter_selects_figures(self, capsys, cache_dir):
        assert run_cli(["--tag", "tables"], cache_dir) == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "Table III" in out
        assert "Fig" not in out or "fig5" not in out

    def test_bad_jobs_rejected(self, capsys, cache_dir):
        assert run_cli(["table2", "--jobs", "0"], cache_dir) == 2


class TestCacheBehaviour:
    def test_second_run_served_from_cache(self, capsys, cache_dir):
        assert run_cli(["table3"], cache_dir) == 0
        capsys.readouterr()
        assert run_cli(["table3"], cache_dir) == 0
        captured = capsys.readouterr()
        manifest = json.load(open(os.path.join(cache_dir, "manifest.json")))
        assert manifest["totals"] == {
            "runs": 1,
            "cache_hits": 1,
            "executed": 0,
            "failed": 0,
            "skipped": 0,
            "wall_time_s": manifest["totals"]["wall_time_s"],
        }
        assert "1 cached" in captured.err
        # cached render identical to the fresh one
        assert "Table III" in captured.out

    def test_no_cache_bypasses(self, capsys, cache_dir):
        assert run_cli(["table3"], cache_dir) == 0
        capsys.readouterr()
        assert run_cli(["table3", "--no-cache"], cache_dir) == 0
        manifest = json.load(open(os.path.join(cache_dir, "manifest.json")))
        assert manifest["totals"]["cache_hits"] == 0
        assert manifest["totals"]["executed"] == 1
        assert manifest["cache"]["enabled"] is False

    def test_manifest_records_spec_hash_and_params(self, capsys, cache_dir):
        assert run_cli(["fig8"], cache_dir) == 0
        capsys.readouterr()
        manifest = json.load(open(os.path.join(cache_dir, "manifest.json")))
        runs = {run["variant"]: run for run in manifest["runs"]}
        assert set(runs) == {"G2", "G1L"}
        assert runs["G2"]["params"] == {"grade": "SpeedGrade.G2"}
        assert len(runs["G2"]["spec_hash"]) == 64
        assert runs["G2"]["spec_hash"] != runs["G1L"]["spec_hash"]
        assert manifest["environment"]["python"]

    def test_custom_manifest_path(self, tmp_path, capsys, cache_dir):
        manifest_path = str(tmp_path / "prov" / "m.json")
        assert run_cli(["table2", "--manifest", manifest_path], cache_dir) == 0
        capsys.readouterr()
        assert json.load(open(manifest_path))["totals"]["runs"] == 1


class TestJsonExport:
    def test_json_export_round_trips(self, tmp_path, capsys, cache_dir):
        out_dir = str(tmp_path / "json")
        assert run_cli(["table3", "--json", out_dir], cache_dir) == 0
        capsys.readouterr()
        payload = json.load(open(os.path.join(out_dir, "table3.json")))
        assert payload["result"]["experiment_id"] == "table3"
        assert payload["spec_hash"]
        labels = [s["label"] for s in payload["result"]["series"]]
        assert labels == ["paper", "fitted"]


class TestFailureHandling:
    def test_failure_logs_traceback_and_continues(self, capsys, cache_dir, monkeypatch):
        from repro.reporting import registry as registry_mod

        spec = registry_mod.get_spec("table3")

        def boom():
            raise RuntimeError("synthetic failure")

        broken = registry_mod.ExperimentSpec(
            experiment_id="table3",
            runner=boom,
            axes=spec.axes,
            tags=spec.tags,
            description=spec.description,
        )
        monkeypatch.setitem(registry_mod._REGISTRY, "table3", broken)
        assert run_cli(["table3", "table2"], cache_dir) == 1
        captured = capsys.readouterr()
        assert "Traceback" in captured.err
        assert "synthetic failure" in captured.err
        assert "Table II" in captured.out  # later experiment still ran

    def test_fail_fast_skips_rest(self, capsys, cache_dir, monkeypatch):
        from repro.reporting import registry as registry_mod

        spec = registry_mod.get_spec("table2")

        def boom():
            raise RuntimeError("stop here")

        broken = registry_mod.ExperimentSpec(
            experiment_id="table2",
            runner=boom,
            axes=spec.axes,
            tags=spec.tags,
            description=spec.description,
        )
        monkeypatch.setitem(registry_mod._REGISTRY, "table2", broken)
        assert run_cli(["table2", "table3", "--fail-fast"], cache_dir) == 1
        captured = capsys.readouterr()
        assert "stop here" in captured.err
        assert "skipped" in captured.err
        assert "Table III" not in captured.out


class TestChartFlag:
    def test_chart_output(self, capsys, cache_dir):
        assert run_cli(["fig2", "--chart"], cache_dir) == 0
        out = capsys.readouterr().out
        assert "*=18Kb (-2)" in out


class TestSvgFlag:
    def test_svg_export(self, tmp_path, capsys, cache_dir):
        out_dir = str(tmp_path / "svg")
        assert run_cli(["fig2", "--svg", out_dir], cache_dir) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(out_dir, "fig2.svg"))
