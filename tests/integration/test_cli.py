"""CLI runner (repro.experiments.runner)."""

import os

import pytest

from repro.experiments.runner import main, run_experiment


class TestRunExperiment:
    def test_light_experiment_single_result(self):
        results = run_experiment("table3")
        assert len(results) == 1
        assert results[0].experiment_id == "table3"

    def test_graded_experiment_two_panels(self):
        results = run_experiment("fig5")
        assert len(results) == 2


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table2" in out

    def test_run_selected(self, capsys):
        assert main(["table2", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out

    def test_csv_export(self, tmp_path, capsys):
        out_dir = str(tmp_path / "csv")
        assert main(["table2", "--csv", out_dir]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(out_dir, "table2.csv"))

    def test_graded_csv_gets_suffixes(self, tmp_path, capsys):
        out_dir = str(tmp_path / "csv")
        assert main(["fig2", "--csv", out_dir]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(out_dir, "fig2.csv"))

    def test_unknown_experiment_fails(self, capsys):
        assert main(["fig99"]) == 1
        err = capsys.readouterr().err
        assert "fig99" in err


class TestChartFlag:
    def test_chart_output(self, capsys):
        assert main(["fig2", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "*=18Kb (-2)" in out


class TestSvgFlag:
    def test_svg_export(self, tmp_path, capsys):
        out_dir = str(tmp_path / "svg")
        assert main(["fig2", "--svg", out_dir]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(out_dir, "fig2.svg"))
