"""Integration tests for the lookup perf harness (repro.serve.perf)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.iplookup.trie import UnibitTrie
from repro.serve.perf import (
    GATED_CASES,
    SCHEMA_VERSION,
    bench,
    evaluate_gate,
    gate_main,
    legacy_merged_lookup_batch,
    main,
    run_gate_bench,
    run_lookup_bench,
    time_callable,
)
from repro.virt.merged import merge_tries

EXPECTED_CASES = {
    "serve_NV",
    "serve_VS",
    "serve_VM",
    "merged_lookup_batch",
    "merged_lookup_batch_pre_pr",
}


class TestTiming:
    def test_time_callable_counts_runs(self):
        calls = []
        times = time_callable(lambda: calls.append(1), warmup=2, repeats=3)
        assert len(times) == 3
        assert len(calls) == 5
        assert all(t >= 0 for t in times)

    def test_time_callable_validates(self):
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, warmup=-1)
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, repeats=0)

    def test_bench_record(self):
        record = bench("case", lambda: None, 1000, warmup=0, repeats=3)
        assert record.name == "case"
        assert record.median_s >= 0
        assert record.ops_per_s > 0
        assert set(record.as_dict()) == {
            "pairs",
            "repeats",
            "times_s",
            "median_s",
            "ops_per_s",
            "p50_s",
            "p99_s",
        }
        # percentiles bracket the timed runs; the gate never reads them
        assert min(record.times_s) <= record.p50_s <= record.p99_s
        assert record.p99_s <= max(record.times_s)


class TestLegacyBaseline:
    def test_baseline_matches_vectorized_path(self):
        """The retained pre-PR baseline must stay behaviour-identical —
        otherwise the reported speedup compares different work."""
        tables = generate_virtual_tables(3, 0.5, SyntheticTableConfig(n_prefixes=200, seed=3))
        merged = merge_tries([UnibitTrie(t) for t in tables])
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 32, size=4000, dtype=np.uint64).astype(np.uint32)
        vnids = rng.integers(0, 3, size=4000, dtype=np.int64)
        assert np.array_equal(
            legacy_merged_lookup_batch(merged, addrs, vnids),
            merged.lookup_batch(addrs, vnids),
        )


class TestHarness:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_lookup_bench(pairs=2000, repeats=2, warmup=0, k=3, n_prefixes=200)

    def test_payload_shape(self, payload):
        assert payload["benchmark"] == "lookup"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload["results"]) == EXPECTED_CASES
        assert payload["baseline"]["name"] == "merged_lookup_batch_pre_pr"

    def test_every_case_reports_positive_rate(self, payload):
        for name, record in payload["results"].items():
            assert record["ops_per_s"] > 0, name
            assert record["median_s"] > 0, name
            assert record["pairs"] == 2000

    def test_speedup_is_measured(self, payload):
        baseline = payload["results"]["merged_lookup_batch_pre_pr"]["median_s"]
        vectorized = payload["results"]["merged_lookup_batch"]["median_s"]
        assert payload["speedup_vs_pre_pr"] == pytest.approx(baseline / vectorized)

    def test_rejects_empty_batch(self):
        with pytest.raises(ConfigurationError):
            run_lookup_bench(pairs=0)

    def test_main_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_lookup.json"
        rc = main(["--smoke", "--pairs", "1500", "--prefixes", "150", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert set(payload["results"]) == EXPECTED_CASES
        assert payload["config"]["pairs"] == 1500
        assert payload["config"]["repeats"] <= 2
        stdout = capsys.readouterr().out
        assert "speedup" in stdout


class TestThroughputGate:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_lookup_bench(pairs=2000, repeats=2, warmup=0, k=3, n_prefixes=200)

    def test_gate_bench_measures_exactly_the_serve_cases(self, baseline):
        measured = run_gate_bench(baseline["config"])
        assert set(measured) == set(GATED_CASES)
        assert all(record.ops_per_s > 0 for record in measured.values())

    def test_gate_passes_against_its_own_baseline(self, baseline):
        measured = run_gate_bench(baseline["config"])
        # generous tolerance: the re-run must match the numbers it was
        # compared against up to timer noise
        lines = evaluate_gate(baseline, measured, tolerance=0.9)
        assert len(lines) == len(GATED_CASES)
        assert not any(line.startswith("FAIL") for line in lines)

    def test_gate_fails_on_regression(self, baseline):
        measured = run_gate_bench(baseline["config"])
        inflated = json.loads(json.dumps(baseline))
        for name in GATED_CASES:
            inflated["results"][name]["ops_per_s"] *= 1e6
        lines = evaluate_gate(inflated, measured, tolerance=0.10)
        assert all(line.startswith("FAIL") for line in lines)

    def test_gate_fails_on_missing_case(self, baseline):
        measured = run_gate_bench(baseline["config"])
        pruned = json.loads(json.dumps(baseline))
        del pruned["results"]["serve_VS"]
        lines = evaluate_gate(pruned, measured, tolerance=0.10)
        assert any("not in the committed baseline" in line for line in lines)

    def test_gate_rejects_bad_tolerance(self, baseline):
        with pytest.raises(ConfigurationError):
            evaluate_gate(baseline, {}, tolerance=1.5)

    def test_gate_main_end_to_end(self, tmp_path, baseline, capsys):
        path = tmp_path / "BENCH_lookup.json"
        path.write_text(json.dumps(baseline))
        rc = gate_main(["--baseline", str(path), "--tolerance", "0.9"])
        assert rc == 0
        assert "bench gate passed" in capsys.readouterr().out

    def test_gate_main_fails_on_regression(self, tmp_path, baseline, capsys):
        inflated = json.loads(json.dumps(baseline))
        for name in GATED_CASES:
            inflated["results"][name]["ops_per_s"] *= 1e6
        path = tmp_path / "BENCH_lookup.json"
        path.write_text(json.dumps(inflated))
        rc = gate_main(["--baseline", str(path)])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out
