"""Acceptance tests for the closed-loop DVS governor.

Pins the governor milestone's contract (the *offline* planner of
:mod:`repro.analysis.governor` keeps its own suite in
``test_governor.py``):

* over the deterministic governed load ramp with an injected engine
  stall, the realized energy per served lookup never exceeds the best
  static grade that can actually carry each load point;
* the live power and latency telemetry at the governor's chosen
  voltage match the analytical model re-evaluated at that operating
  point within the established 1% bound;
* the same control loop drives the sharded tier: reconfig broadcasts
  reach every shard worker and the voltage trajectory matches the
  single-process tier batch for batch;
* decisions respect the policy's slew limit and voltage band;
* inside the fault window the governor trades throughput for watts —
  it sheds rather than raising the rail.

Telemetry regressions ride along: the power sampler must observe the
batch's *measured* duty cycle (not the configured offered-load
fraction), and the queue gauges must separate the modeled occupancy at
the configured load from the measured occupancy at the realized load.
"""

import asyncio

import numpy as np
import pytest

from repro.core.metrics import lookup_latency_ns
from repro.experiments.governor import ramp_run
from repro.fpga.dvs import dynamic_scale, frequency_scale, static_scale
from repro.fpga.power_report import XPowerAnalyzer
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.power import PowerTelemetrySampler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.power import DvsGovernor, GovernorPolicy
from repro.serve import LookupService, ShardedLookupService
from repro.virt.queueing import md1_wait_ns
from repro.virt.schemes import Scheme

K = 4
RTOL = 0.01
BATCHES_PER_STEP = 3


@pytest.fixture(scope="module")
def ramp():
    """One deterministic governed ramp, shared across the suite."""
    records, service, governor = ramp_run(k=K, batches_per_step=BATCHES_PER_STEP)
    return records, service, governor


def _tables(seed=23):
    return generate_virtual_tables(
        K, 0.5, SyntheticTableConfig(n_prefixes=150, seed=seed)
    )


def _batches(n, seed=7, size=600):
    rng = np.random.default_rng(seed)
    per_vn = size // K
    out = []
    for _ in range(n):
        addresses = rng.integers(0, 2**32, size=per_vn * K, dtype=np.uint32)
        vnids = np.repeat(np.arange(K, dtype=np.int64), per_vn)
        out.append((addresses, vnids))
    return out


class TestEnergyAcceptance:
    def test_never_worse_than_best_feasible_static(self, ramp):
        records, _, _ = ramp
        steady = records[BATCHES_PER_STEP - 1 :: BATCHES_PER_STEP]
        assert steady, "ramp produced no steady-state records"
        for r in steady:
            feasible = [
                b
                for b in (r.static_nominal_nj, r.static_derate_nj)
                if b is not None
            ]
            assert feasible, f"no feasible static grade at load {r.offered_load}"
            assert r.governed_nj <= min(feasible) * (1.0 + RTOL), r

    def test_nominal_grade_always_feasible(self, ramp):
        records, _, _ = ramp
        assert all(r.static_nominal_nj is not None for r in records)


class TestModelAgreement:
    def test_live_power_matches_analytical_at_chosen_voltage(self, ramp):
        _, service, _ = ramp
        sampler = service.power_sampler
        # the point in force for the next batch (on_batch may move the
        # rail *after* that batch's telemetry is published)
        point = service.operating_point
        assert point.voltage < 1.0  # the ramp must actually have moved it
        _, trace = service.serve(*_batches(1, seed=97)[0])
        sample = sampler.last_sample
        # independent analytical path: the base -2 report at the
        # measured activity, re-scaled by the CMOS laws at the chosen
        # voltage (static x V³, dynamic x V²·fmax)
        base = XPowerAnalyzer().report(
            sampler.scenario.placed,
            sampler.scenario.frequency_mhz,
            np.asarray(trace.engine_loads()) * trace.mean_duty_cycle(),
        )
        v = point.voltage
        analytical = base.static_w * static_scale(v) + base.dynamic_w * (
            dynamic_scale(v) * frequency_scale(v)
        )
        assert sample.total_w == pytest.approx(analytical, rel=RTOL)

    def test_live_latency_matches_analytical_at_chosen_voltage(self, ramp):
        _, service, _ = ramp
        # first-principles re-derivation at the governed point: the
        # scaled clock stretches the pipeline, the load concentrates
        # onto the slower engines
        f = service.base_frequency_mhz * frequency_scale(
            service.operating_point.voltage
        )
        rho = service.offered_load_fraction
        analytical = lookup_latency_ns(f, service.n_stages) + md1_wait_ns(rho, f)
        _, trace = service.serve(*_batches(1, seed=101)[0])
        assert trace.latency.total_ns == pytest.approx(analytical, rel=RTOL)

    def test_voltage_stays_inside_band(self, ramp):
        records, _, governor = ramp
        lo, hi = governor.policy.v_min, governor.policy.v_max
        for r in records:
            assert lo <= r.voltage <= hi

    def test_slew_limit_respected(self, ramp):
        _, _, governor = ramp
        slew = governor.policy.slew_volts
        for d in governor.decisions:
            assert abs(d.voltage_after - d.voltage_before) <= slew + 1e-12


class TestFaultWindow:
    def test_trades_throughput_for_watts(self, ramp):
        records, _, governor = ramp
        window = [r for r in records if r.in_fault_window]
        assert window, "the ramp must cross the fault window"
        # throughput given up: every stalled batch sheds
        assert all(r.served_fraction < 1.0 for r in window)
        # ...and watts follow the measured (shed) duty down instead of
        # the governor raising the rail to chase the lost capacity.
        # Decision j is taken after service batch j+1 (the first batch
        # only calibrates), hence the +1 to line the index spaces up.
        window_batches = {r.batch_index for r in window}
        in_window = [
            d for d in governor.decisions if d.batch_index + 1 in window_batches
        ]
        assert in_window
        for d in in_window:
            assert d.action in ("hold", "lower")
        healthy_same_load = [
            r
            for r in records
            if not r.in_fault_window
            and r.offered_load == window[-1].offered_load
            and r.batch_index < window[0].batch_index
        ]
        assert window[-1].total_w <= max(
            r.total_w for r in healthy_same_load
        ) * (1.0 + RTOL)


class TestShardedTier:
    def test_same_trajectory_and_broadcast_reconfig(self):
        async def drive():
            registry = MetricsRegistry(enabled=True)
            service = ShardedLookupService(
                _tables(),
                Scheme.VS,
                n_shards=2,
                transport="inline",
                offered_load_fraction=0.6,
                power_sampler=PowerTelemetrySampler(Scheme.VS, K),
                registry=registry,
                tracer=Tracer(enabled=False),
            )
            governor = DvsGovernor(policy=GovernorPolicy())
            governor.attach(service)
            async with service:
                for addresses, vnids in _batches(5):
                    await service.serve(addresses, vnids)
                shard_points = [
                    h.runtime.service.operating_point for h in service.shards
                ]
                shard_loads = [
                    h.runtime.service.offered_load_fraction
                    for h in service.shards
                ]
            return service, governor, shard_points, shard_loads

        service, governor, shard_points, shard_loads = asyncio.run(drive())
        # the loop moved the rail
        assert service.operating_point.voltage < 1.0
        # reconfig broadcasts apply at the *next* batch, so after N
        # batches every shard runs the decision made at batch N-2
        expected = governor.decisions[-2].voltage_after
        for point, load in zip(shard_points, shard_loads):
            assert point.voltage == pytest.approx(expected)
            assert load == pytest.approx(
                min(0.6 / point.frequency_scale, 0.97)
            )

    def test_single_and_sharded_loops_agree(self):
        async def sharded():
            service = ShardedLookupService(
                _tables(),
                Scheme.VS,
                n_shards=2,
                transport="inline",
                offered_load_fraction=0.7,
                registry=MetricsRegistry(enabled=True),
                tracer=Tracer(enabled=False),
            )
            governor = DvsGovernor(policy=GovernorPolicy())
            governor.attach(service)
            async with service:
                for addresses, vnids in _batches(6):
                    await service.serve(addresses, vnids)
            return [d.voltage_after for d in governor.decisions]

        single = LookupService(
            _tables(),
            Scheme.VS,
            offered_load_fraction=0.7,
            registry=MetricsRegistry(enabled=True),
            tracer=Tracer(enabled=False),
        )
        governor = DvsGovernor(policy=GovernorPolicy())
        governor.attach(single)
        for addresses, vnids in _batches(6):
            single.serve(addresses, vnids)
        single_trajectory = [d.voltage_after for d in governor.decisions]
        sharded_trajectory = asyncio.run(sharded())
        assert sharded_trajectory == pytest.approx(single_trajectory)


class TestTelemetryRegressions:
    """The satellite bugfixes: measured vs configured telemetry."""

    def test_sampler_observes_measured_duty_not_configured_load(self):
        sampler = PowerTelemetrySampler(Scheme.VS, K)
        service = LookupService(
            _tables(),
            Scheme.VS,
            offered_load_fraction=0.9,
            power_sampler=sampler,
            registry=MetricsRegistry(enabled=True),
            tracer=Tracer(enabled=False),
        )
        _, trace = service.serve(*_batches(1)[0])
        # offered (0.9) and realized (the walk's measured duty) loads
        # differ by construction here; the sampler must have been fed
        # the measured one
        duty = trace.mean_duty_cycle()
        assert duty != pytest.approx(0.9, rel=0.5)
        expected = sampler.sample(trace, duty_cycle=duty).total_w
        wrong = sampler.sample(trace, duty_cycle=0.9).total_w
        assert sampler.running_total_w == pytest.approx(expected)
        assert sampler.running_total_w != pytest.approx(wrong, rel=1e-3)

    def test_queue_gauges_split_modeled_from_measured(self):
        registry = MetricsRegistry(enabled=True)
        rho = 0.8
        service = LookupService(
            _tables(),
            Scheme.VS,
            offered_load_fraction=rho,
            registry=registry,
            tracer=Tracer(enabled=False),
        )
        service.serve(*_batches(1)[0])
        modeled = registry.get("repro_serve_queue_depth")
        measured = registry.get("repro_serve_queue_depth_measured")
        wait = registry.get("repro_serve_queue_wait_ns")
        assert modeled is not None and measured is not None and wait is not None
        expected_model = service.n_engines * rho * rho / (2.0 * (1.0 - rho))
        assert modeled.labels("VS").value == pytest.approx(expected_model)
        # the measured side comes from the Lindley simulation: close
        # to, but never exactly, the analytical value
        assert measured.labels("VS").value > 0.0
        assert measured.labels("VS").value == pytest.approx(
            expected_model, rel=0.25
        )
        assert measured.labels("VS").value != modeled.labels("VS").value
        assert wait.labels("VS").value > 0.0
        assert "Modeled" in modeled.help
        assert "measured" in modeled.help

    def test_measured_queue_tracks_realized_load_under_shedding(self):
        from repro.faults import EngineStall, FaultPlan, FaultWindow

        registry = MetricsRegistry(enabled=True)
        rho = 0.8
        plan = FaultPlan((FaultWindow(0, 10, EngineStall(1, 0.25)),))
        service = LookupService(
            _tables(),
            Scheme.VS,
            offered_load_fraction=rho,
            fault_plan=plan,
            registry=registry,
            tracer=Tracer(enabled=False),
        )
        _, trace = service.serve(*_batches(1)[0])
        assert trace.n_shed > 0
        modeled = registry.get("repro_serve_queue_depth").labels("VS").value
        measured = (
            registry.get("repro_serve_queue_depth_measured").labels("VS").value
        )
        # the realized load is below the configured one, so the
        # measured occupancy must sit clearly under the modeled one
        assert measured < modeled * 0.9
