"""Tier-1 gate: the shipped tree must lint clean under repro-lint.

This is the enforcement point for the repo's unit conventions — if a
bare conversion factor or a float-equality sneaks into ``src/repro``,
this test fails with the full finding list, exactly as
``repro-lint src/repro`` would on the command line.
"""

from pathlib import Path

from repro.staticcheck import lint_paths, load_config, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_lints_clean():
    config = load_config(REPO_ROOT / "pyproject.toml")
    report = lint_paths([REPO_ROOT / "src" / "repro"], config)
    assert report.files_checked > 100, "lint walked suspiciously few files"
    assert report.findings == [], "\n" + render_text(report)


def test_examples_lint_clean():
    """Examples are user-facing; hold them to the same unit rules."""
    config = load_config(REPO_ROOT / "pyproject.toml")
    report = lint_paths([REPO_ROOT / "examples"], config)
    assert report.findings == [], "\n" + render_text(report)
