"""Tier-1 gate: the shipped tree must lint clean under repro-lint.

This is the enforcement point for the repo's conventions — if a bare
conversion factor, a float-equality, a cache-poisoning effect or an
uncatalogued metric sneaks into the tree, this test fails with the
full finding list, exactly as ``repro-lint`` would on the command
line.  It also pins the whole-program pass's behavior on the seeded
violation corpus and its performance budget, and exercises the CI
drift gate against the checked-in ``lint-baseline.json``.
"""

from pathlib import Path

from repro.staticcheck import (
    Baseline,
    LintConfig,
    apply_baseline,
    lint_paths,
    load_config,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: every tree the lint gate covers (mirrors ``make lint`` / CI)
LINTED_TREES = ["src/repro", "examples", "tools", "tests", "benchmarks"]


def lint_repo(config=None):
    config = config or load_config(REPO_ROOT / "pyproject.toml")
    return lint_paths([REPO_ROOT / tree for tree in LINTED_TREES], config)


def test_whole_repo_lints_clean():
    report = lint_repo()
    assert report.files_checked > 200, "lint walked suspiciously few files"
    assert report.findings == [], "\n" + render_text(report)


def test_examples_lint_clean():
    """Examples are user-facing; hold them to the same unit rules."""
    config = load_config(REPO_ROOT / "pyproject.toml")
    report = lint_paths([REPO_ROOT / "examples"], config)
    assert report.findings == [], "\n" + render_text(report)


def test_lint_corpus_is_excluded_from_the_gate():
    """The deliberately broken fixtures must never reach the repo gate."""
    config = load_config(REPO_ROOT / "pyproject.toml")
    corpus = REPO_ROOT / "tests" / "fixtures" / "lintcorpus"
    assert config.is_path_excluded(corpus / "cache_poison.py")


def test_seeded_corpus_trips_every_project_pack():
    """Each corpus file produces exactly the violations it seeds."""
    corpus = REPO_ROOT / "tests" / "fixtures" / "lintcorpus"
    report = lint_paths([corpus], LintConfig(root=REPO_ROOT))
    by_file = {}
    for finding in report.findings:
        by_file.setdefault(Path(finding.path).name, set()).add(finding.rule)
    assert by_file["cache_poison.py"] == {"DET001", "DET002", "DET003", "DET004"}
    assert by_file["frozen_mutation.py"] == {"FRZ001", "FRZ002"}
    assert by_file["undocumented_metric.py"] == {"OBS001", "OBS002", "OBS003", "OBS004"}
    assert by_file["async_blocking.py"] == {"CONC001", "CONC002", "CONC003"}
    assert by_file["async_shard.py"] == {"CONC001", "CONC003"}
    assert by_file["late_binding.py"] == {"CONC004"}


def test_project_pass_fits_the_ci_budget():
    """The whole-program pass must stay interactive (<30 s in CI)."""
    report = lint_repo()
    assert report.duration_s < 30.0, f"lint run took {report.duration_s:.1f}s"
    assert report.project_duration_s < 30.0


def test_drift_gate_against_checked_in_baseline():
    """New findings (and only new findings) fail the drift gate."""
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    report = lint_repo()
    drift = apply_baseline(report, baseline)
    assert drift.new_findings == [], "\n" + render_text(report)
    assert drift.stale == [], f"stale baseline entries: {drift.stale}"
