"""End-to-end integration: tables → tries → routers → power."""

import numpy as np
import pytest

from repro.core.config import ScenarioConfig
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.iplookup.trie import UnibitTrie
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.mapping import map_trie_to_stages
from repro.iplookup.pipeline import LookupPipeline
from repro.virt.merged import merge_tries
from repro.virt.separate import SeparateVirtualRouter
from repro.virt.schemes import Scheme
from repro.virt.traffic import TrafficModel


@pytest.fixture(scope="module")
def consolidation():
    """A full K=4 consolidation scenario with real tables and traffic."""
    config = SyntheticTableConfig(n_prefixes=300, seed=55)
    tables = generate_virtual_tables(4, 0.6, config)
    traffic = TrafficModel.uniform(4)
    addresses, vnids = traffic.generate(800, tables, seed=9)
    return tables, addresses, vnids


class TestSeparateVsMergedEquivalence:
    def test_both_routers_agree_with_each_other_and_oracle(self, consolidation):
        tables, addresses, vnids = consolidation
        separate = SeparateVirtualRouter(tables)
        merged = merge_tries([leaf_push(UnibitTrie(t)) for t in tables])

        sep_results = separate.lookup_batch(addresses, vnids)
        mrg_results = merged.lookup_batch(addresses, vnids)
        oracle = np.array(
            [tables[v].lookup_linear(int(a)) for a, v in zip(addresses, vnids)]
        )
        assert np.array_equal(sep_results, oracle)
        assert np.array_equal(mrg_results, oracle)

    def test_merging_plain_and_pushed_tries_equivalent(self, consolidation):
        tables, addresses, vnids = consolidation
        from_plain = merge_tries([UnibitTrie(t) for t in tables])
        from_pushed = merge_tries([leaf_push(UnibitTrie(t)) for t in tables])
        a = from_plain.lookup_batch(addresses, vnids)
        b = from_pushed.lookup_batch(addresses, vnids)
        assert np.array_equal(a, b)


class TestPipelineIntegration:
    def test_pipeline_over_each_vn_trie(self, consolidation):
        tables, addresses, _ = consolidation
        for table in tables:
            trie = leaf_push(UnibitTrie(table))
            pipeline = LookupPipeline(trie, n_stages=32)
            assert pipeline.verify(addresses[:200])

    def test_activity_feeds_duty_cycle(self, consolidation):
        tables, addresses, _ = consolidation
        trie = leaf_push(UnibitTrie(tables[0]))
        pipeline = LookupPipeline(trie, n_stages=32)
        dense = pipeline.run(addresses[:200])
        sparse = pipeline.run(addresses[:200], inter_arrival_gap=3)
        assert sparse.mean_duty_cycle() < dense.mean_duty_cycle()


class TestMeasuredAlphaFlowsIntoModel:
    def test_measured_alpha_scenario_consistency(self, consolidation):
        """Drive the analytical VM model with the *measured* pairwise α
        of a real merge and check it brackets the real merged memory."""
        tables, _, _ = consolidation
        tries = [leaf_push(UnibitTrie(t)) for t in tables]
        merged = merge_tries(tries)
        alpha = merged.pairwise_alpha

        from repro.core.resources import merged_stage_map

        # Assumption 2 is approximate here (table sizes vary slightly),
        # so allow a generous band: the analytic estimate from the
        # average table must be within 2x of the real merged memory.
        base_stats = tries[0].stats()
        n_stages = max(32, merged.stats().depth)
        analytic = merged_stage_map(base_stats, 4, alpha, n_stages)
        real = map_trie_to_stages(merged.stats(), n_stages, nhi_vector_width=4)
        ratio = analytic.total_bits / real.total_bits
        assert 0.5 <= ratio <= 2.0


class TestScenarioAgainstManualComposition:
    def test_vs_model_equals_manual_eq4(self, estimator):
        """ScenarioEstimator's Eq. 4 evaluation must equal composing
        the model by hand from the same stage maps."""
        from repro.core.power import AnalyticalPowerModel

        config = ScenarioConfig(
            scheme=Scheme.VS, k=3, table=SyntheticTableConfig(n_prefixes=300, seed=55)
        )
        result = estimator.evaluate(config)
        model = AnalyticalPowerModel(config.grade)
        manual = model.power_vs(
            list(result.resources.engine_maps),
            result.frequency_mhz,
            np.full(3, 1 / 3),
        )
        assert result.model.total_w == pytest.approx(manual.total_w)
