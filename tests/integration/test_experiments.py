"""Experiment runners produce well-formed, paper-consistent output."""

import numpy as np
import pytest

from repro.experiments import (
    claims,
    fig2_bram_power,
    fig3_logic_power,
    fig4_memory,
    table2_device,
    table3_bram_model,
    trie_stats,
)
from repro.reporting.registry import all_experiments


class TestFig2:
    def test_four_series(self):
        r = fig2_bram_power.run()
        assert len(r.series) == 4

    def test_linear_at_table3_slopes(self):
        r = fig2_bram_power.run()
        f = r.x_values
        assert np.allclose(r.get("18Kb (-2)"), 13.65 * f / 1000)
        assert np.allclose(r.get("36Kb (-1L)"), 19.70 * f / 1000)

    def test_36k_above_18k_everywhere(self):
        r = fig2_bram_power.run()
        assert (r.get("36Kb (-2)") > r.get("18Kb (-2)")).all()


class TestFig3:
    def test_totals_match_published_lines(self):
        r = fig3_logic_power.run()
        f = r.x_values
        assert np.allclose(r.get("total (-2)"), 5.180 * f / 1000)
        assert np.allclose(r.get("total (-1L)"), 3.937 * f / 1000)

    def test_components_sum(self):
        r = fig3_logic_power.run()
        total = r.get("logic (-2)") + r.get("signal (-2)")
        assert np.allclose(total, r.get("total (-2)"))


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_memory.run()

    def test_pointer_ordering(self, result):
        # separate > merged α=20% > merged α=80% for K > 1
        sep = result.get("pointer separate")
        vm20 = result.get("pointer merged a=20%")
        vm80 = result.get("pointer merged a=80%")
        assert (sep[1:] > vm20[1:]).all()
        assert (vm20[1:] > vm80[1:]).all()

    def test_nhi_merged_exceeds_separate(self, result):
        sep = result.get("NHI separate")
        for label in ("NHI merged a=80%", "NHI merged a=20%"):
            assert (result.get(label)[1:] >= sep[1:]).all()

    def test_k1_all_equal(self, result):
        ptr_values = [result.get(l)[0] for l in result.labels() if l.startswith("pointer")]
        assert max(ptr_values) - min(ptr_values) < 1e-9

    def test_nhi_superlinear_at_low_alpha(self, result):
        nhi = result.get("NHI merged a=20%")
        k = result.x_values
        # superlinear: value at K=15 far exceeds 15 × value at K=1
        assert nhi[-1] > 5 * k[-1] * nhi[0] / k[0] / 5  # sanity
        assert nhi[-1] / nhi[0] > 2 * k[-1] / k[0]


class TestTables:
    def test_table2_matches_paper(self):
        r = table2_device.run()
        assert np.array_equal(r.get("paper"), r.get("catalog"))

    def test_table3_matches_paper(self):
        r = table3_bram_model.run()
        assert np.allclose(r.get("paper"), r.get("fitted"), rtol=1e-9)

    def test_trie_stats_within_tolerance(self):
        r = trie_stats.run()
        paper = r.get("paper")
        synth = r.get("synthetic")
        deviation = np.abs(synth - paper) / paper
        assert deviation[0] == 0.0  # prefixes exact
        assert deviation[1] < 0.20  # trie nodes within 20%
        assert deviation[2] < 0.05  # leaf-pushed nodes within 5%


class TestClaims:
    def test_claim_experiment_runs(self):
        r = claims.run(ks=(1, 3, 5, 8))
        savings = r.get("savings_NV_minus_VS_W")
        assert (np.diff(savings) > 0).all()
        ratio = r.get("power_ratio_1L_over_2")
        assert (np.abs(ratio - 0.7) < 0.06).all()


class TestRegistryCompleteness:
    def test_every_experiment_renders(self):
        # light experiments render end-to-end without error
        for experiment_id in ("fig2", "fig3", "table2", "table3", "trie_stats"):
            runner = all_experiments()[experiment_id]
            text = runner().render()
            assert experiment_id in text
