"""Provisioning agility analysis (repro.analysis.agility)."""

import numpy as np
import pytest

from repro.analysis.agility import provisioning_downtime_ms, run
from repro.errors import ConfigurationError
from repro.iplookup.synth import SyntheticTableConfig
from repro.virt.schemes import Scheme

TABLE = SyntheticTableConfig(n_prefixes=400, seed=99)


class TestDowntime:
    def test_nv_and_vs_interruption_free(self):
        for scheme in (Scheme.NV, Scheme.VS):
            interruption, total = provisioning_downtime_ms(scheme, 4, table=TABLE)
            assert interruption == 0.0
            assert total > 0.0

    def test_vm_stalls_without_shadow(self):
        interruption, total = provisioning_downtime_ms(Scheme.VM, 4, table=TABLE)
        assert interruption == total > 0.0

    def test_vm_shadow_removes_interruption(self):
        interruption, total = provisioning_downtime_ms(
            Scheme.VM, 4, table=TABLE, shadow_bank=True
        )
        assert interruption == 0.0
        assert total > 0.0

    def test_vm_interruption_grows_with_k(self):
        small, _ = provisioning_downtime_ms(Scheme.VM, 2, table=TABLE)
        large, _ = provisioning_downtime_ms(Scheme.VM, 8, table=TABLE)
        assert large > small

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            provisioning_downtime_ms(Scheme.VS, 0, table=TABLE)


class TestExperiment:
    def test_runs_and_orders(self):
        result = run(ks=(2, 4), table=TABLE)
        assert (result.get("VS_interruption_ms") == 0).all()
        assert (result.get("VM_interruption_ms") > 0).all()
        assert (result.get("VM_shadow_interruption_ms") == 0).all()
        assert (np.diff(result.get("VM_interruption_ms")) > 0).all()
