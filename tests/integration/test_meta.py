"""Meta-tests: registry, report and harness stay in sync."""

import os

from repro.experiments.report import _ORDER
from repro.reporting.registry import all_specs, specs_with_tag


class TestRegistrySync:
    def test_report_order_covers_every_non_ablation_experiment(self):
        """Every registered non-ablation experiment must appear in
        EXPERIMENTS.md — a new experiment that isn't reported is a doc
        gap.  Ablations (A1–A11) are documented in DESIGN.md instead."""
        reported = {
            eid for eid, spec in all_specs().items() if "ablation" not in spec.tags
        }
        assert set(_ORDER) == reported

    def test_graded_figures_declare_the_grade_axis(self):
        """The paper's two-panel figures expand from a declared grade
        axis instead of a hard-coded list in the runner."""
        for experiment_id in ("fig5", "fig6", "fig7", "fig8"):
            spec = all_specs()[experiment_id]
            assert [axis.name for axis in spec.axes] == ["grade"]
            assert spec.n_runs() == 2
            assert "graded" in spec.tags

    def test_every_spec_is_tagged(self):
        untagged = [eid for eid, spec in all_specs().items() if not spec.tags]
        assert not untagged, f"specs without tags: {untagged}"

    def test_ablation_sweeps_registered(self):
        assert len(specs_with_tag("ablation")) == 11


class TestBenchCoverage:
    def test_every_paper_artifact_has_a_bench(self):
        """Deliverable (d): a bench target per table and figure."""
        bench_dir = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
        benches = set(os.listdir(bench_dir))
        required = {
            "test_table2_device_specs.py",
            "test_table3_bram_model.py",
            "test_fig2_bram_power.py",
            "test_fig3_logic_power.py",
            "test_fig4_memory.py",
            "test_fig5_total_power.py",
            "test_fig6_virtualized_power.py",
            "test_fig7_model_error.py",
            "test_fig8_power_efficiency.py",
            "test_claims.py",
            "test_trie_stats.py",
        }
        missing = required - benches
        assert not missing, f"paper artifacts without bench targets: {missing}"


class TestDoctests:
    def test_package_docstring_example(self):
        import doctest

        import repro

        failures, _ = doctest.testmod(repro, verbose=False)
        assert failures == 0
