"""Meta-tests: registry, report and harness stay in sync."""

import os

from repro.experiments.report import _GRADED, _ORDER
from repro.experiments.runner import _GRADED as RUNNER_GRADED
from repro.reporting.registry import all_experiments


class TestRegistrySync:
    def test_report_order_covers_every_registered_experiment(self):
        """Every registered experiment must appear in EXPERIMENTS.md —
        a new experiment that isn't reported is a doc gap."""
        assert set(_ORDER) == set(all_experiments())

    def test_graded_lists_agree(self):
        assert set(_GRADED) == set(RUNNER_GRADED)

    def test_graded_experiments_exist(self):
        registry = all_experiments()
        for experiment_id in _GRADED:
            assert experiment_id in registry


class TestBenchCoverage:
    def test_every_paper_artifact_has_a_bench(self):
        """Deliverable (d): a bench target per table and figure."""
        bench_dir = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
        benches = set(os.listdir(bench_dir))
        required = {
            "test_table2_device_specs.py",
            "test_table3_bram_model.py",
            "test_fig2_bram_power.py",
            "test_fig3_logic_power.py",
            "test_fig4_memory.py",
            "test_fig5_total_power.py",
            "test_fig6_virtualized_power.py",
            "test_fig7_model_error.py",
            "test_fig8_power_efficiency.py",
            "test_claims.py",
            "test_trie_stats.py",
        }
        missing = required - benches
        assert not missing, f"paper artifacts without bench targets: {missing}"


class TestDoctests:
    def test_package_docstring_example(self):
        import doctest

        import repro

        failures, _ = doctest.testmod(repro, verbose=False)
        assert failures == 0
