"""Regression tests pinning the paper's qualitative claims.

These tests run the actual figure sweeps (cached in
repro.experiments.common) and assert the *shapes* the paper reports —
who wins, by roughly what factor, and the error bound.  They are the
acceptance criteria of the reproduction; EXPERIMENTS.md cites them.
"""

import numpy as np
import pytest

from repro.experiments.common import PAPER_KS, sweep_grid
from repro.fpga.speedgrade import SpeedGrade


@pytest.fixture(scope="module", params=[SpeedGrade.G2, SpeedGrade.G1L], ids=["g2", "g1l"])
def grade(request):
    return request.param


@pytest.fixture(scope="module")
def grid(grade):
    return sweep_grid(grade, PAPER_KS)


class TestFig5TotalPower:
    def test_nv_grows_linearly_with_k(self, grid):
        nv = np.array([r.experimental.total_w for r in grid["NV"]])
        ks = np.asarray(PAPER_KS, dtype=float)
        slope, intercept = np.polyfit(ks, nv, 1)
        residual = nv - (slope * ks + intercept)
        assert np.abs(residual).max() < 0.05 * nv.mean()
        assert slope > 0

    def test_virtualized_far_below_nv_at_high_k(self, grid):
        nv = grid["NV"][-1].experimental.total_w
        for label in ("VS", "VM(a=80%)", "VM(a=20%)"):
            assert grid[label][-1].experimental.total_w < nv / 5

    def test_savings_grow_with_k(self, grid):
        nv = np.array([r.experimental.total_w for r in grid["NV"]])
        vs = np.array([r.experimental.total_w for r in grid["VS"]])
        savings = nv - vs
        assert (np.diff(savings) > 0).all()


class TestFig6VirtualizedPower:
    def test_vs_experimental_decreases_with_k(self, grid):
        vs = np.array([r.experimental.total_w for r in grid["VS"]])
        assert vs[-1] < vs[0]
        # trend, not strict monotonicity (placement jitter)
        assert np.polyfit(np.asarray(PAPER_KS, float), vs, 1)[0] < 0

    def test_vm_grows_with_k(self, grid):
        for label in ("VM(a=80%)", "VM(a=20%)"):
            vm = np.array([r.experimental.total_w for r in grid[label]])
            assert vm[-1] > vm[0]

    def test_low_alpha_costs_more(self, grid):
        vm80 = np.array([r.experimental.total_w for r in grid["VM(a=80%)"]])
        vm20 = np.array([r.experimental.total_w for r in grid["VM(a=20%)"]])
        assert (vm20[1:] > vm80[1:]).all()


class TestFig7ModelError:
    def test_paper_bound_plus_minus_three_percent(self, grid):
        for label, results in grid.items():
            errors = np.array([r.percentage_error for r in results])
            assert np.abs(errors).max() <= 3.0, f"{label} exceeded the paper bound"

    def test_merged_error_exceeds_nv_vs_error(self, grid):
        nv_vs = max(
            max(abs(r.percentage_error) for r in grid["NV"]),
            max(abs(r.percentage_error) for r in grid["VS"]),
        )
        vm = max(
            max(abs(r.percentage_error) for r in grid["VM(a=80%)"]),
            max(abs(r.percentage_error) for r in grid["VM(a=20%)"]),
        )
        assert vm > nv_vs


class TestFig8Efficiency:
    def test_ordering_at_high_k(self, grid):
        """Paper: VS best, conventional second, merged worst."""
        at_15 = {label: results[-1].experimental_mw_per_gbps for label, results in grid.items()}
        assert at_15["VS"] < at_15["NV"] < at_15["VM(a=80%)"] < at_15["VM(a=20%)"]

    def test_vs_improves_with_k(self, grid):
        vs = np.array([r.experimental_mw_per_gbps for r in grid["VS"]])
        assert (np.diff(vs) < 0).all()

    def test_merged_worsens_with_k(self, grid):
        for label in ("VM(a=80%)", "VM(a=20%)"):
            vm = np.array([r.experimental_mw_per_gbps for r in grid[label]])
            assert vm[-1] > vm[0]

    def test_merged_frequency_collapses(self, grid):
        f = np.array([r.frequency_mhz for r in grid["VM(a=20%)"]])
        assert f[-1] < 0.8 * f[0]


class TestGradeComparison:
    def test_thirty_percent_power_saving(self):
        g2 = sweep_grid(SpeedGrade.G2, PAPER_KS)
        g1l = sweep_grid(SpeedGrade.G1L, PAPER_KS)
        ratios = []
        for label in g2:
            p2 = np.array([r.experimental.total_w for r in g2[label]])
            p1 = np.array([r.experimental.total_w for r in g1l[label]])
            ratios.append(p1 / p2)
        mean_ratio = float(np.mean(ratios))
        assert 0.62 <= mean_ratio <= 0.75  # "30% less power"

    def test_same_efficiency_within_ten_percent(self):
        g2 = sweep_grid(SpeedGrade.G2, PAPER_KS)
        g1l = sweep_grid(SpeedGrade.G1L, PAPER_KS)
        for label in g2:
            e2 = np.array([r.experimental_mw_per_gbps for r in g2[label]])
            e1 = np.array([r.experimental_mw_per_gbps for r in g1l[label]])
            assert np.abs(e1 / e2 - 1.0).max() < 0.10
