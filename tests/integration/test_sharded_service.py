"""Acceptance tests for the sharded async serving tier.

Pins the tier's contract from the sharded-service milestone:

* results through the tier are identical to the synchronous
  :class:`~repro.serve.LookupService` on the same batch (both
  transports, all schemes);
* each shard's *measured* M/D/1 queue agrees with the analytical
  prediction within 15% at ρ ≤ 0.8;
* a saturated shard sheds with :data:`~repro.faults.SHED_RESULT`
  markers and error-budget metrics behind a *bounded* dispatch queue;
* per-shard power attribution sums to the single-process sampler's
  total within 1%;
* the merged multi-shard exposition is consistent: the sum of the
  shard lookup counters equals the client-observed admitted count.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShardError
from repro.faults.injectors import EngineStall
from repro.faults.plan import FaultPlan, FaultWindow
from repro.faults.policy import SHED_RESULT, DegradationPolicy
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serve import LookupService, ShardedLookupService, shard_vn_bounds
from repro.virt.schemes import Scheme

K = 4


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def tables():
    config = SyntheticTableConfig(n_prefixes=300, seed=11)
    return generate_virtual_tables(K, 0.5, config)


def _batch(n, seed=99, k=K):
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 32, size=n, dtype=np.uint64).astype(np.uint32)
    vnids = rng.integers(0, k, size=n, dtype=np.int64)
    return addresses, vnids


def _service(tables, scheme=Scheme.VS, **kwargs):
    kwargs.setdefault("transport", "inline")
    kwargs.setdefault("registry", MetricsRegistry(enabled=True))
    kwargs.setdefault("tracer", Tracer(enabled=False))
    return ShardedLookupService(tables, scheme, **kwargs)


class TestBounds:
    def test_even_split(self):
        assert shard_vn_bounds(4, 2) == (0, 2, 4)

    def test_remainder_to_early_shards(self):
        assert shard_vn_bounds(5, 2) == (0, 3, 5)
        assert shard_vn_bounds(7, 3) == (0, 3, 5, 7)

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            shard_vn_bounds(2, 3)
        with pytest.raises(ConfigurationError):
            shard_vn_bounds(2, 0)


class TestParityWithSyncService:
    @pytest.mark.parametrize("scheme", [Scheme.NV, Scheme.VS, Scheme.VM])
    def test_inline_matches_sync(self, tables, scheme):
        addresses, vnids = _batch(4000)

        async def go():
            async with _service(tables, scheme) as svc:
                return await svc.serve(addresses, vnids)

        results, trace = run(go())
        expected, _ = LookupService(tables, scheme).serve(addresses, vnids)
        assert np.array_equal(results, expected)
        assert trace.n_shed == 0
        assert trace.n_packets == len(addresses)

    def test_process_transport_matches_sync(self, tables):
        addresses, vnids = _batch(4000)

        async def go():
            async with _service(tables, transport="process") as svc:
                first = await svc.serve(addresses, vnids)
                assert await svc.verify(addresses, vnids)
                return first

        results, _ = run(go())
        expected, _ = LookupService(tables, Scheme.VS).serve(addresses, vnids)
        assert np.array_equal(results, expected)

    def test_serve_requires_start(self, tables):
        svc = _service(tables)
        addresses, vnids = _batch(10)
        with pytest.raises(ShardError):
            run(svc.serve(addresses, vnids))


class TestQueueAgreement:
    @pytest.mark.parametrize("rho", [0.5, 0.8])
    def test_measured_queue_within_15pct_of_md1(self, tables, rho):
        """Acceptance: per-shard mean queue delay within 15% of the
        M/D/1 prediction at the configured utilization, ρ ≤ 0.8."""
        addresses, vnids = _batch(100_000)

        async def go():
            async with _service(tables, offered_load_fraction=rho) as svc:
                await svc.serve(addresses, vnids)
                return dict(svc.queue_validations)

        validations = run(go())
        assert set(validations) == {0, 1}
        for shard, validation in validations.items():
            assert validation.utilization == pytest.approx(rho)
            assert validation.relative_error <= 0.15, (
                f"shard {shard}: {validation.relative_error:.1%} "
                f"(observed {validation.observed_wait_ns:.1f}ns vs "
                f"predicted {validation.predicted_wait_ns:.1f}ns)"
            )


class TestSaturationShedding:
    def test_offline_shard_sheds_with_markers_and_metrics(self, tables):
        """Acceptance: a shard driven past saturation answers its VNs
        with SHED_RESULT and error-budget metrics — never an error,
        never an unbounded queue."""
        # stall both of shard 1's engines to zero: its effective
        # capacity is 0, every offered lookup is inadmissible
        plan = FaultPlan(
            (
                FaultWindow(0, 100, EngineStall(2, 0.0)),
                FaultWindow(0, 100, EngineStall(3, 0.0)),
            )
        )
        registry = MetricsRegistry(enabled=True)
        addresses, vnids = _batch(8000)

        async def go():
            async with _service(tables, fault_plan=plan, registry=registry) as svc:
                return await svc.serve(addresses, vnids)

        results, trace = run(go())
        shard1 = vnids >= 2
        assert np.all(results[shard1] == SHED_RESULT)
        assert np.all(results[~shard1] != SHED_RESULT)
        assert trace.n_shed == int(shard1.sum())
        assert trace.vn_shed[0] == 0 and trace.vn_shed[1] == 0
        shed = registry.get("repro_frontend_shed_lookups_total")
        assert shed is not None
        total = sum(child.value for _, child in shed.samples())
        assert total == trace.n_shed

    def test_partial_stall_sheds_only_the_degraded_shard(self, tables):
        plan = FaultPlan((FaultWindow(0, 100, EngineStall(2, 0.0)),))
        addresses, vnids = _batch(8000)

        async def go():
            async with _service(tables, fault_plan=plan) as svc:
                return await svc.serve(addresses, vnids)

        results, trace = run(go())
        # shard 0 (VNs 0-1) is untouched; the stalled engine's VN sheds
        assert not np.any(results[vnids < 2] == SHED_RESULT)
        assert np.all(results[vnids == 2] == SHED_RESULT)
        assert trace.n_shed >= int((vnids == 2).sum())

    def test_dispatch_queue_is_bounded_and_full_queue_sheds(self, tables):
        policy = DegradationPolicy(max_queue_batches=2)
        registry = MetricsRegistry(enabled=True)
        addresses, vnids = _batch(2000)

        async def go():
            async with _service(tables, policy=policy, registry=registry) as svc:
                handle = svc.shards[0]
                assert handle.queue.maxsize == 2
                # wedge shard 0: park its dispatcher and fill the queue
                handle.task.cancel()
                try:
                    await handle.task
                except asyncio.CancelledError:
                    pass
                loop = asyncio.get_running_loop()
                parked = []
                while not handle.queue.full():
                    future = loop.create_future()
                    parked.append(future)
                    handle.queue.put_nowait((("metrics", None), future))
                results, trace = await svc.serve(addresses, vnids)
                # un-wedge so shutdown can drain cleanly
                while not handle.queue.empty():
                    handle.queue.get_nowait()
                    handle.queue.task_done()
                handle.task = asyncio.create_task(svc._dispatch_loop(handle))
                return results, trace

        results, trace = run(go())
        shard0 = vnids < 2
        assert np.all(results[shard0] == SHED_RESULT)
        assert np.all(results[~shard0] != SHED_RESULT)
        backpressure = registry.get("repro_frontend_shed_batches_total")
        assert backpressure is not None
        assert sum(child.value for _, child in backpressure.samples()) == 1


class TestPowerAttribution:
    @pytest.mark.parametrize(
        "scheme,alpha",
        [(Scheme.NV, None), (Scheme.VS, None), (Scheme.VM, 0.8)],
    )
    def test_per_shard_watts_sum_to_single_process_total(self, tables, scheme, alpha):
        """Acceptance: the per-shard power gauges sum to what one
        single-process sampler reports on the same workload, within 1%."""
        from repro.obs.power import PowerTelemetrySampler

        addresses, vnids = _batch(20_000)
        registry = MetricsRegistry(enabled=True)
        sampler = PowerTelemetrySampler(scheme, K, alpha=alpha)

        async def go():
            async with _service(
                tables, scheme, registry=registry, power_sampler=sampler
            ) as svc:
                await svc.serve(addresses, vnids)

        run(go())
        gauge = registry.get("repro_shard_power_watts")
        assert gauge is not None
        shard_sum = sum(child.value for _, child in gauge.samples())

        reference = PowerTelemetrySampler(scheme, K, alpha=alpha)
        ref_registry = MetricsRegistry(enabled=True)
        service = LookupService(
            tables, scheme, power_sampler=reference, registry=ref_registry
        )
        service.serve(addresses, vnids)
        expected = reference.running_total_w
        assert shard_sum == pytest.approx(expected, rel=0.01)


class TestMergedMetricsConsistency:
    def test_shard_counters_sum_to_client_observed_count(self, tables):
        """Acceptance: the merged exposition's shard lookup counters
        account for exactly the lookups the client saw answered."""
        n_batches, n = 5, 4000

        async def go():
            served = 0
            async with _service(tables) as svc:
                for i in range(n_batches):
                    addresses, vnids = _batch(n, seed=100 + i)
                    results, _ = await svc.serve(addresses, vnids)
                    served += int(np.count_nonzero(results != SHED_RESULT))
                merged = await svc.merged_snapshot()
            return served, merged

        served, merged = run(go())
        assert served == n_batches * n  # nominal run sheds nothing
        assert merged.counter_total("repro_serve_lookups_total") == served
        # both shards contributed under their own label
        family = next(
            f for f in merged.families if f.name == "repro_serve_lookups_total"
        )
        label_index = family.label_names.index("shard")
        shards = {s.labels[label_index] for s in family.samples}
        assert shards == {"0", "1"}

    def test_scrape_includes_frontend_registry(self, tables):
        async def go():
            async with _service(tables) as svc:
                addresses, vnids = _batch(1000)
                await svc.serve(addresses, vnids)
                return await svc.scrape()

        snapshots = run(go())
        assert [s.shard for s in snapshots] == ["0", "1", "frontend"]
        frontend = snapshots[-1]
        assert frontend.counter_total("repro_frontend_batches_total") == 1
        assert frontend.counter_total("repro_frontend_lookups_total") == 1000
