"""Corpus: late-binding closures over loop variables.

Seeds CONC004 twice — a retry thunk built with a bare ``lambda`` and a
nested ``def`` — mirroring the serving-layer bug where every deferred
retry re-read the loop variable and replayed the *last* engine's
batch.  The correctly bound variants at the bottom must stay quiet.
"""


def build_retries(engines, batches):
    """Queue one retry thunk per engine."""
    thunks = []
    for vn, engine in enumerate(engines):
        # CONC004: ``engine`` and ``vn`` resolve when the thunk runs,
        # after the loop has finished — every thunk replays the last
        # engine against the last batch
        thunks.append(lambda: engine.walk_batch(batches[vn]))

        def redo():
            return engine.reset()

        thunks.append(redo)
    return thunks


def build_retries_bound(engines, batches):
    """The fix: defaults evaluate at definition time, one per iteration."""
    thunks = []
    for vn, engine in enumerate(engines):
        thunks.append(lambda e=engine, b=batches[vn]: e.walk_batch(b))

        def redo(e=engine):
            return e.reset()

        thunks.append(redo)
    return thunks
