"""Corpus: mutations of a frozen structure, direct and laundered.

``MergedTrie`` shares its name with the real frozen structure, so the
FRZ pack's default class list applies: only ``__init__`` may mutate
``self``, and nothing may mutate an instance after construction.
"""


class MergedTrie:
    """Stand-in with the frozen contract of the real merged trie."""

    def __init__(self, nodes):
        self.nodes = list(nodes)
        self.version = 0

    def grow(self, node):
        """FRZ001: self-write outside the allowed constructor set."""
        self.version = self.version + 1
        self.nodes.append(node)
        return self


def rebuild(nodes):
    """FRZ001: attribute write through a constructed binding."""
    trie = MergedTrie(nodes)
    trie.nodes = sorted(trie.nodes)
    return trie


def _push(trie, node):
    """Helper that mutates its parameter (the FRZ002 launderer)."""
    trie.nodes.append(node)


def insert(trie: MergedTrie, node):
    """FRZ002: forwards a frozen instance into a mutating helper."""
    _push(trie, node)
    return trie
