"""Corpus: sharded-tier concurrency violations (CONC001 + CONC003).

Seeds the two failure modes specific to the asyncio-frontend /
process-shard architecture: an ``async def`` frontend that talks to
its worker pipe and walks the trie *on the event loop* (a pipe
``.recv()`` and the CPU-bound ``.walk_batch()`` each stall every
connection), and a ``Process(target=...)`` worker whose default
argument cannot cross the pickle boundary into the child.
"""

import threading
from multiprocessing import Pipe, Process


def shard_worker(conn, lock=threading.Lock()):
    """CONC003 target: ``Process(target=...)`` with a Lock default."""
    while True:
        request = conn.recv()
        if request is None:
            break
        conn.send(request)


def start_shard():
    """Boots the worker whose defaults cannot pickle."""
    parent, child = Pipe()
    process = Process(target=shard_worker, args=(child,))
    process.start()
    return parent, process


async def serve_batch(conn, engine, addresses):
    """CONC001: pipe recv and trie walk both block the event loop."""
    conn.send(("serve", addresses))
    reply = conn.recv()
    results = engine.walk_batch(addresses)
    return reply, results
