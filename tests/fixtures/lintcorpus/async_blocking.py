"""Corpus: async/process-pool readiness violations.

Seeds one violation per CONC rule: a blocking call inside an
``async def`` (directly and through a helper), an executor-submitted
function that mutates module state, and an unpicklable default on a
submitted function.
"""

import threading
import time
from concurrent.futures import ProcessPoolExecutor

#: module-level shared state the submitted worker mutates
PROGRESS = {"done": 0}


def record(result, lock=threading.Lock()):
    """CONC002 target (global mutation) + CONC003 (Lock default)."""
    PROGRESS["done"] += 1
    return result


def _settle():
    """Blocking helper reached from the async front-end."""
    time.sleep(0.1)


async def drain(queue):
    """CONC001: blocks the event loop, directly and via ``_settle``."""
    time.sleep(0.05)
    _settle()
    return queue


def launch(jobs):
    """Submits the unsafe worker to a process pool."""
    pool = ProcessPoolExecutor()
    return [pool.submit(record, job) for job in jobs]
