"""Corpus: nondeterminism reachable from a registered experiment.

Every helper below injects one cache-poisoning effect into the closure
of the ``@register``-ed ``run`` function; the DET pack must attribute
each site to the ``corpus_cache_poison`` entry point.
"""

import os
import random
import time

from repro.reporting.registry import register


def jitter() -> float:
    """DET001 (unseeded random) + DET002 (wall clock) live here."""
    return random.random() + time.time()


def env_flag() -> bool:
    """DET003: result depends on the process environment."""
    return bool(os.environ.get("REPRO_CORPUS_FAST"))


def tally(items: set) -> float:
    """DET004: float accumulation order follows set iteration order."""
    total = 0.0
    for item in {str(x) for x in items}:
        total += hash(item) * 1e-9
    return total


@register("corpus_cache_poison")
def run(params: dict) -> float:
    """Entry point whose closure reaches all four effect kinds."""
    total = jitter()
    if env_flag():
        total += 1.0
    return total + tally(set(params))
