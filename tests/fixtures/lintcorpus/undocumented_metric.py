"""Corpus: metric/span hygiene violations against the real catalog.

Linted with the repo root as project root, so the OBS pack checks
these sites against the actual docs/OBSERVABILITY.md tables.
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer

REGISTRY = MetricsRegistry()
TRACER = Tracer()

#: OBS001 — name not in the catalog
BOGUS = REGISTRY.counter("repro_corpus_bogus_total", "undocumented", labels=("scheme",))

#: OBS002 — catalogued name, wrong label set
BATCHES = REGISTRY.counter(
    "repro_serve_batches_total", "batches", labels=("scheme", "oops")
)

#: catalogued correctly — must NOT be flagged
LATENCY = REGISTRY.histogram(
    "repro_serve_batch_latency_seconds", "latency", labels=("scheme",)
)


def traced_lookup(addresses):
    """OBS003 (unknown span) and OBS004 (int-literal observe)."""
    with TRACER.span("corpus.unknown_span"):
        LATENCY.observe(5)
    return addresses
