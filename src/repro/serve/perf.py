"""Perf benchmark harness for the batched lookup hot paths.

Times the serving layer's three schemes plus the raw structure-level
batch lookups (warmup, repeated timed runs, median, ops/s) and writes
a machine-readable ``BENCH_lookup.json`` at the repository root — the
artifact that populates the performance trajectory from PR 2 onward
(``make bench`` locally, the ``bench-smoke`` CI job in reduced form).

The harness also *retains the pre-PR baseline*: a faithful
re-implementation of the original ``MergedTrie.lookup_batch`` (child
arrays rebuilt from Python list comprehensions on every call, results
gathered one packet at a time).  Its ops/s lands in the JSON next to
the vectorized path's, so the reported ``speedup_vs_pre_pr`` is
measured, not remembered.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.iplookup.trie import NONE
from repro.serve.service import LookupService
from repro.virt.merged import MergedTrie
from repro.virt.schemes import Scheme

__all__ = [
    "BenchRecord",
    "time_callable",
    "legacy_merged_lookup_batch",
    "run_lookup_bench",
    "run_gate_bench",
    "evaluate_gate",
    "main",
    "gate_main",
]

#: bump when the JSON layout changes incompatibly
SCHEMA_VERSION = 1

#: the cases the regression gate re-measures (the serving hot paths;
#: the slow pre-PR baseline is deliberately excluded — it exists to
#: measure the speedup once, not to burn CI time every push)
GATED_CASES = ("serve_NV", "serve_VS", "serve_VM")


@dataclass(frozen=True)
class BenchRecord:
    """Timing summary of one benchmarked callable.

    ``p50_s``/``p99_s`` are batch-latency percentiles over the timed
    runs (linear interpolation; with few repeats p99 tracks the max).
    They ride along in the JSON for trend analysis — the regression
    gate stays throughput-only (see :func:`evaluate_gate`), because
    tail latency under a handful of repeats is too noisy to fail CI on.
    """

    name: str
    pairs: int
    repeats: int
    times_s: tuple[float, ...]
    median_s: float
    ops_per_s: float
    p50_s: float
    p99_s: float

    def as_dict(self) -> dict:
        """JSON-serializable form of the record (sans its name key)."""
        return {
            "pairs": self.pairs,
            "repeats": self.repeats,
            "times_s": list(self.times_s),
            "median_s": self.median_s,
            "ops_per_s": self.ops_per_s,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
        }


def time_callable(
    fn: Callable[[], object], *, warmup: int = 1, repeats: int = 5
) -> list[float]:
    """Run ``fn`` ``warmup`` untimed times, then ``repeats`` timed ones."""
    if warmup < 0 or repeats < 1:
        raise ConfigurationError("warmup must be >= 0 and repeats >= 1")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def bench(
    name: str,
    fn: Callable[[], object],
    pairs: int,
    *,
    warmup: int,
    repeats: int,
) -> BenchRecord:
    """Benchmark one callable answering ``pairs`` lookups per call."""
    times = time_callable(fn, warmup=warmup, repeats=repeats)
    median = statistics.median(times)
    return BenchRecord(
        name=name,
        pairs=pairs,
        repeats=repeats,
        times_s=tuple(times),
        median_s=median,
        ops_per_s=pairs / median if median > 0 else float("inf"),
        p50_s=float(np.percentile(times, 50)),
        p99_s=float(np.percentile(times, 99)),
    )


def legacy_merged_lookup_batch(
    merged: MergedTrie, addresses: np.ndarray, vnids: np.ndarray
) -> np.ndarray:
    """The pre-PR ``MergedTrie.lookup_batch``, kept as the baseline.

    Rebuilds the child arrays from Python list comprehensions on
    every call and gathers the per-packet results with a scalar
    Python loop — exactly the hot-path behaviour this PR removed.
    Retained so the harness measures the speedup instead of assuming
    it.
    """
    addresses = np.asarray(addresses, dtype=np.uint32)
    vnids = np.asarray(vnids, dtype=np.int64)
    trie = merged.structure
    left = np.asarray([trie.left(n) for n in trie.nodes()], dtype=np.int64)
    right = np.asarray([trie.right(n) for n in trie.nodes()], dtype=np.int64)
    leaf = left == NONE
    node = np.zeros(len(addresses), dtype=np.int64)
    for lvl in range(trie.depth()):
        bits = (addresses >> np.uint32(31 - lvl)) & np.uint32(1)
        at_leaf = leaf[node]
        nxt = np.where(bits == 1, right[node], left[node])
        node = np.where(at_leaf, node, nxt)
        if at_leaf.all():
            break
    result = np.empty(len(addresses), dtype=np.int64)
    vectors = merged._vectors
    for i, n in enumerate(node):
        vector = vectors[n]
        assert vector is not None
        result[i] = vector[vnids[i]]
    return result


def _build_fixture(
    *, pairs: int, k: int, n_prefixes: int, shared_fraction: float, seed: int
) -> tuple[dict[Scheme, LookupService], np.ndarray, np.ndarray]:
    """Build the benchmarked services and batch for one configuration."""
    if pairs < 1:
        raise ConfigurationError("pairs must be >= 1")
    config = SyntheticTableConfig(n_prefixes=n_prefixes, seed=seed)
    tables = generate_virtual_tables(k, shared_fraction, config)
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 32, size=pairs, dtype=np.uint64).astype(np.uint32)
    vnids = rng.integers(0, k, size=pairs, dtype=np.int64)
    services = {
        scheme: LookupService(tables, scheme)
        for scheme in (Scheme.NV, Scheme.VS, Scheme.VM)
    }
    return services, addresses, vnids


def run_lookup_bench(
    *,
    pairs: int = 100_000,
    repeats: int = 5,
    warmup: int = 1,
    k: int = 4,
    n_prefixes: int = 2000,
    shared_fraction: float = 0.5,
    seed: int = 2012,
) -> dict:
    """Run the full lookup benchmark suite; return the JSON payload."""
    services, addresses, vnids = _build_fixture(
        pairs=pairs,
        k=k,
        n_prefixes=n_prefixes,
        shared_fraction=shared_fraction,
        seed=seed,
    )
    merged = services[Scheme.VM].merged()

    records: list[BenchRecord] = []
    for scheme, service in services.items():
        records.append(
            bench(
                f"serve_{scheme.name}",
                lambda s=service: s.serve(addresses, vnids),
                pairs,
                warmup=warmup,
                repeats=repeats,
            )
        )
    records.append(
        bench(
            "merged_lookup_batch",
            lambda: merged.lookup_batch(addresses, vnids),
            pairs,
            warmup=warmup,
            repeats=repeats,
        )
    )
    baseline = bench(
        "merged_lookup_batch_pre_pr",
        lambda: legacy_merged_lookup_batch(merged, addresses, vnids),
        pairs,
        # the baseline is slow by construction; one timed pass per
        # repeat is plenty and warmup would only re-run the slow path
        warmup=min(warmup, 1),
        repeats=max(2, repeats // 2),
    )
    records.append(baseline)

    vectorized = next(r for r in records if r.name == "merged_lookup_batch")
    speedup = (
        baseline.median_s / vectorized.median_s if vectorized.median_s > 0 else float("inf")
    )
    return {
        "benchmark": "lookup",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "pairs": pairs,
            "repeats": repeats,
            "warmup": warmup,
            "k": k,
            "n_prefixes": n_prefixes,
            "shared_fraction": shared_fraction,
            "seed": seed,
        },
        "results": {r.name: r.as_dict() for r in records},
        "baseline": {"name": baseline.name, **baseline.as_dict()},
        "speedup_vs_pre_pr": speedup,
    }


def render_summary(payload: dict) -> str:
    """Human-readable table of the benchmark payload."""
    lines = [
        f"lookup bench: {payload['config']['pairs']} pairs, "
        f"k={payload['config']['k']}, "
        f"{payload['config']['n_prefixes']} prefixes/VN",
        f"{'case':<28} {'median_s':>10} {'p50_s':>10} {'p99_s':>10} {'ops/s':>14}",
    ]
    for name, record in payload["results"].items():
        lines.append(
            f"{name:<28} {record['median_s']:>10.4f} "
            f"{record.get('p50_s', record['median_s']):>10.4f} "
            f"{record.get('p99_s', max(record['times_s'])):>10.4f} "
            f"{record['ops_per_s']:>14,.0f}"
        )
    lines.append(
        f"merged batch speedup vs pre-PR baseline: {payload['speedup_vs_pre_pr']:.1f}x"
    )
    return "\n".join(lines)


def run_gate_bench(config: dict) -> dict[str, BenchRecord]:
    """Re-measure the gated serve cases at a committed baseline's config.

    ``config`` is the ``config`` block of a ``BENCH_lookup.json``; the
    same tables, batch and seed are rebuilt so the only variable is
    the code under test.
    """
    services, addresses, vnids = _build_fixture(
        pairs=int(config["pairs"]),
        k=int(config["k"]),
        n_prefixes=int(config["n_prefixes"]),
        shared_fraction=float(config["shared_fraction"]),
        seed=int(config["seed"]),
    )
    records: dict[str, BenchRecord] = {}
    for scheme, service in services.items():
        record = bench(
            f"serve_{scheme.name}",
            lambda s=service: s.serve(addresses, vnids),
            int(config["pairs"]),
            warmup=int(config["warmup"]),
            repeats=int(config["repeats"]),
        )
        records[record.name] = record
    return records


def evaluate_gate(
    baseline: dict, measured: dict[str, BenchRecord], tolerance: float
) -> list[str]:
    """Compare measured ops/s against a committed baseline payload.

    Returns one diagnostic line per gated case; lines for cases whose
    throughput dropped more than ``tolerance`` below the baseline are
    prefixed ``FAIL``, the rest ``ok``.  A baseline missing a gated
    case fails loudly — a silently shrinking gate is no gate.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ConfigurationError(f"tolerance must be in [0, 1), got {tolerance}")
    lines = []
    for name in GATED_CASES:
        if name not in baseline.get("results", {}):
            lines.append(f"FAIL {name}: not in the committed baseline")
            continue
        committed = float(baseline["results"][name]["ops_per_s"])
        got = measured[name].ops_per_s
        floor = committed * (1.0 - tolerance)
        verdict = "ok  " if got >= floor else "FAIL"
        lines.append(
            f"{verdict} {name}: {got:,.0f} ops/s vs committed {committed:,.0f} "
            f"(floor {floor:,.0f}, {got / committed - 1.0:+.1%}; "
            f"latency p50 {measured[name].p50_s:.4f}s "
            f"p99 {measured[name].p99_s:.4f}s — trend only, not gated)"
        )
    return lines


def gate_main(argv: list[str] | None = None) -> int:
    """CLI entry point: fail when throughput regressed vs the baseline."""
    parser = argparse.ArgumentParser(
        prog="bench_gate",
        description=(
            "Re-run the serve benchmarks at the committed BENCH_lookup.json "
            "baseline's configuration and fail on an ops/s regression"
        ),
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_lookup.json",
        help="committed baseline JSON (default: repo root BENCH_lookup.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional ops/s drop before failing (default: 0.10)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    measured = run_gate_bench(baseline["config"])
    lines = evaluate_gate(baseline, measured, args.tolerance)
    print(f"bench gate vs {args.baseline} (tolerance {args.tolerance:.0%}):")
    for line in lines:
        print(f"  {line}")
    failed = [line for line in lines if line.startswith("FAIL")]
    if failed:
        print(f"bench gate FAILED: {len(failed)} case(s) regressed")
        return 1
    print("bench gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the suite and write ``BENCH_lookup.json``."""
    parser = argparse.ArgumentParser(
        prog="bench_lookup",
        description="Time the batched lookup hot paths and write BENCH_lookup.json",
    )
    parser.add_argument("--pairs", type=int, default=100_000, help="(address, vnid) pairs per call")
    parser.add_argument("--repeats", type=int, default=5, help="timed runs per case")
    parser.add_argument("--warmup", type=int, default=1, help="untimed warmup runs per case")
    parser.add_argument("--k", type=int, default=4, help="virtual networks")
    parser.add_argument("--prefixes", type=int, default=2000, help="prefixes per VN table")
    parser.add_argument("--seed", type=int, default=2012, help="PRNG seed")
    parser.add_argument(
        "--out", default="BENCH_lookup.json", help="output JSON path (default: repo root)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced CI preset: fewer pairs/repeats, smaller tables",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.pairs = min(args.pairs, 20_000)
        args.repeats = min(args.repeats, 2)
        args.prefixes = min(args.prefixes, 800)
    payload = run_lookup_bench(
        pairs=args.pairs,
        repeats=args.repeats,
        warmup=args.warmup,
        k=args.k,
        n_prefixes=args.prefixes,
        seed=args.seed,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(render_summary(payload))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
