"""Batched data-plane serving: one entry point for all three schemes.

The paper's headline metric is power *per throughput* (Fig. 8,
mW/Gbps), so the batch lookup path is the product: every power number
divides by how many ``(address, vnid)`` pairs the data plane can
answer.  :class:`LookupService` is that path's front end.  A batch
enters once and is routed according to the deployment scheme —

* **NV / VS** — through the :class:`~repro.virt.distributor.Distributor`
  to the K per-VN engines (one vectorized trie walk per engine over
  its share of the batch);
* **VM** — through the single merged engine (one vectorized walk of
  the union structure plus a 2-D NHI-vector gather).

Besides the results, every call returns a :class:`ServeTrace`: the
per-stage activity each engine would exhibit (via the closed-form
pipeline accounting of :func:`repro.iplookup.pipeline.trace_from_walk`)
and an M/D/1 queueing-latency estimate (:mod:`repro.virt.queueing`).
Throughput, latency and the power models' duty-cycle inputs therefore
all flow from one ``serve()`` call.

Robustness
----------
Batches are **strictly validated**: wrong dtype, NaN floats,
mis-shaped or truncated arrays and out-of-range vnids raise a typed
:class:`~repro.errors.MalformedBatchError` instead of being silently
coerced by numpy (a NaN cast to ``uint32`` looks like address 0).

A service built with a :class:`~repro.faults.FaultPlan` degrades
gracefully instead of failing: a stalled or storm-throttled engine
that would saturate gets its virtual network's excess load **shed**
(NV/VS bind engine *i* to VN *i*, so rerouting is impossible by
construction — shed lookups answer :data:`~repro.faults.SHED_RESULT`
and are counted in ``repro_serve_shed_lookups_total``), transient
walk failures are retried with backoff per the
:class:`~repro.faults.DegradationPolicy`, and the attached
:class:`ServeTrace` carries the *degraded* per-engine activity and
M/D/1 latency — which is what lets the chaos suite check the live
power telemetry against the analytical model re-evaluated at the
degraded operating point.  See ``docs/ROBUSTNESS.md``.

Observability
-------------
When the process-wide observability layer is enabled
(:func:`repro.obs.enable`), every ``serve()`` call additionally emits
a ``serve.batch`` span (plus one ``fault.<kind>`` child span per
active fault), increments per-scheme batch and per-VN lookup
counters, observes the host wall-clock batch latency into a
fixed-bucket histogram (seconds), sets the modeled M/D/1 queue-depth
and measured memory-duty-cycle gauges, and maintains the error-budget
surface (``repro_serve_errors_total``,
``repro_serve_shed_lookups_total``, ``repro_serve_retries_total``,
``repro_fault_active``) — see ``docs/OBSERVABILITY.md`` for the
catalog.  With observability disabled (the default) the serve path is
byte-for-byte the uninstrumented hot path behind a single flag check,
so there is no measurable overhead.

Units: batch latency is recorded in seconds, queue depth in packets,
duty cycle as a fraction in [0, 1].
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.metrics import throughput_gbps
from repro.errors import (
    ConfigurationError,
    MalformedBatchError,
    TransientEngineError,
)
from repro.faults.injectors import ActiveFaults, FAULT_KINDS
from repro.faults.plan import FaultPlan
from repro.faults.policy import SHED_RESULT, DegradationPolicy
from repro.iplookup.pipeline import PipelineTrace, trace_from_walk
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer
from repro.virt.distributor import Distributor
from repro.virt.merged import MergedTrie, merge_tries
from repro.virt.queueing import LatencyReport, degraded_latency_ns, scheme_latency_ns
from repro.virt.schemes import Scheme

if TYPE_CHECKING:  # the sampler pulls in the experiment stack
    from repro.obs.power import PowerTelemetrySampler

__all__ = ["LookupService", "ServeTrace"]

#: address values are IPv4 words — anything above this cannot be cast
#: to uint32 without silent wraparound
_ADDRESS_MAX = 0xFFFFFFFF


@dataclass(frozen=True)
class ServeTrace:
    """Measurement record of one served batch.

    Attributes
    ----------
    scheme:
        Deployment scheme the batch was served under.
    n_packets:
        Pairs *offered* in the batch (admitted + shed).
    engine_traces:
        One :class:`~repro.iplookup.pipeline.PipelineTrace` per engine
        (K for NV/VS, 1 for VM); empty engines produce empty traces.
        Under active faults these cover only the *admitted* lookups.
    latency:
        M/D/1 pipeline + queueing latency estimate at the offered
        load the service was asked to model; under active faults this
        is the admitted-load-weighted degraded estimate
        (:func:`repro.virt.queueing.degraded_latency_ns`).
    elapsed_s:
        Host wall-clock time spent answering the batch.
    vn_counts:
        *Admitted* lookups per virtual network (length K).  Populated
        only while observability is enabled — the bincount is skipped
        on the uninstrumented fast path — and consumed by the per-VN
        power attribution of
        :class:`repro.obs.power.PowerTelemetrySampler`.
    vn_shed:
        Lookups shed per virtual network by degraded admission
        control (length K under active faults, empty otherwise).
    retries:
        Walk retry attempts performed while answering the batch.
    walk_failures:
        Transient engine-walk failures observed (each either retried
        or, past the retry budget, converted into a shed engine).
    failed_engines:
        Engines whose walks still failed after the retry budget; their
        admitted share was shed.
    fault_labels:
        Labels of the faults active while the batch was served.
    """

    scheme: Scheme
    n_packets: int
    engine_traces: tuple[PipelineTrace, ...]
    latency: LatencyReport
    elapsed_s: float
    vn_counts: tuple[int, ...] = ()
    vn_shed: tuple[int, ...] = ()
    retries: int = 0
    walk_failures: int = 0
    failed_engines: tuple[int, ...] = ()
    fault_labels: tuple[str, ...] = ()

    @property
    def n_engines(self) -> int:
        return len(self.engine_traces)

    @property
    def n_shed(self) -> int:
        """Lookups shed by degraded admission control (0 when nominal)."""
        return int(sum(self.vn_shed))

    @property
    def n_admitted(self) -> int:
        """Lookups actually served (``n_packets - n_shed``)."""
        return self.n_packets - self.n_shed

    @property
    def host_ops_per_s(self) -> float:
        """Measured host-side serving rate (offered pairs per second)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.n_packets / self.elapsed_s

    def stage_accesses(self) -> np.ndarray:
        """Total per-stage memory accesses summed over engines."""
        return np.sum([t.accesses_per_stage for t in self.engine_traces], axis=0)

    def mean_duty_cycle(self) -> float:
        """Packet-weighted mean memory duty cycle across engines.

        This is the duty-cycle input of the clock-gated power models:
        a stage whose memory is idle dissipates no dynamic power.
        """
        weights = np.array([t.n_packets for t in self.engine_traces], dtype=float)
        if weights.sum() == 0:
            return 0.0
        duties = np.array([t.mean_duty_cycle() for t in self.engine_traces])
        return float((duties * weights).sum() / weights.sum())

    def engine_loads(self) -> np.ndarray:
        """Fraction of the *offered* batch each engine served.

        Sums to 1 on a nominal batch; under degraded admission the
        shortfall from 1 is exactly the shed fraction, which is what
        makes the loads usable as the degraded activity vector of the
        power models.
        """
        counts = np.array([t.n_packets for t in self.engine_traces], dtype=float)
        if self.n_packets == 0:
            return np.zeros(self.n_engines)
        return counts / self.n_packets

    def vn_loads(self) -> np.ndarray:
        """Fraction of the offered batch each virtual network contributed.

        Size-0 array when the trace was taken with observability
        disabled (``vn_counts`` untracked); an all-zeros length-K
        array for a tracked but empty batch (``vn_counts`` is
        ``(0,) * K`` there, and no VN contributed anything).
        """
        counts = np.asarray(self.vn_counts, dtype=float)
        if counts.size == 0 or self.n_packets == 0:
            return np.zeros(len(self.vn_counts))
        return counts / self.n_packets


class LookupService:
    """Batched ``(addresses, vnids)`` front end over the three schemes.

    Parameters
    ----------
    tables:
        One routing table per virtual network (K = len(tables)).
    scheme:
        Deployment scheme; NV and VS serve through per-VN engines
        behind a distributor, VM through the single merged engine.
    n_stages:
        Pipeline depth of every engine (one trie level per stage).
    frequency_mhz:
        Modeled engine clock, used for capacity and latency figures.
    offered_load_fraction:
        Offered load, as a fraction of the scheme's aggregate lookup
        capacity, assumed for the M/D/1 queueing estimate attached to
        each :class:`ServeTrace`.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; each ``serve()``
        call consults the plan at the service's running batch index
        and degrades accordingly (admission shedding, walk retries,
        degraded latency/activity accounting).
    policy:
        Degradation knobs (shed utilization bound, retry budget,
        backoff); defaults to :class:`~repro.faults.DegradationPolicy`
        defaults.
    registry:
        Metrics registry instrumented counters publish into; defaults
        to the process-wide registry (metrics fire only while it is
        enabled).
    tracer:
        Tracer for per-batch ``serve.batch`` spans; defaults to the
        process-wide tracer.
    power_sampler:
        Optional :class:`repro.obs.power.PowerTelemetrySampler`; when
        set and observability is enabled, every served batch is also
        folded into its running per-VN power estimate (at the
        service's configured offered-load duty cycle, storm write
        rate included while one is active).
    """

    def __init__(
        self,
        tables: list[RoutingTable],
        scheme: Scheme = Scheme.VM,
        *,
        n_stages: int = 28,
        frequency_mhz: float = 200.0,
        offered_load_fraction: float = 0.5,
        fault_plan: FaultPlan | None = None,
        policy: DegradationPolicy | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        power_sampler: "PowerTelemetrySampler | None" = None,
    ):
        if not tables:
            raise ConfigurationError("need at least one routing table")
        if n_stages < 1:
            raise ConfigurationError(f"n_stages must be >= 1, got {n_stages}")
        if frequency_mhz <= 0:
            raise ConfigurationError("frequency_mhz must be positive")
        if not 0.0 <= offered_load_fraction < 1.0:
            raise ConfigurationError(
                "offered_load_fraction must be in [0, 1) for a stable queue"
            )
        self.k = len(tables)
        self.scheme = scheme
        self.n_stages = n_stages
        self.frequency_mhz = frequency_mhz
        self.offered_load_fraction = offered_load_fraction
        self.fault_plan = fault_plan
        self.policy = policy if policy is not None else DegradationPolicy()
        self._tables = tables
        self._registry = registry if registry is not None else default_registry()
        self._tracer = tracer if tracer is not None else default_tracer()
        self.power_sampler = power_sampler
        self.distributor = Distributor(k=self.k)
        self._tries: list[UnibitTrie] = [UnibitTrie(t) for t in tables]
        self._merged: MergedTrie | None = None
        self._nominal_latency: LatencyReport | None = None
        self.batches_served = 0
        if scheme.shares_engine:
            self._merged = merge_tries(self._tries)
            depth = self._merged.structure.depth()
        else:
            # freeze the per-VN engines now (flat self-looping child
            # arrays, root jump tables) so no served batch ever pays
            # the freeze cost — the same build-time discipline as the
            # merged engine, whose MergedTrie constructor freezes its
            # union structure
            for trie in self._tries:
                trie.freeze()
            depth = max(trie.depth() for trie in self._tries)
        if depth > n_stages:
            raise ConfigurationError(
                f"trie depth {depth} exceeds pipeline depth {n_stages}"
            )

    # -- capacity ---------------------------------------------------------

    @property
    def n_engines(self) -> int:
        """Engines instantiated (K for NV/VS, 1 for VM)."""
        return self.scheme.engines_required(self.k)

    def capacity_gbps(self) -> float:
        """Aggregate lookup capacity at minimum packet size."""
        return throughput_gbps(self.frequency_mhz, self.n_engines)

    def merged(self) -> MergedTrie:
        """The merged engine's union trie (VM scheme only)."""
        if self._merged is None:
            raise ConfigurationError(
                f"scheme {self.scheme} has no merged engine; use Scheme.VM"
            )
        return self._merged

    # -- serving ----------------------------------------------------------

    def _validate_batch(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Strict batch validation: reject malformed input, never coerce.

        Raises :class:`~repro.errors.MalformedBatchError` with a
        ``kind`` of ``shape``, ``truncated``, ``dtype``,
        ``non_finite``, ``address_range`` or ``vnid_range``; a batch
        that passes is safely castable to ``(uint32, int64)``.
        """
        addresses = np.asarray(addresses)
        vnids = np.asarray(vnids)
        if addresses.ndim != 1 or vnids.ndim != 1:
            raise MalformedBatchError(
                "shape",
                f"batches must be one-dimensional, got {addresses.ndim}-D "
                f"addresses and {vnids.ndim}-D vnids",
            )
        if addresses.shape != vnids.shape:
            raise MalformedBatchError(
                "truncated",
                f"{len(addresses)} addresses vs {len(vnids)} vnids",
            )
        # dtype checks are unconditional: an empty float64 batch is
        # just as malformed as a full one, and "strict, never coerce"
        # must not depend on whether there happens to be data — the
        # guard used to sit inside the size check, silently astype'ing
        # empty float batches through
        if addresses.dtype.kind not in "iu":
            if (
                addresses.dtype.kind == "f"
                and addresses.size
                and np.isnan(addresses).any()
            ):
                raise MalformedBatchError("non_finite", "address array contains NaN")
            raise MalformedBatchError(
                "dtype",
                f"addresses must be an integer array, got {addresses.dtype}",
            )
        if vnids.dtype.kind not in "iu":
            raise MalformedBatchError(
                "dtype", f"vnids must be an integer array, got {vnids.dtype}"
            )
        if addresses.size:
            if addresses.dtype != np.uint32 and (
                int(addresses.max()) > _ADDRESS_MAX or int(addresses.min()) < 0
            ):
                raise MalformedBatchError(
                    "address_range",
                    "address outside the 32-bit range would wrap on cast",
                )
            if int(vnids.min()) < 0 or int(vnids.max()) >= self.k:
                raise MalformedBatchError(
                    "vnid_range", f"vnid out of range 0..{self.k - 1}"
                )
        return (
            addresses.astype(np.uint32, copy=False),
            vnids.astype(np.int64, copy=False),
        )

    def _latency_estimate(self) -> LatencyReport:
        """Nominal M/D/1 latency report (cached — its inputs are all
        fixed at construction, so computing it per batch was pure
        hot-path waste; see the note in benchmarks/test_perf_lookup.py)."""
        if self._nominal_latency is None:
            engine_capacity = throughput_gbps(self.frequency_mhz)
            aggregate = self.offered_load_fraction * self.capacity_gbps()
            self._nominal_latency = scheme_latency_ns(
                str(self.scheme),
                aggregate,
                engine_capacity,
                self.n_engines,
                self.frequency_mhz,
                self.n_stages,
            )
        return self._nominal_latency

    # -- degradation ------------------------------------------------------

    def _admission_fractions(self, capacity_scales: np.ndarray) -> np.ndarray:
        """Admitted fraction of each engine's offered load under faults.

        An engine whose remaining capacity would be driven past the
        policy's shed-utilization bound sheds the excess; an offline
        engine (scale 0) sheds everything.
        """
        rho = self.offered_load_fraction
        bound = self.policy.shed_utilization
        admit = np.ones(self.n_engines)
        for i, scale in enumerate(capacity_scales):
            if scale <= 0.0:
                admit[i] = 0.0
            elif rho > 0.0 and rho / scale > bound:
                admit[i] = bound * scale / rho
        return admit

    def _walk_with_retry(
        self,
        engine: int,
        faults: ActiveFaults,
        walk: Callable[[], tuple[np.ndarray, np.ndarray]],
    ) -> tuple[tuple[np.ndarray, np.ndarray] | None, int, int]:
        """Run one engine walk under the retry policy.

        Returns ``(result_or_None, retries, failures)``: the walk's
        ``(depths, results)`` when it eventually succeeded, or ``None``
        when the retry budget was exhausted.
        """
        retries = 0
        failures = 0
        attempt = 0
        while True:
            try:
                faults.check_walk(engine, attempt)
                return walk(), retries, failures
            except TransientEngineError:
                failures += 1
                if attempt >= self.policy.max_retries:
                    return None, retries, failures
                self.policy.wait(attempt)
                retries += 1
                attempt += 1

    def _serve_degraded(
        self,
        addresses: np.ndarray,
        vnids: np.ndarray,
        *,
        track_vns: bool,
        faults: ActiveFaults,
    ) -> tuple[np.ndarray, ServeTrace]:
        """Serve one batch under active faults (inputs already validated).

        Implements the degradation policy: per-VN admission shedding
        against the degraded per-engine capacity, retry-with-backoff
        for transiently failing walks, shedding of engines whose
        retry budget is exhausted, and degraded latency/activity
        accounting in the returned trace.
        """
        start = time.perf_counter()
        n = len(addresses)
        scales = faults.capacity_scales(self.n_engines)
        admit = self._admission_fractions(scales)
        results = np.full(n, SHED_RESULT, dtype=np.int64)
        vn_shed = np.zeros(self.k, dtype=np.int64)
        retries = 0
        walk_failures = 0
        failed_engines: list[int] = []
        empty = np.array([], dtype=np.int64)

        if self._merged is not None:
            kept = self._admit_indices(vnids, admit[0], vn_shed)
            kept_addresses = addresses[kept]
            kept_vnids = vnids[kept]
            # bind the walk inputs as defaults: a plain closure would
            # re-read the enclosing names at call time (late binding),
            # which the retry loop must never depend on
            walked, walk_retries, failures = self._walk_with_retry(
                0,
                faults,
                lambda m=self._merged, a=kept_addresses, v=kept_vnids: m.walk_batch(
                    a, v
                ),
            )
            retries += walk_retries
            walk_failures += failures
            if walked is None:
                failed_engines.append(0)
                np.add.at(vn_shed, kept_vnids, 1)
                traces = (trace_from_walk(empty, empty, self.n_stages),)
            else:
                depths, walk_results = walked
                results[kept] = walk_results
                traces = (trace_from_walk(depths, walk_results, self.n_stages),)
        else:
            # same structure-of-arrays discipline as the nominal path:
            # admission sheds the *tail* of each engine's contiguous
            # slice (arrival order within a VN is sort-stable), so the
            # kept lookups stay a prefix of the slice and scatter back
            # through the same permutation.
            part = self.distributor.partition(vnids)
            sorted_addresses = part.gather(addresses)
            engine_traces = []
            for vn in range(self.k):
                start_vn, stop_vn = part.engine_slice(vn).start, part.engine_slice(vn).stop
                offered = stop_vn - start_vn
                keep = self._admit_count(offered, admit[vn], vn, vn_shed)
                kept_addresses = sorted_addresses[start_vn : start_vn + keep]
                # default-arg binding: the thunk must capture *this*
                # iteration's engine and slice, not the loop variables
                walked, walk_retries, failures = self._walk_with_retry(
                    vn,
                    faults,
                    lambda t=self._tries[vn], a=kept_addresses: t.walk_batch(a),
                )
                retries += walk_retries
                walk_failures += failures
                if walked is None:
                    failed_engines.append(vn)
                    vn_shed[vn] += keep
                    engine_traces.append(trace_from_walk(empty, empty, self.n_stages))
                    continue
                depths, engine_results = walked
                results[part.order[start_vn : start_vn + keep]] = engine_results
                engine_traces.append(
                    trace_from_walk(depths, engine_results, self.n_stages)
                )
            traces = tuple(engine_traces)

        admitted_counts = np.array([t.n_packets for t in traces], dtype=np.int64)
        rho = self.offered_load_fraction
        utilizations = np.where(
            scales > 0.0,
            np.minimum(np.divide(rho, scales, where=scales > 0.0, out=np.ones_like(scales)),
                       self.policy.shed_utilization),
            0.0,
        )
        latency = degraded_latency_ns(
            str(self.scheme),
            utilizations,
            scales * self.frequency_mhz,
            admitted_counts,
            self.n_stages,
        )
        elapsed = time.perf_counter() - start
        vn_counts: tuple[int, ...] = ()
        if track_vns:
            offered = np.bincount(vnids, minlength=self.k)
            vn_counts = tuple(int(c) for c in offered - vn_shed)
        trace = ServeTrace(
            scheme=self.scheme,
            n_packets=n,
            engine_traces=traces,
            latency=latency,
            elapsed_s=elapsed,
            vn_counts=vn_counts,
            vn_shed=tuple(int(c) for c in vn_shed),
            retries=retries,
            walk_failures=walk_failures,
            failed_engines=tuple(failed_engines),
            fault_labels=faults.labels(),
        )
        return results, trace

    def _admit_count(
        self, offered: int, admit: float, vn: int, vn_shed: np.ndarray
    ) -> int:
        """Admit the head of one VN's slice, shed (and count) the tail.

        Slice-based twin of the old index-list ``_admit_prefix``: the
        kept lookups are the first ``keep`` of the engine's contiguous
        slice, which (by sort stability) are exactly the VN's earliest
        arrivals — the set the index-list path admitted.
        """
        if admit >= 1.0:
            return offered
        keep = int(admit * offered + 0.5)
        vn_shed[vn] += offered - keep
        return keep

    def _admit_indices(
        self, vnids: np.ndarray, admit: float, vn_shed: np.ndarray
    ) -> np.ndarray:
        """Per-VN head admission for the shared engine (VM).

        The merged engine's degradation hits every VN, so each VN
        keeps the same admitted fraction of its own arrivals.
        """
        if admit >= 1.0:
            return np.arange(len(vnids), dtype=np.int64)
        mask = np.ones(len(vnids), dtype=bool)
        for vn in range(self.k):
            indices = np.flatnonzero(vnids == vn)
            keep = int(admit * len(indices) + 0.5)
            if keep < len(indices):
                mask[indices[keep:]] = False
                vn_shed[vn] += len(indices) - keep
        return np.flatnonzero(mask)

    def _serve_inner(
        self,
        addresses: np.ndarray,
        vnids: np.ndarray,
        *,
        track_vns: bool,
        faults: ActiveFaults | None = None,
    ) -> tuple[np.ndarray, ServeTrace]:
        """The uninstrumented serve path (inputs already validated)."""
        if faults:
            return self._serve_degraded(
                addresses, vnids, track_vns=track_vns, faults=faults
            )
        start = time.perf_counter()
        if self._merged is not None:
            depths, results = self._merged.walk_batch(addresses, vnids)
            traces = (trace_from_walk(depths, results, self.n_stages),)
        else:
            # structure-of-arrays batch path: one stable sort by VNID,
            # each frozen engine walks its contiguous slice, and one
            # scatter through the inverse permutation restores arrival
            # order — no per-engine fancy indexing anywhere.
            part = self.distributor.partition(vnids)
            sorted_addresses = part.gather(addresses)
            sorted_results = np.empty(len(addresses), dtype=np.int64)
            engine_traces = []
            for vn in range(self.k):
                sl = part.engine_slice(vn)
                depths, engine_results = self._tries[vn].walk_batch(
                    sorted_addresses[sl]
                )
                sorted_results[sl] = engine_results
                engine_traces.append(
                    trace_from_walk(depths, engine_results, self.n_stages)
                )
            results = part.scatter(sorted_results)
            traces = tuple(engine_traces)
        elapsed = time.perf_counter() - start
        vn_counts: tuple[int, ...] = ()
        if track_vns:
            vn_counts = tuple(
                int(c) for c in np.bincount(vnids, minlength=self.k)
            )
        trace = ServeTrace(
            scheme=self.scheme,
            n_packets=len(addresses),
            engine_traces=traces,
            latency=self._latency_estimate(),
            elapsed_s=elapsed,
            vn_counts=vn_counts,
        )
        return results, trace

    def _record_batch(self, trace: ServeTrace) -> None:
        """Publish one served batch into the metrics registry."""
        registry = self._registry
        scheme = self.scheme.name
        registry.counter(
            "repro_serve_batches_total", "Batches served", labels=("scheme",)
        ).labels(scheme).inc()
        lookups = registry.counter(
            "repro_serve_lookups_total",
            "Lookups served per virtual network",
            labels=("scheme", "vn"),
        )
        for vn, count in enumerate(trace.vn_counts):
            if count:
                lookups.labels(scheme, vn).inc(count)
        registry.histogram(
            "repro_serve_batch_latency_seconds",
            "Host wall-clock time answering one batch",
            labels=("scheme",),
        ).labels(scheme).observe(trace.elapsed_s)
        # modeled M/D/1 mean queue occupancy per engine, summed over
        # engines: Lq = rho^2 / (2 (1 - rho)) at the configured
        # offered-load fraction
        rho = self.offered_load_fraction
        queue_depth = self.n_engines * rho * rho / (2.0 * (1.0 - rho))
        registry.gauge(
            "repro_serve_queue_depth",
            "Modeled M/D/1 mean queue occupancy, packets (all engines)",
            labels=("scheme",),
        ).labels(scheme).set(queue_depth)
        registry.gauge(
            "repro_serve_duty_cycle",
            "Packet-weighted mean memory duty cycle of the last batch",
            labels=("scheme",),
        ).labels(scheme).set(trace.mean_duty_cycle())

    def _record_fault_state(
        self, trace: ServeTrace, faults: ActiveFaults | None
    ) -> None:
        """Publish the error-budget metrics for one (possibly degraded) batch.

        Only called for services with a fault plan, so the gauge family
        appears exactly when faults are in play — and decays back to 0
        the batch after a window closes.
        """
        registry = self._registry
        scheme = self.scheme.name
        active = registry.gauge(
            "repro_fault_active",
            "Injected faults currently active, by kind (0 = nominal)",
            labels=("kind",),
        )
        counts = faults.kind_counts() if faults else dict.fromkeys(FAULT_KINDS, 0)
        for kind, count in counts.items():
            active.labels(kind).set(count)
        if trace.n_shed:
            shed = registry.counter(
                "repro_serve_shed_lookups_total",
                "Lookups shed by degraded admission control",
                labels=("scheme", "vn"),
            )
            for vn, count in enumerate(trace.vn_shed):
                if count:
                    shed.labels(scheme, vn).inc(count)
        if trace.retries:
            registry.counter(
                "repro_serve_retries_total",
                "Engine-walk retries performed",
                labels=("scheme",),
            ).labels(scheme).inc(trace.retries)
        errors = registry.counter(
            "repro_serve_errors_total",
            "Serve-path errors by kind",
            labels=("kind",),
        )
        if trace.walk_failures:
            errors.labels("transient_walk").inc(trace.walk_failures)
        if trace.failed_engines:
            errors.labels("walk_failed").inc(len(trace.failed_engines))

    def _count_malformed(self, exc: MalformedBatchError) -> None:
        """Fold one strict-validation rejection into the error budget.

        Deliberately the *only* metric a rejected batch touches: the
        batch/lookup counters and the latency histogram stay silent,
        so a malformed batch can never masquerade as served traffic.
        """
        if self._registry.enabled:
            self._registry.counter(
                "repro_serve_errors_total",
                "Serve-path errors by kind",
                labels=("kind",),
            ).labels(exc.kind).inc()

    def serve(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> tuple[np.ndarray, ServeTrace]:
        """Answer a batch of ``(address, vnid)`` lookups.

        Returns the per-pair next hops (arrival order preserved) and
        the :class:`ServeTrace` measuring the batch.  Malformed input
        raises :class:`~repro.errors.MalformedBatchError` (counted in
        ``repro_serve_errors_total`` while metrics are enabled, with
        no other metric touched).  Under a fault plan, shed lookups
        answer :data:`~repro.faults.SHED_RESULT`.  While observability
        is enabled the call also emits a ``serve.batch`` span (with
        ``fault.<kind>`` children for active faults), updates the
        serve counters/histograms/gauges, and feeds the attached power
        sampler (see module docstring).
        """
        try:
            addresses, vnids = self._validate_batch(addresses, vnids)
        except MalformedBatchError as exc:
            self._count_malformed(exc)
            raise
        faults: ActiveFaults | None = None
        if self.fault_plan is not None:
            active = self.fault_plan.context_at(self.batches_served)
            faults = active if active else None
        self.batches_served += 1
        metrics_on = self._registry.enabled
        tracing_on = self._tracer.enabled
        if not metrics_on and not tracing_on:
            return self._serve_inner(addresses, vnids, track_vns=False, faults=faults)
        with self._tracer.span(
            "serve.batch", scheme=self.scheme.name, n_packets=int(len(addresses))
        ) as span:
            if faults:
                span.set("faults", list(faults.labels()))
                with ExitStack() as stack:
                    for fault in faults.faults:
                        fault_span = stack.enter_context(
                            self._tracer.span(f"fault.{fault.kind}")
                        )
                        fault_span.set("label", fault.label())
                    results, trace = self._serve_inner(
                        addresses, vnids, track_vns=True, faults=faults
                    )
            else:
                results, trace = self._serve_inner(addresses, vnids, track_vns=True)
            span.set("n_engines", trace.n_engines)
            span.set("elapsed_s", trace.elapsed_s)
            if trace.n_shed:
                span.set("n_shed", trace.n_shed)
            if metrics_on:
                self._record_batch(trace)
                if self.fault_plan is not None:
                    self._record_fault_state(trace, faults)
                if self.power_sampler is not None:
                    sample = self.power_sampler.observe(
                        trace,
                        duty_cycle=self.offered_load_fraction,
                        write_rate=faults.write_rate if faults else None,
                    )
                    span.set("power_total_w", sample.total_w)
        return results, trace

    def lookup_batch(self, addresses: np.ndarray, vnids: np.ndarray) -> np.ndarray:
        """Results-only convenience wrapper around :meth:`serve`."""
        return self.serve(addresses, vnids)[0]

    # -- verification -----------------------------------------------------

    def verify(self, addresses: np.ndarray, vnids: np.ndarray) -> bool:
        """Cross-check served results against the linear-scan oracle.

        Verification traffic is *not* production traffic: the batch is
        answered through the instrumentation-suppressed inner path
        (and without fault degradation), so calling ``verify()`` never
        inflates the serve counters, the latency histogram or the
        running power estimate — the invariant pinned by
        ``tests/unit/test_serve.py``.
        """
        addresses, vnids = self._validate_batch(addresses, vnids)
        results, _ = self._serve_inner(addresses, vnids, track_vns=False)
        for vn in range(self.k):
            indices = np.flatnonzero(vnids == vn)
            if not len(indices):
                continue
            oracle = self._tables[vn].lookup_linear_batch(addresses[indices])
            if not np.array_equal(results[indices], oracle):
                return False
        return True
