"""Batched data-plane serving: one entry point for all three schemes.

The paper's headline metric is power *per throughput* (Fig. 8,
mW/Gbps), so the batch lookup path is the product: every power number
divides by how many ``(address, vnid)`` pairs the data plane can
answer.  :class:`LookupService` is that path's front end.  A batch
enters once and is routed according to the deployment scheme —

* **NV / VS** — through the :class:`~repro.virt.distributor.Distributor`
  to the K per-VN engines (one vectorized trie walk per engine over
  its share of the batch);
* **VM** — through the single merged engine (one vectorized walk of
  the union structure plus a 2-D NHI-vector gather).

Besides the results, every call returns a :class:`ServeTrace`: the
per-stage activity each engine would exhibit (via the closed-form
pipeline accounting of :func:`repro.iplookup.pipeline.trace_from_walk`)
and an M/D/1 queueing-latency estimate (:mod:`repro.virt.queueing`).
Throughput, latency and the power models' duty-cycle inputs therefore
all flow from one ``serve()`` call.

Observability
-------------
When the process-wide observability layer is enabled
(:func:`repro.obs.enable`), every ``serve()`` call additionally emits
a ``serve.batch`` span, increments per-scheme batch and per-VN lookup
counters, observes the host wall-clock batch latency into a
fixed-bucket histogram (seconds), and sets the modeled M/D/1
queue-depth and measured memory-duty-cycle gauges — see
``docs/OBSERVABILITY.md`` for the catalog.  With observability
disabled (the default) the serve path is byte-for-byte the
uninstrumented hot path behind a single flag check, so there is no
measurable overhead.

Units: batch latency is recorded in seconds, queue depth in packets,
duty cycle as a fraction in [0, 1].
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.metrics import throughput_gbps
from repro.errors import ConfigurationError, MergeError
from repro.iplookup.pipeline import PipelineTrace, trace_from_walk
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer
from repro.virt.distributor import Distributor
from repro.virt.merged import MergedTrie, merge_tries
from repro.virt.queueing import LatencyReport, scheme_latency_ns
from repro.virt.schemes import Scheme

if TYPE_CHECKING:  # the sampler pulls in the experiment stack
    from repro.obs.power import PowerTelemetrySampler

__all__ = ["LookupService", "ServeTrace"]


@dataclass(frozen=True)
class ServeTrace:
    """Measurement record of one served batch.

    Attributes
    ----------
    scheme:
        Deployment scheme the batch was served under.
    n_packets:
        Pairs in the batch.
    engine_traces:
        One :class:`~repro.iplookup.pipeline.PipelineTrace` per engine
        (K for NV/VS, 1 for VM); empty engines produce empty traces.
    latency:
        M/D/1 pipeline + queueing latency estimate at the offered
        load the service was asked to model.
    elapsed_s:
        Host wall-clock time spent answering the batch.
    vn_counts:
        Lookups per virtual network in the batch (length K).
        Populated only while observability is enabled — the bincount
        is skipped on the uninstrumented fast path — and consumed by
        the per-VN power attribution of
        :class:`repro.obs.power.PowerTelemetrySampler`.
    """

    scheme: Scheme
    n_packets: int
    engine_traces: tuple[PipelineTrace, ...]
    latency: LatencyReport
    elapsed_s: float
    vn_counts: tuple[int, ...] = ()

    @property
    def n_engines(self) -> int:
        return len(self.engine_traces)

    @property
    def host_ops_per_s(self) -> float:
        """Measured host-side serving rate (pairs per second)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.n_packets / self.elapsed_s

    def stage_accesses(self) -> np.ndarray:
        """Total per-stage memory accesses summed over engines."""
        return np.sum([t.accesses_per_stage for t in self.engine_traces], axis=0)

    def mean_duty_cycle(self) -> float:
        """Packet-weighted mean memory duty cycle across engines.

        This is the duty-cycle input of the clock-gated power models:
        a stage whose memory is idle dissipates no dynamic power.
        """
        weights = np.array([t.n_packets for t in self.engine_traces], dtype=float)
        if weights.sum() == 0:
            return 0.0
        duties = np.array([t.mean_duty_cycle() for t in self.engine_traces])
        return float((duties * weights).sum() / weights.sum())

    def engine_loads(self) -> np.ndarray:
        """Fraction of the batch each engine served."""
        counts = np.array([t.n_packets for t in self.engine_traces], dtype=float)
        if self.n_packets == 0:
            return np.zeros(self.n_engines)
        return counts / self.n_packets

    def vn_loads(self) -> np.ndarray:
        """Fraction of the batch each virtual network contributed.

        Empty array when the trace was taken with observability
        disabled (``vn_counts`` untracked).
        """
        counts = np.asarray(self.vn_counts, dtype=float)
        if counts.size == 0 or self.n_packets == 0:
            return np.zeros(len(self.vn_counts))
        return counts / self.n_packets


class LookupService:
    """Batched ``(addresses, vnids)`` front end over the three schemes.

    Parameters
    ----------
    tables:
        One routing table per virtual network (K = len(tables)).
    scheme:
        Deployment scheme; NV and VS serve through per-VN engines
        behind a distributor, VM through the single merged engine.
    n_stages:
        Pipeline depth of every engine (one trie level per stage).
    frequency_mhz:
        Modeled engine clock, used for capacity and latency figures.
    offered_load_fraction:
        Offered load, as a fraction of the scheme's aggregate lookup
        capacity, assumed for the M/D/1 queueing estimate attached to
        each :class:`ServeTrace`.
    registry:
        Metrics registry instrumented counters publish into; defaults
        to the process-wide registry (metrics fire only while it is
        enabled).
    tracer:
        Tracer for per-batch ``serve.batch`` spans; defaults to the
        process-wide tracer.
    power_sampler:
        Optional :class:`repro.obs.power.PowerTelemetrySampler`; when
        set and observability is enabled, every served batch is also
        folded into its running per-VN power estimate.
    """

    def __init__(
        self,
        tables: list[RoutingTable],
        scheme: Scheme = Scheme.VM,
        *,
        n_stages: int = 28,
        frequency_mhz: float = 200.0,
        offered_load_fraction: float = 0.5,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        power_sampler: "PowerTelemetrySampler | None" = None,
    ):
        if not tables:
            raise ConfigurationError("need at least one routing table")
        if n_stages < 1:
            raise ConfigurationError(f"n_stages must be >= 1, got {n_stages}")
        if frequency_mhz <= 0:
            raise ConfigurationError("frequency_mhz must be positive")
        if not 0.0 <= offered_load_fraction < 1.0:
            raise ConfigurationError(
                "offered_load_fraction must be in [0, 1) for a stable queue"
            )
        self.k = len(tables)
        self.scheme = scheme
        self.n_stages = n_stages
        self.frequency_mhz = frequency_mhz
        self.offered_load_fraction = offered_load_fraction
        self._tables = tables
        self._registry = registry if registry is not None else default_registry()
        self._tracer = tracer if tracer is not None else default_tracer()
        self.power_sampler = power_sampler
        self.distributor = Distributor(k=self.k)
        self._tries: list[UnibitTrie] = [UnibitTrie(t) for t in tables]
        self._merged: MergedTrie | None = None
        if scheme.shares_engine:
            self._merged = merge_tries(self._tries)
            depth = self._merged.structure.depth()
        else:
            depth = max(trie.depth() for trie in self._tries)
        if depth > n_stages:
            raise ConfigurationError(
                f"trie depth {depth} exceeds pipeline depth {n_stages}"
            )

    # -- capacity ---------------------------------------------------------

    @property
    def n_engines(self) -> int:
        """Engines instantiated (K for NV/VS, 1 for VM)."""
        return self.scheme.engines_required(self.k)

    def capacity_gbps(self) -> float:
        """Aggregate lookup capacity at minimum packet size."""
        return throughput_gbps(self.frequency_mhz, self.n_engines)

    def merged(self) -> MergedTrie:
        """The merged engine's union trie (VM scheme only)."""
        if self._merged is None:
            raise ConfigurationError(
                f"scheme {self.scheme} has no merged engine; use Scheme.VM"
            )
        return self._merged

    # -- serving ----------------------------------------------------------

    def _validate_batch(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        addresses = np.asarray(addresses, dtype=np.uint32)
        vnids = np.asarray(vnids, dtype=np.int64)
        if addresses.shape != vnids.shape:
            raise ConfigurationError("addresses and vnids must have the same shape")
        if addresses.ndim != 1:
            raise ConfigurationError("batches must be one-dimensional")
        if len(vnids) and (vnids.min() < 0 or vnids.max() >= self.k):
            raise MergeError(f"vnid out of range 0..{self.k - 1}")
        return addresses, vnids

    def _latency_estimate(self) -> LatencyReport:
        engine_capacity = throughput_gbps(self.frequency_mhz)
        aggregate = self.offered_load_fraction * self.capacity_gbps()
        return scheme_latency_ns(
            str(self.scheme),
            aggregate,
            engine_capacity,
            self.n_engines,
            self.frequency_mhz,
            self.n_stages,
        )

    def _serve_inner(
        self, addresses: np.ndarray, vnids: np.ndarray, *, track_vns: bool
    ) -> tuple[np.ndarray, ServeTrace]:
        """The uninstrumented serve path (inputs already validated)."""
        start = time.perf_counter()
        if self._merged is not None:
            depths, results = self._merged.walk_batch(addresses, vnids)
            traces = (trace_from_walk(depths, results, self.n_stages),)
        else:
            results = np.empty(len(addresses), dtype=np.int64)
            engine_traces = []
            for vn, indices in enumerate(self.distributor.route(vnids)):
                depths, engine_results = self._tries[vn].walk_batch(addresses[indices])
                results[indices] = engine_results
                engine_traces.append(
                    trace_from_walk(depths, engine_results, self.n_stages)
                )
            traces = tuple(engine_traces)
        elapsed = time.perf_counter() - start
        vn_counts: tuple[int, ...] = ()
        if track_vns:
            vn_counts = tuple(
                int(c) for c in np.bincount(vnids, minlength=self.k)
            )
        trace = ServeTrace(
            scheme=self.scheme,
            n_packets=len(addresses),
            engine_traces=traces,
            latency=self._latency_estimate(),
            elapsed_s=elapsed,
            vn_counts=vn_counts,
        )
        return results, trace

    def _record_batch(self, trace: ServeTrace) -> None:
        """Publish one served batch into the metrics registry."""
        registry = self._registry
        scheme = self.scheme.name
        registry.counter(
            "repro_serve_batches_total", "Batches served", labels=("scheme",)
        ).labels(scheme).inc()
        lookups = registry.counter(
            "repro_serve_lookups_total",
            "Lookups served per virtual network",
            labels=("scheme", "vn"),
        )
        for vn, count in enumerate(trace.vn_counts):
            if count:
                lookups.labels(scheme, vn).inc(count)
        registry.histogram(
            "repro_serve_batch_latency_seconds",
            "Host wall-clock time answering one batch",
            labels=("scheme",),
        ).labels(scheme).observe(trace.elapsed_s)
        # modeled M/D/1 mean queue occupancy per engine, summed over
        # engines: Lq = rho^2 / (2 (1 - rho)) at the configured
        # offered-load fraction
        rho = self.offered_load_fraction
        queue_depth = self.n_engines * rho * rho / (2.0 * (1.0 - rho))
        registry.gauge(
            "repro_serve_queue_depth",
            "Modeled M/D/1 mean queue occupancy, packets (all engines)",
            labels=("scheme",),
        ).labels(scheme).set(queue_depth)
        registry.gauge(
            "repro_serve_duty_cycle",
            "Packet-weighted mean memory duty cycle of the last batch",
            labels=("scheme",),
        ).labels(scheme).set(trace.mean_duty_cycle())

    def serve(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> tuple[np.ndarray, ServeTrace]:
        """Answer a batch of ``(address, vnid)`` lookups.

        Returns the per-pair next hops (arrival order preserved) and
        the :class:`ServeTrace` measuring the batch.  While
        observability is enabled the call also emits a ``serve.batch``
        span, updates the serve counters/histograms/gauges, and feeds
        the attached power sampler (see module docstring).
        """
        addresses, vnids = self._validate_batch(addresses, vnids)
        metrics_on = self._registry.enabled
        tracing_on = self._tracer.enabled
        if not metrics_on and not tracing_on:
            return self._serve_inner(addresses, vnids, track_vns=False)
        with self._tracer.span(
            "serve.batch", scheme=self.scheme.name, n_packets=int(len(addresses))
        ) as span:
            results, trace = self._serve_inner(addresses, vnids, track_vns=True)
            span.set("n_engines", trace.n_engines)
            span.set("elapsed_s", trace.elapsed_s)
            if metrics_on:
                self._record_batch(trace)
                if self.power_sampler is not None:
                    sample = self.power_sampler.observe(
                        trace, duty_cycle=self.offered_load_fraction or 1.0
                    )
                    span.set("power_total_w", sample.total_w)
        return results, trace

    def lookup_batch(self, addresses: np.ndarray, vnids: np.ndarray) -> np.ndarray:
        """Results-only convenience wrapper around :meth:`serve`."""
        return self.serve(addresses, vnids)[0]

    # -- verification -----------------------------------------------------

    def verify(self, addresses: np.ndarray, vnids: np.ndarray) -> bool:
        """Cross-check served results against the linear-scan oracle."""
        addresses, vnids = self._validate_batch(addresses, vnids)
        results, _ = self.serve(addresses, vnids)
        for vn in range(self.k):
            indices = np.flatnonzero(vnids == vn)
            if not len(indices):
                continue
            oracle = self._tables[vn].lookup_linear_batch(addresses[indices])
            if not np.array_equal(results[indices], oracle):
                return False
        return True
