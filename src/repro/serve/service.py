"""Batched data-plane serving: one entry point for all three schemes.

The paper's headline metric is power *per throughput* (Fig. 8,
mW/Gbps), so the batch lookup path is the product: every power number
divides by how many ``(address, vnid)`` pairs the data plane can
answer.  :class:`LookupService` is that path's front end.  A batch
enters once and is routed according to the deployment scheme —

* **NV / VS** — through the :class:`~repro.virt.distributor.Distributor`
  to the K per-VN engines (one vectorized trie walk per engine over
  its share of the batch);
* **VM** — through the single merged engine (one vectorized walk of
  the union structure plus a 2-D NHI-vector gather).

The service itself is a thin composition of the stage functions in
:mod:`repro.serve.stages` (validate → admit → partition → walk →
scatter → account) plus the instrumentation shell; the sharded async
tier (:mod:`repro.serve.frontend` / :mod:`repro.serve.shard`) runs the
*same* stages fanned out across worker processes, which is what keeps
the library call and the service tier provably identical.

Besides the results, every call returns a :class:`ServeTrace`: the
per-stage activity each engine would exhibit (via the closed-form
pipeline accounting of :func:`repro.iplookup.pipeline.trace_from_walk`)
and an M/D/1 queueing-latency estimate (:mod:`repro.virt.queueing`).
Throughput, latency and the power models' duty-cycle inputs therefore
all flow from one ``serve()`` call.

Robustness
----------
Batches are **strictly validated**: wrong dtype, NaN floats,
mis-shaped or truncated arrays and out-of-range vnids raise a typed
:class:`~repro.errors.MalformedBatchError` instead of being silently
coerced by numpy (a NaN cast to ``uint32`` looks like address 0).

A service built with a :class:`~repro.faults.FaultPlan` degrades
gracefully instead of failing: a stalled or storm-throttled engine
that would saturate gets its virtual network's excess load **shed**
(NV/VS bind engine *i* to VN *i*, so rerouting is impossible by
construction — shed lookups answer :data:`~repro.faults.SHED_RESULT`
and are counted in ``repro_serve_shed_lookups_total``), transient
walk failures are retried with backoff per the
:class:`~repro.faults.DegradationPolicy`, and the attached
:class:`ServeTrace` carries the *degraded* per-engine activity and
M/D/1 latency — which is what lets the chaos suite check the live
power telemetry against the analytical model re-evaluated at the
degraded operating point.  See ``docs/ROBUSTNESS.md``.

Observability
-------------
When the process-wide observability layer is enabled
(:func:`repro.obs.enable`), every ``serve()`` call additionally emits
a ``serve.batch`` span (plus one ``fault.<kind>`` child span per
active fault), increments per-scheme batch and per-VN lookup
counters, observes the host wall-clock batch latency into a
fixed-bucket histogram (seconds), sets the modeled M/D/1 queue-depth
and measured memory-duty-cycle gauges, and maintains the error-budget
surface (``repro_serve_errors_total``,
``repro_serve_shed_lookups_total``, ``repro_serve_retries_total``,
``repro_fault_active``) — see ``docs/OBSERVABILITY.md`` for the
catalog.  With observability disabled (the default) the serve path is
byte-for-byte the uninstrumented hot path behind a single flag check,
so there is no measurable overhead.

Units: batch latency is recorded in seconds, queue depth in packets,
duty cycle as a fraction in [0, 1].
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from typing import TYPE_CHECKING

import numpy as np

from repro.core.metrics import throughput_gbps
from repro.errors import ConfigurationError, MalformedBatchError
from repro.faults.injectors import ActiveFaults, FAULT_KINDS
from repro.faults.plan import FaultPlan
from repro.faults.policy import DegradationPolicy
from repro.fpga.dvs import NOMINAL_POINT, OperatingPoint
from repro.iplookup.rib import RoutingTable
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer
from repro.serve.stages import (
    EngineGroup,
    ServeTrace,
    degraded_utilizations,
    plan_admission,
    validate_batch,
    walk_degraded,
    walk_nominal,
)
from repro.units import mhz_to_hz, s_to_ns
from repro.virt.merged import MergedTrie
from repro.virt.queueing import (
    LatencyReport,
    degraded_latency_ns,
    scheme_latency_ns,
    simulate_md1_waits,
)
from repro.virt.schemes import Scheme

if TYPE_CHECKING:  # the sampler/governor pull in the experiment stack
    from repro.obs.power import PowerTelemetrySampler
    from repro.power.governor import DvsGovernor

__all__ = ["LookupService", "ServeTrace"]

#: effective-load ceiling the operating point may rescale up to: the
#: M/D/1 estimate needs rho < 1 strictly, and a governor pushing the
#: clock down must not be able to model a saturated queue as stable
_LOAD_CEILING = 0.97

#: arrivals simulated per batch for the measured-queue gauge
_QUEUE_SIM_ARRIVALS = 4096


def effective_load_fraction(nominal: float, scale: float) -> float:
    """Offered-load fraction after re-clocking the device by ``scale``.

    The absolute offered load is a property of the traffic, so scaling
    the clock by ``scale`` rescales the load *fraction* by ``1/scale``
    — capped below 1 (the M/D/1 estimate needs a stable queue; past
    the cap admission sheds instead).  At ``scale == 1`` this is
    exactly the configured fraction, preserving every nominal-path
    invariant.  Shared by :class:`LookupService` and the sharded
    frontend so both tiers re-clock identically.
    """
    return min(nominal / scale, max(nominal, _LOAD_CEILING))


class LookupService:
    """Batched ``(addresses, vnids)`` front end over the three schemes.

    Parameters
    ----------
    tables:
        One routing table per virtual network (K = len(tables)).
    scheme:
        Deployment scheme; NV and VS serve through per-VN engines
        behind a distributor, VM through the single merged engine.
    n_stages:
        Pipeline depth of every engine (one trie level per stage).
        ``None`` sizes the pipeline to the deepest table served —
        required for real RIB snapshots, whose /31–/32 more-specifics
        exceed the paper's 28-stage synthetic depth.
    frequency_mhz:
        Modeled engine clock, used for capacity and latency figures.
    offered_load_fraction:
        Offered load, as a fraction of the scheme's aggregate lookup
        capacity, assumed for the M/D/1 queueing estimate attached to
        each :class:`ServeTrace`.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; each ``serve()``
        call consults the plan at the service's running batch index
        and degrades accordingly (admission shedding, walk retries,
        degraded latency/activity accounting).
    policy:
        Degradation knobs (shed utilization bound, retry budget,
        backoff); defaults to :class:`~repro.faults.DegradationPolicy`
        defaults.
    registry:
        Metrics registry instrumented counters publish into; defaults
        to the process-wide registry (metrics fire only while it is
        enabled).
    tracer:
        Tracer for per-batch ``serve.batch`` spans; defaults to the
        process-wide tracer.
    power_sampler:
        Optional :class:`repro.obs.power.PowerTelemetrySampler`; when
        set and observability is enabled, every served batch is also
        folded into its running per-VN power estimate (at the
        service's configured offered-load duty cycle, storm write
        rate included while one is active).
    """

    def __init__(
        self,
        tables: list[RoutingTable],
        scheme: Scheme = Scheme.VM,
        *,
        n_stages: int | None = 28,
        frequency_mhz: float = 200.0,
        offered_load_fraction: float = 0.5,
        fault_plan: FaultPlan | None = None,
        policy: DegradationPolicy | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        power_sampler: "PowerTelemetrySampler | None" = None,
    ):
        if frequency_mhz <= 0:
            raise ConfigurationError("frequency_mhz must be positive")
        if not 0.0 <= offered_load_fraction < 1.0:
            raise ConfigurationError(
                "offered_load_fraction must be in [0, 1) for a stable queue"
            )
        self.group = EngineGroup(tables, scheme, n_stages)
        self.k = self.group.k
        self.scheme = scheme
        self.n_stages = self.group.n_stages
        self.frequency_mhz = frequency_mhz
        self.base_frequency_mhz = frequency_mhz
        self.offered_load_fraction = offered_load_fraction
        self._nominal_load_fraction = offered_load_fraction
        self._operating_point = NOMINAL_POINT
        self.fault_plan = fault_plan
        self.policy = policy if policy is not None else DegradationPolicy()
        self._tables = tables
        self._registry = registry if registry is not None else default_registry()
        self._tracer = tracer if tracer is not None else default_tracer()
        self.power_sampler = power_sampler
        self.distributor = self.group.distributor
        self._nominal_latency: LatencyReport | None = None
        self._governor: "DvsGovernor | None" = None
        self.batches_served = 0

    # -- DVS operating point ----------------------------------------------

    @property
    def operating_point(self) -> OperatingPoint:
        """The DVS operating point the service currently runs at."""
        return self._operating_point

    def apply_operating_point(self, point: OperatingPoint) -> None:
        """Re-clock the service to a DVS operating point.

        The engine clock scales by the point's fmax factor; the
        *absolute* offered load is unchanged, so the offered-load
        *fraction* rescales inversely (the same packets per second
        are a larger slice of a slower clock), capped below 1 so the
        M/D/1 estimate stays finite — past the cap the admission
        stages shed, which is the throughput-for-watts trade the
        governor makes explicit.  At the nominal point this restores
        the constructed configuration exactly.  The attached power
        sampler is rescaled in the same call so live telemetry and
        capacity always describe the same operating point.
        """
        scale = point.frequency_scale
        self._operating_point = point
        self.frequency_mhz = self.base_frequency_mhz * scale
        self.offered_load_fraction = effective_load_fraction(
            self._nominal_load_fraction, scale
        )
        self._nominal_latency = None
        if self.power_sampler is not None:
            self.power_sampler.set_operating_point(point)

    def set_offered_load(self, fraction: float) -> None:
        """Change the modeled offered load (fraction of *base* capacity)."""
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(
                "offered_load_fraction must be in [0, 1) for a stable queue"
            )
        self._nominal_load_fraction = fraction
        self.apply_operating_point(self._operating_point)

    # -- capacity ---------------------------------------------------------

    @property
    def n_engines(self) -> int:
        """Engines instantiated (K for NV/VS, 1 for VM)."""
        return self.group.n_engines

    def capacity_gbps(self) -> float:
        """Aggregate lookup capacity at minimum packet size."""
        return throughput_gbps(self.frequency_mhz, self.n_engines)

    def merged(self) -> MergedTrie:
        """The merged engine's union trie (VM scheme only)."""
        if self.group.merged is None:
            raise ConfigurationError(
                f"scheme {self.scheme} has no merged engine; use Scheme.VM"
            )
        return self.group.merged

    # -- serving ----------------------------------------------------------

    def _validate_batch(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The validate stage bound to this service's K (see
        :func:`repro.serve.stages.validate_batch`)."""
        return validate_batch(addresses, vnids, self.k)

    def _admission_rate(self) -> float:
        """Arrival spacing for the activity traces: the effective
        offered-load fraction, or full rate for an idle-load config
        (a zero fraction means "no modeled load", not "no arrivals" —
        the batch still has to be walked at some spacing)."""
        rho = self.offered_load_fraction
        return rho if rho > 0.0 else 1.0

    def _latency_estimate(self) -> LatencyReport:
        """Nominal M/D/1 latency report (cached — its inputs are all
        fixed at construction, so computing it per batch was pure
        hot-path waste; see the note in benchmarks/test_perf_lookup.py)."""
        if self._nominal_latency is None:
            engine_capacity = throughput_gbps(self.frequency_mhz)
            aggregate = self.offered_load_fraction * self.capacity_gbps()
            self._nominal_latency = scheme_latency_ns(
                str(self.scheme),
                aggregate,
                engine_capacity,
                self.n_engines,
                self.frequency_mhz,
                self.n_stages,
            )
        return self._nominal_latency

    # -- degradation ------------------------------------------------------

    def _serve_degraded(
        self,
        addresses: np.ndarray,
        vnids: np.ndarray,
        *,
        track_vns: bool,
        faults: ActiveFaults,
    ) -> tuple[np.ndarray, ServeTrace]:
        """Serve one batch under active faults (inputs already validated).

        Composes the degraded stages: :func:`~repro.serve.stages.plan_admission`
        against the faulted per-engine capacity,
        :func:`~repro.serve.stages.walk_degraded` (head-of-slice
        shedding, retry-with-backoff, engine shed), and the degraded
        latency/activity accounting in the returned trace.
        """
        start = time.perf_counter()
        n = len(addresses)
        scales = faults.capacity_scales(self.n_engines)
        admit = plan_admission(scales, self.offered_load_fraction, self.policy)
        walk = walk_degraded(
            self.group,
            addresses,
            vnids,
            admit,
            faults,
            self.policy,
            admission_rate=self._admission_rate(),
        )
        admitted_counts = np.array([t.n_packets for t in walk.traces], dtype=np.int64)
        utilizations = degraded_utilizations(
            scales, self.offered_load_fraction, self.policy
        )
        latency = degraded_latency_ns(
            str(self.scheme),
            utilizations,
            scales * self.frequency_mhz,
            admitted_counts,
            self.n_stages,
        )
        elapsed = time.perf_counter() - start
        vn_counts: tuple[int, ...] = ()
        if track_vns:
            offered = np.bincount(vnids, minlength=self.k)
            vn_counts = tuple(int(c) for c in offered - walk.vn_shed)
        trace = ServeTrace(
            scheme=self.scheme,
            n_packets=n,
            engine_traces=walk.traces,
            latency=latency,
            elapsed_s=elapsed,
            vn_counts=vn_counts,
            vn_shed=tuple(int(c) for c in walk.vn_shed),
            retries=walk.retries,
            walk_failures=walk.walk_failures,
            failed_engines=tuple(walk.failed_engines),
            fault_labels=faults.labels(),
        )
        return walk.results, trace

    def _serve_inner(
        self,
        addresses: np.ndarray,
        vnids: np.ndarray,
        *,
        track_vns: bool,
        faults: ActiveFaults | None = None,
    ) -> tuple[np.ndarray, ServeTrace]:
        """The uninstrumented serve path (inputs already validated)."""
        if faults:
            return self._serve_degraded(
                addresses, vnids, track_vns=track_vns, faults=faults
            )
        start = time.perf_counter()
        results, traces = walk_nominal(
            self.group, addresses, vnids, admission_rate=self._admission_rate()
        )
        elapsed = time.perf_counter() - start
        vn_counts: tuple[int, ...] = ()
        if track_vns:
            vn_counts = tuple(
                int(c) for c in np.bincount(vnids, minlength=self.k)
            )
        trace = ServeTrace(
            scheme=self.scheme,
            n_packets=len(addresses),
            engine_traces=traces,
            latency=self._latency_estimate(),
            elapsed_s=elapsed,
            vn_counts=vn_counts,
        )
        return results, trace

    def _record_batch(self, trace: ServeTrace) -> None:
        """Publish one served batch into the metrics registry."""
        registry = self._registry
        scheme = self.scheme.name
        registry.counter(
            "repro_serve_batches_total", "Batches served", labels=("scheme",)
        ).labels(scheme).inc()
        lookups = registry.counter(
            "repro_serve_lookups_total",
            "Lookups served per virtual network",
            labels=("scheme", "vn"),
        )
        for vn, count in enumerate(trace.vn_counts):
            if count:
                lookups.labels(scheme, vn).inc(count)
        registry.histogram(
            "repro_serve_batch_latency_seconds",
            "Host wall-clock time answering one batch",
            labels=("scheme",),
        ).labels(scheme).observe(trace.elapsed_s)
        # modeled M/D/1 mean queue occupancy per engine, summed over
        # engines: Lq = rho^2 / (2 (1 - rho)) at the configured
        # offered-load fraction
        rho = self.offered_load_fraction
        queue_depth = self.n_engines * rho * rho / (2.0 * (1.0 - rho))
        registry.gauge(
            "repro_serve_queue_depth",
            "Modeled M/D/1 mean queue occupancy at the configured "
            "offered load, packets (all engines); see "
            "repro_serve_queue_depth_measured for the realized queue",
            labels=("scheme",),
        ).labels(scheme).set(queue_depth)
        # realized queue, from the load the batch *actually* carried:
        # the configured rho times the admitted fraction (degraded
        # admission sheds arrivals), simulated through the same Lindley
        # recursion the shards validate against, then converted to
        # occupancy via Little's law (arrivals/ns x mean wait)
        served_fraction = (
            trace.n_admitted / trace.n_packets if trace.n_packets else 0.0
        )
        realized_rho = rho * served_fraction
        waits = simulate_md1_waits(
            realized_rho,
            self.frequency_mhz,
            max(1, min(trace.n_packets, _QUEUE_SIM_ARRIVALS)),
            seed=self.batches_served,
        )
        wait_ns = float(waits.mean())
        service_ns = s_to_ns(1.0 / mhz_to_hz(self.frequency_mhz))  # one cycle
        arrivals_per_ns = realized_rho / service_ns
        registry.gauge(
            "repro_serve_queue_wait_ns",
            "Measured mean M/D/1 input-queue wait of the last batch "
            "at the realized (post-shedding) load",
            labels=("scheme",),
        ).labels(scheme).set(wait_ns)
        registry.gauge(
            "repro_serve_queue_depth_measured",
            "Measured mean queue occupancy at the realized load, "
            "packets (all engines, Little's law over simulated waits)",
            labels=("scheme",),
        ).labels(scheme).set(self.n_engines * arrivals_per_ns * wait_ns)
        registry.gauge(
            "repro_serve_duty_cycle",
            "Packet-weighted mean memory duty cycle of the last batch",
            labels=("scheme",),
        ).labels(scheme).set(trace.mean_duty_cycle())

    def _record_fault_state(
        self, trace: ServeTrace, faults: ActiveFaults | None
    ) -> None:
        """Publish the error-budget metrics for one (possibly degraded) batch.

        Only called for services with a fault plan, so the gauge family
        appears exactly when faults are in play — and decays back to 0
        the batch after a window closes.
        """
        registry = self._registry
        scheme = self.scheme.name
        active = registry.gauge(
            "repro_fault_active",
            "Injected faults currently active, by kind (0 = nominal)",
            labels=("kind",),
        )
        counts = faults.kind_counts() if faults else dict.fromkeys(FAULT_KINDS, 0)
        for kind, count in counts.items():
            active.labels(kind).set(count)
        if trace.n_shed:
            shed = registry.counter(
                "repro_serve_shed_lookups_total",
                "Lookups shed by degraded admission control",
                labels=("scheme", "vn"),
            )
            for vn, count in enumerate(trace.vn_shed):
                if count:
                    shed.labels(scheme, vn).inc(count)
        if trace.retries:
            registry.counter(
                "repro_serve_retries_total",
                "Engine-walk retries performed",
                labels=("scheme",),
            ).labels(scheme).inc(trace.retries)
        errors = registry.counter(
            "repro_serve_errors_total",
            "Serve-path errors by kind",
            labels=("kind",),
        )
        if trace.walk_failures:
            errors.labels("transient_walk").inc(trace.walk_failures)
        if trace.failed_engines:
            errors.labels("walk_failed").inc(len(trace.failed_engines))

    def _count_malformed(self, exc: MalformedBatchError) -> None:
        """Fold one strict-validation rejection into the error budget.

        Deliberately the *only* metric a rejected batch touches: the
        batch/lookup counters and the latency histogram stay silent,
        so a malformed batch can never masquerade as served traffic.
        """
        if self._registry.enabled:
            self._registry.counter(
                "repro_serve_errors_total",
                "Serve-path errors by kind",
                labels=("kind",),
            ).labels(exc.kind).inc()

    def serve(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> tuple[np.ndarray, ServeTrace]:
        """Answer a batch of ``(address, vnid)`` lookups.

        Returns the per-pair next hops (arrival order preserved) and
        the :class:`ServeTrace` measuring the batch.  Malformed input
        raises :class:`~repro.errors.MalformedBatchError` (counted in
        ``repro_serve_errors_total`` while metrics are enabled, with
        no other metric touched).  Under a fault plan, shed lookups
        answer :data:`~repro.faults.SHED_RESULT`.  While observability
        is enabled the call also emits a ``serve.batch`` span (with
        ``fault.<kind>`` children for active faults), updates the
        serve counters/histograms/gauges, and feeds the attached power
        sampler (see module docstring).
        """
        try:
            addresses, vnids = self._validate_batch(addresses, vnids)
        except MalformedBatchError as exc:
            self._count_malformed(exc)
            raise
        faults: ActiveFaults | None = None
        if self.fault_plan is not None:
            active = self.fault_plan.context_at(self.batches_served)
            faults = active if active else None
        self.batches_served += 1
        metrics_on = self._registry.enabled
        tracing_on = self._tracer.enabled
        if not metrics_on and not tracing_on:
            return self._serve_inner(addresses, vnids, track_vns=False, faults=faults)
        with self._tracer.span(
            "serve.batch", scheme=self.scheme.name, n_packets=int(len(addresses))
        ) as span:
            if faults:
                span.set("faults", list(faults.labels()))
                with ExitStack() as stack:
                    for fault in faults.faults:
                        fault_span = stack.enter_context(
                            self._tracer.span(f"fault.{fault.kind}")
                        )
                        fault_span.set("label", fault.label())
                    results, trace = self._serve_inner(
                        addresses, vnids, track_vns=True, faults=faults
                    )
            else:
                results, trace = self._serve_inner(addresses, vnids, track_vns=True)
            span.set("n_engines", trace.n_engines)
            span.set("elapsed_s", trace.elapsed_s)
            if trace.n_shed:
                span.set("n_shed", trace.n_shed)
            if metrics_on:
                self._record_batch(trace)
                if self.fault_plan is not None:
                    self._record_fault_state(trace, faults)
                if self.power_sampler is not None:
                    # the *measured* duty cycle, not the configured
                    # offered-load fraction: live power must track the
                    # load the batch actually carried (shedding, load
                    # ramps), which is the signal the DVS governor
                    # closes its loop against
                    sample = self.power_sampler.observe(
                        trace,
                        duty_cycle=trace.mean_duty_cycle(),
                        write_rate=faults.write_rate if faults else None,
                    )
                    span.set("power_total_w", sample.total_w)
                if self._governor is not None:
                    self._governor.on_batch(self, trace)
        return results, trace

    def lookup_batch(self, addresses: np.ndarray, vnids: np.ndarray) -> np.ndarray:
        """Results-only convenience wrapper around :meth:`serve`."""
        return self.serve(addresses, vnids)[0]

    # -- verification -----------------------------------------------------

    def verify(self, addresses: np.ndarray, vnids: np.ndarray) -> bool:
        """Cross-check served results against the linear-scan oracle.

        Verification traffic is *not* production traffic: the batch is
        answered through the instrumentation-suppressed inner path
        (and without fault degradation), so calling ``verify()`` never
        inflates the serve counters, the latency histogram or the
        running power estimate — the invariant pinned by
        ``tests/unit/test_serve.py``.
        """
        addresses, vnids = self._validate_batch(addresses, vnids)
        results, _ = self._serve_inner(addresses, vnids, track_vns=False)
        for vn in range(self.k):
            indices = np.flatnonzero(vnids == vn)
            if not len(indices):
                continue
            oracle = self._tables[vn].lookup_linear_batch(addresses[indices])
            if not np.array_equal(results[indices], oracle):
                return False
        return True
