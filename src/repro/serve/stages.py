"""Composable serving stages: validate → admit → partition → walk → scatter → account.

The serving tier is built from a small set of pure(ish) stage
functions over an :class:`EngineGroup` — the frozen engines one
process walks.  The synchronous :class:`repro.serve.service.LookupService`
composes every stage in-process; the sharded tier
(:mod:`repro.serve.shard` / :mod:`repro.serve.frontend`) runs the same
stages with the walk fanned out across shard worker processes.  Either
way the pipeline is:

    validate_batch          strict typed rejection, never coerce
        │
    plan_admission          per-engine admitted fraction under faults
        │
    walk_nominal /          SoA partition → per-engine frozen walk →
    walk_degraded           single scatter (degraded: head-of-slice
        │                   admission, retry-with-backoff, engine shed)
        │
    ServeTrace              account: per-engine activity + latency

Keeping the stages free functions (state rides in the
:class:`EngineGroup` argument) is what lets a shard worker process
host exactly the same data path as the library call — shared-nothing,
no hidden globals — and what keeps the two paths provably identical
(the serve unit suite runs against the composition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import (
    ConfigurationError,
    MalformedBatchError,
    TransientEngineError,
)
from repro.faults.injectors import ActiveFaults
from repro.faults.policy import SHED_RESULT, DegradationPolicy
from repro.iplookup.pipeline import PipelineTrace, trace_from_walk
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.virt.distributor import Distributor
from repro.virt.merged import MergedTrie, merge_tries
from repro.virt.queueing import LatencyReport
from repro.virt.schemes import Scheme

__all__ = [
    "ADDRESS_MAX",
    "DegradedWalk",
    "EngineGroup",
    "ServeTrace",
    "admit_count",
    "admit_indices",
    "degraded_utilizations",
    "plan_admission",
    "validate_batch",
    "walk_degraded",
    "walk_nominal",
    "walk_with_retry",
]

#: address values are IPv4 words — anything above this cannot be cast
#: to uint32 without silent wraparound
ADDRESS_MAX = 0xFFFFFFFF


@dataclass(frozen=True)
class ServeTrace:
    """Measurement record of one served batch (the *account* stage).

    Attributes
    ----------
    scheme:
        Deployment scheme the batch was served under.
    n_packets:
        Pairs *offered* in the batch (admitted + shed).
    engine_traces:
        One :class:`~repro.iplookup.pipeline.PipelineTrace` per engine
        (K for NV/VS, 1 for VM); empty engines produce empty traces.
        Under active faults these cover only the *admitted* lookups.
    latency:
        M/D/1 pipeline + queueing latency estimate at the offered
        load the service was asked to model; under active faults this
        is the admitted-load-weighted degraded estimate
        (:func:`repro.virt.queueing.degraded_latency_ns`).
    elapsed_s:
        Host wall-clock time spent answering the batch.
    vn_counts:
        *Admitted* lookups per virtual network (length K).  Populated
        only while observability is enabled — the bincount is skipped
        on the uninstrumented fast path — and consumed by the per-VN
        power attribution of
        :class:`repro.obs.power.PowerTelemetrySampler`.
    vn_shed:
        Lookups shed per virtual network by degraded admission
        control (length K under active faults, empty otherwise).
    retries:
        Walk retry attempts performed while answering the batch.
    walk_failures:
        Transient engine-walk failures observed (each either retried
        or, past the retry budget, converted into a shed engine).
    failed_engines:
        Engines whose walks still failed after the retry budget; their
        admitted share was shed.
    fault_labels:
        Labels of the faults active while the batch was served.
    """

    scheme: Scheme
    n_packets: int
    engine_traces: tuple[PipelineTrace, ...]
    latency: LatencyReport
    elapsed_s: float
    vn_counts: tuple[int, ...] = ()
    vn_shed: tuple[int, ...] = ()
    retries: int = 0
    walk_failures: int = 0
    failed_engines: tuple[int, ...] = ()
    fault_labels: tuple[str, ...] = ()

    @property
    def n_engines(self) -> int:
        return len(self.engine_traces)

    @property
    def n_shed(self) -> int:
        """Lookups shed by degraded admission control (0 when nominal)."""
        return int(sum(self.vn_shed))

    @property
    def n_admitted(self) -> int:
        """Lookups actually served (``n_packets - n_shed``)."""
        return self.n_packets - self.n_shed

    @property
    def host_ops_per_s(self) -> float:
        """Measured host-side serving rate (offered pairs per second)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.n_packets / self.elapsed_s

    def stage_accesses(self) -> np.ndarray:
        """Total per-stage memory accesses summed over engines."""
        return np.sum([t.accesses_per_stage for t in self.engine_traces], axis=0)

    def mean_duty_cycle(self) -> float:
        """Packet-weighted mean memory duty cycle across engines.

        This is the duty-cycle input of the clock-gated power models:
        a stage whose memory is idle dissipates no dynamic power.
        """
        weights = np.array([t.n_packets for t in self.engine_traces], dtype=float)
        if weights.sum() == 0:
            return 0.0
        duties = np.array([t.mean_duty_cycle() for t in self.engine_traces])
        return float((duties * weights).sum() / weights.sum())

    def engine_loads(self) -> np.ndarray:
        """Fraction of the *offered* batch each engine served.

        Sums to 1 on a nominal batch; under degraded admission the
        shortfall from 1 is exactly the shed fraction, which is what
        makes the loads usable as the degraded activity vector of the
        power models.
        """
        counts = np.array([t.n_packets for t in self.engine_traces], dtype=float)
        if self.n_packets == 0:
            return np.zeros(self.n_engines)
        return counts / self.n_packets

    def vn_loads(self) -> np.ndarray:
        """Fraction of the offered batch each virtual network contributed.

        Size-0 array when the trace was taken with observability
        disabled (``vn_counts`` untracked); an all-zeros length-K
        array for a tracked but empty batch (``vn_counts`` is
        ``(0,) * K`` there, and no VN contributed anything).
        """
        counts = np.asarray(self.vn_counts, dtype=float)
        if counts.size == 0 or self.n_packets == 0:
            return np.zeros(len(self.vn_counts))
        return counts / self.n_packets


class EngineGroup:
    """The *build* stage: one process's frozen lookup engines.

    For NV/VS this is the K per-VN :class:`~repro.iplookup.trie.UnibitTrie`
    engines (frozen at build time) behind a
    :class:`~repro.virt.distributor.Distributor`; for VM it is the
    single :class:`~repro.virt.merged.MergedTrie` union engine.  An
    ``EngineGroup`` is shared-nothing by construction — building one
    per shard worker process is exactly how the sharded tier fans out.
    """

    def __init__(
        self,
        tables: list[RoutingTable],
        scheme: Scheme,
        n_stages: int | None,
    ):
        if not tables:
            raise ConfigurationError("need at least one routing table")
        if n_stages is not None and n_stages < 1:
            raise ConfigurationError(f"n_stages must be >= 1, got {n_stages}")
        self.k = len(tables)
        self.scheme = scheme
        self.tables = tables
        self.distributor = Distributor(k=self.k)
        self.tries: list[UnibitTrie] = [UnibitTrie(t) for t in tables]
        self.merged: MergedTrie | None = None
        if scheme.shares_engine:
            self.merged = merge_tries(self.tries)
            depth = self.merged.structure.depth()
        else:
            # freeze the per-VN engines now (flat self-looping child
            # arrays, root jump tables) so no served batch ever pays
            # the freeze cost — the same build-time discipline as the
            # merged engine, whose MergedTrie constructor freezes its
            # union structure
            for trie in self.tries:
                trie.freeze()
            depth = max(trie.depth() for trie in self.tries)
        if n_stages is None:
            # size the pipeline to the tables: real RIB snapshots have
            # /31-/32 more-specifics, deeper than the paper's 28 stages
            n_stages = max(depth, 1)
        elif depth > n_stages:
            raise ConfigurationError(
                f"trie depth {depth} exceeds pipeline depth {n_stages}"
            )
        self.n_stages = n_stages

    @property
    def n_engines(self) -> int:
        """Engines instantiated (K for NV/VS, 1 for VM)."""
        return self.scheme.engines_required(self.k)


def validate_batch(
    addresses: np.ndarray, vnids: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """The *validate* stage: reject malformed input, never coerce.

    Raises :class:`~repro.errors.MalformedBatchError` with a ``kind``
    of ``shape``, ``truncated``, ``dtype``, ``non_finite``,
    ``address_range`` or ``vnid_range``; a batch that passes is safely
    castable to ``(uint32, int64)``.
    """
    addresses = np.asarray(addresses)
    vnids = np.asarray(vnids)
    if addresses.ndim != 1 or vnids.ndim != 1:
        raise MalformedBatchError(
            "shape",
            f"batches must be one-dimensional, got {addresses.ndim}-D "
            f"addresses and {vnids.ndim}-D vnids",
        )
    if addresses.shape != vnids.shape:
        raise MalformedBatchError(
            "truncated",
            f"{len(addresses)} addresses vs {len(vnids)} vnids",
        )
    # dtype checks are unconditional: an empty float64 batch is
    # just as malformed as a full one, and "strict, never coerce"
    # must not depend on whether there happens to be data — the
    # guard used to sit inside the size check, silently astype'ing
    # empty float batches through
    if addresses.dtype.kind not in "iu":
        if (
            addresses.dtype.kind == "f"
            and addresses.size
            and np.isnan(addresses).any()
        ):
            raise MalformedBatchError("non_finite", "address array contains NaN")
        raise MalformedBatchError(
            "dtype",
            f"addresses must be an integer array, got {addresses.dtype}",
        )
    if vnids.dtype.kind not in "iu":
        raise MalformedBatchError(
            "dtype", f"vnids must be an integer array, got {vnids.dtype}"
        )
    if addresses.size:
        if addresses.dtype != np.uint32 and (
            int(addresses.max()) > ADDRESS_MAX or int(addresses.min()) < 0
        ):
            raise MalformedBatchError(
                "address_range",
                "address outside the 32-bit range would wrap on cast",
            )
        if int(vnids.min()) < 0 or int(vnids.max()) >= k:
            raise MalformedBatchError(
                "vnid_range", f"vnid out of range 0..{k - 1}"
            )
    return (
        addresses.astype(np.uint32, copy=False),
        vnids.astype(np.int64, copy=False),
    )


def plan_admission(
    capacity_scales: np.ndarray,
    offered_load_fraction: float,
    policy: DegradationPolicy,
) -> np.ndarray:
    """The *admit* stage: admitted fraction of each engine's offered load.

    An engine whose remaining capacity would be driven past the
    policy's shed-utilization bound sheds the excess; an offline
    engine (scale 0) sheds everything.
    """
    rho = offered_load_fraction
    bound = policy.shed_utilization
    admit = np.ones(len(capacity_scales))
    for i, scale in enumerate(capacity_scales):
        if scale <= 0.0:
            admit[i] = 0.0
        elif rho > 0.0 and rho / scale > bound:
            admit[i] = bound * scale / rho
    return admit


def degraded_utilizations(
    scales: np.ndarray,
    offered_load_fraction: float,
    policy: DegradationPolicy,
) -> np.ndarray:
    """Per-engine utilization after admission under degraded capacity.

    Shedding caps every engine at the policy's shed-utilization bound;
    an offline engine runs at 0.
    """
    rho = offered_load_fraction
    return np.where(
        scales > 0.0,
        np.minimum(
            np.divide(rho, scales, where=scales > 0.0, out=np.ones_like(scales)),
            policy.shed_utilization,
        ),
        0.0,
    )


def admit_count(
    offered: int, admit: float, vn: int, vn_shed: np.ndarray
) -> int:
    """Admit the head of one VN's slice, shed (and count) the tail.

    Slice-based twin of the old index-list ``_admit_prefix``: the
    kept lookups are the first ``keep`` of the engine's contiguous
    slice, which (by sort stability) are exactly the VN's earliest
    arrivals — the set the index-list path admitted.
    """
    if admit >= 1.0:
        return offered
    keep = int(admit * offered + 0.5)
    vn_shed[vn] += offered - keep
    return keep


def admit_indices(
    vnids: np.ndarray, k: int, admit: float, vn_shed: np.ndarray
) -> np.ndarray:
    """Per-VN head admission for the shared engine (VM).

    The merged engine's degradation hits every VN, so each VN
    keeps the same admitted fraction of its own arrivals.
    """
    if admit >= 1.0:
        return np.arange(len(vnids), dtype=np.int64)
    mask = np.ones(len(vnids), dtype=bool)
    for vn in range(k):
        indices = np.flatnonzero(vnids == vn)
        keep = int(admit * len(indices) + 0.5)
        if keep < len(indices):
            mask[indices[keep:]] = False
            vn_shed[vn] += len(indices) - keep
    return np.flatnonzero(mask)


def walk_with_retry(
    engine: int,
    faults: ActiveFaults,
    policy: DegradationPolicy,
    walk: Callable[[], tuple[np.ndarray, np.ndarray]],
) -> tuple[tuple[np.ndarray, np.ndarray] | None, int, int]:
    """Run one engine walk under the retry policy.

    Returns ``(result_or_None, retries, failures)``: the walk's
    ``(depths, results)`` when it eventually succeeded, or ``None``
    when the retry budget was exhausted.
    """
    retries = 0
    failures = 0
    attempt = 0
    while True:
        try:
            faults.check_walk(engine, attempt)
            return walk(), retries, failures
        except TransientEngineError:
            failures += 1
            if attempt >= policy.max_retries:
                return None, retries, failures
            policy.wait(attempt)
            retries += 1
            attempt += 1


def walk_nominal(
    group: EngineGroup,
    addresses: np.ndarray,
    vnids: np.ndarray,
    admission_rate: float = 1.0,
) -> tuple[np.ndarray, tuple[PipelineTrace, ...]]:
    """The nominal *partition → walk → scatter* stages (no faults).

    Structure-of-arrays batch path: one stable sort by VNID, each
    frozen engine walks its contiguous slice, and one scatter through
    the inverse permutation restores arrival order — no per-engine
    fancy indexing anywhere.  VM walks the whole batch on the single
    merged engine.

    ``admission_rate`` is the offered load fraction the batch arrives
    at: it stretches the modeled arrival window so the measured duty
    cycle tracks the load actually offered, not a back-to-back replay
    (see :func:`repro.iplookup.pipeline.trace_from_walk`).
    """
    if group.merged is not None:
        depths, results = group.merged.walk_batch(addresses, vnids)
        return results, (
            trace_from_walk(
                depths, results, group.n_stages, admission_rate=admission_rate
            ),
        )
    part = group.distributor.partition(vnids)
    sorted_addresses = part.gather(addresses)
    sorted_results = np.empty(len(addresses), dtype=np.int64)
    engine_traces = []
    for vn in range(group.k):
        sl = part.engine_slice(vn)
        depths, engine_results = group.tries[vn].walk_batch(sorted_addresses[sl])
        sorted_results[sl] = engine_results
        engine_traces.append(
            trace_from_walk(
                depths, engine_results, group.n_stages, admission_rate=admission_rate
            )
        )
    return part.scatter(sorted_results), tuple(engine_traces)


@dataclass
class DegradedWalk:
    """Outcome of the degraded *admit → walk → scatter* stages."""

    results: np.ndarray
    traces: tuple[PipelineTrace, ...]
    vn_shed: np.ndarray
    retries: int = 0
    walk_failures: int = 0
    failed_engines: list[int] = field(default_factory=list)


def walk_degraded(
    group: EngineGroup,
    addresses: np.ndarray,
    vnids: np.ndarray,
    admit: np.ndarray,
    faults: ActiveFaults,
    policy: DegradationPolicy,
    admission_rate: float = 1.0,
) -> DegradedWalk:
    """The degraded *admit → walk → scatter* stages under active faults.

    Implements the degradation policy: per-VN admission shedding
    against the degraded per-engine capacity (``admit``, from
    :func:`plan_admission`), retry-with-backoff for transiently
    failing walks, and shedding of engines whose retry budget is
    exhausted.  Shed lookups answer
    :data:`~repro.faults.policy.SHED_RESULT`.

    Every engine trace is windowed over the lookups *offered* to that
    engine at ``admission_rate`` (shed arrival slots stay idle), so
    the measured duty cycle visibly drops when admission control
    sheds — the signal the DVS governor trades voltage against.
    """
    n = len(addresses)
    results = np.full(n, SHED_RESULT, dtype=np.int64)
    vn_shed = np.zeros(group.k, dtype=np.int64)
    out = DegradedWalk(results=results, traces=(), vn_shed=vn_shed)
    empty = np.array([], dtype=np.int64)

    if group.merged is not None:
        kept = admit_indices(vnids, group.k, admit[0], vn_shed)
        kept_addresses = addresses[kept]
        kept_vnids = vnids[kept]
        # bind the walk inputs as defaults: a plain closure would
        # re-read the enclosing names at call time (late binding),
        # which the retry loop must never depend on
        walked, walk_retries, failures = walk_with_retry(
            0,
            faults,
            policy,
            lambda m=group.merged, a=kept_addresses, v=kept_vnids: m.walk_batch(a, v),
        )
        out.retries += walk_retries
        out.walk_failures += failures
        if walked is None:
            out.failed_engines.append(0)
            np.add.at(vn_shed, kept_vnids, 1)
            out.traces = (
                trace_from_walk(
                    empty,
                    empty,
                    group.n_stages,
                    admission_rate=admission_rate,
                    window_packets=n,
                ),
            )
        else:
            depths, walk_results = walked
            results[kept] = walk_results
            out.traces = (
                trace_from_walk(
                    depths,
                    walk_results,
                    group.n_stages,
                    admission_rate=admission_rate,
                    window_packets=n,
                ),
            )
        return out

    # same structure-of-arrays discipline as the nominal path:
    # admission sheds the *tail* of each engine's contiguous
    # slice (arrival order within a VN is sort-stable), so the
    # kept lookups stay a prefix of the slice and scatter back
    # through the same permutation.
    part = group.distributor.partition(vnids)
    sorted_addresses = part.gather(addresses)
    engine_traces = []
    for vn in range(group.k):
        start_vn, stop_vn = part.engine_slice(vn).start, part.engine_slice(vn).stop
        offered = stop_vn - start_vn
        keep = admit_count(offered, admit[vn], vn, vn_shed)
        kept_addresses = sorted_addresses[start_vn : start_vn + keep]
        # default-arg binding: the thunk must capture *this*
        # iteration's engine and slice, not the loop variables
        walked, walk_retries, failures = walk_with_retry(
            vn,
            faults,
            policy,
            lambda t=group.tries[vn], a=kept_addresses: t.walk_batch(a),
        )
        out.retries += walk_retries
        out.walk_failures += failures
        if walked is None:
            out.failed_engines.append(vn)
            vn_shed[vn] += keep
            engine_traces.append(
                trace_from_walk(
                    empty,
                    empty,
                    group.n_stages,
                    admission_rate=admission_rate,
                    window_packets=offered,
                )
            )
            continue
        depths, engine_results = walked
        results[part.order[start_vn : start_vn + keep]] = engine_results
        engine_traces.append(
            trace_from_walk(
                depths,
                engine_results,
                group.n_stages,
                admission_rate=admission_rate,
                window_packets=offered,
            )
        )
    out.traces = tuple(engine_traces)
    return out
