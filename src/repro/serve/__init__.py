"""Batched data-plane serving layer.

Two front ends over one stage pipeline (:mod:`repro.serve.stages`:
validate → admit → partition → walk → scatter → account):

* :class:`LookupService` — the synchronous library call: admits
  ``(addresses, vnids)`` batches and routes them through the
  deployment scheme's engines (distributor → per-VN pipelines for
  NV/VS, the merged engine for VM) in-process.
* :class:`ShardedLookupService` — the service tier: the same stages
  behind an asyncio front end, with the walk fanned out across
  shared-nothing shard worker processes (:mod:`repro.serve.shard`),
  per-VN qos admission, bounded-queue backpressure, and shard-labeled
  metric scrape-merge.  See ``docs/SERVING.md``.

Every serve returns the results plus a :class:`ServeTrace` carrying
per-stage activity and a queueing-latency estimate, so throughput,
latency and the power models' duty-cycle inputs flow from one call.
:mod:`repro.serve.perf` is the timing harness behind ``make bench``.

While the observability layer is enabled (:func:`repro.obs.enable`)
the serve path also publishes per-batch metrics, spans and — with a
:class:`repro.obs.power.PowerTelemetrySampler` attached — live power
telemetry; see ``docs/OBSERVABILITY.md``.
"""

from repro.serve.frontend import ShardedLookupService, shard_vn_bounds
from repro.serve.service import LookupService, ServeTrace
from repro.serve.shard import (
    ShardBatchRequest,
    ShardBatchResult,
    ShardConfig,
    ShardRuntime,
    shard_worker,
)

__all__ = [
    "LookupService",
    "ServeTrace",
    "ShardedLookupService",
    "shard_vn_bounds",
    "ShardConfig",
    "ShardBatchRequest",
    "ShardBatchResult",
    "ShardRuntime",
    "shard_worker",
]
