"""Batched data-plane serving layer.

One front end — :class:`LookupService` — admits ``(addresses, vnids)``
batches and routes them through the deployment scheme's engines:
distributor → per-VN pipelines for NV/VS, the merged engine for VM.
Every call returns the results plus a :class:`ServeTrace` carrying
per-stage activity and a queueing-latency estimate, so throughput,
latency and the power models' duty-cycle inputs flow from one call.
:mod:`repro.serve.perf` is the timing harness behind ``make bench``.

While the observability layer is enabled (:func:`repro.obs.enable`)
the serve path also publishes per-batch metrics, spans and — with a
:class:`repro.obs.power.PowerTelemetrySampler` attached — live power
telemetry; see ``docs/OBSERVABILITY.md``.
"""

from repro.serve.service import LookupService, ServeTrace

__all__ = ["LookupService", "ServeTrace"]
