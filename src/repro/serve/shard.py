"""Shard worker: one engine group serving its slice of the VNs.

One shard owns a **contiguous range of virtual networks** and hosts a
complete, shared-nothing :class:`~repro.serve.service.LookupService`
over just those tables — the same stage pipeline as the library call
(:mod:`repro.serve.stages`), built from its own frozen engines, its
own scoped :class:`~repro.faults.FaultPlan`, and its own
process-local :class:`~repro.obs.registry.MetricsRegistry`.  The
frontend (:mod:`repro.serve.frontend`) partitions each batch by VNID
and ships every shard its contiguous sub-batch over a
:func:`multiprocessing.Pipe`; shard-local VNIDs are the global ones
rebased to the shard's range.

Besides serving, every shard **measures its own queue**: per batch it
simulates the M/D/1 input queue at its configured utilization via the
Lindley recursion (:func:`repro.virt.queueing.simulate_md1_waits`,
seeded per (shard, batch) so the whole surface is replayable) and
returns a :class:`~repro.virt.queueing.QueueValidation` scoring the
measured mean wait against the analytical prediction — the
model-vs-observed error the acceptance gate bounds.

The worker protocol is a strict request/reply alternation per pipe
(the frontend serializes access through one dispatcher per shard):

========================  =============================================
request                   reply
========================  =============================================
``("serve", payload)``    ``("ok", ShardBatchResult)``
``("metrics", None)``     ``("ok", RegistrySnapshot)`` (shard-labeled)
``("reconfig", payload)`` ``("ok", None)``; payload is
                          ``(OperatingPoint, nominal_load_fraction)``
``("stop", None)``        ``("bye", None)`` then the worker exits
any, on failure           ``("error", formatted traceback)``
========================  =============================================

Everything crossing the pipe is a plain picklable value object —
the lint pack's CONC003 rule checks the worker entry point's defaults
stay picklable.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from multiprocessing.connection import Connection

import numpy as np

from repro.faults.plan import FaultPlan
from repro.faults.policy import DegradationPolicy
from repro.iplookup.rib import RoutingTable
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import RegistrySnapshot, snapshot_registry
from repro.obs.tracing import Tracer
from repro.serve.service import LookupService, ServeTrace
from repro.virt.queueing import QueueValidation, simulate_md1_waits, validate_md1
from repro.virt.schemes import Scheme

__all__ = [
    "ShardConfig",
    "ShardBatchRequest",
    "ShardBatchResult",
    "ShardRuntime",
    "shard_worker",
]


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker process needs to build its service (picklable).

    ``vn_base`` is the first *global* VN this shard owns; the shard
    serves global VNs ``[vn_base, vn_base + len(tables))``, rebased to
    local VNIDs ``0..len(tables)-1``.  ``fault_plan`` must already be
    scoped to the shard (:meth:`repro.faults.FaultPlan.scoped_to_engines`).
    """

    shard_id: int
    vn_base: int
    tables: tuple[RoutingTable, ...]
    scheme: Scheme
    n_stages: int = 28
    frequency_mhz: float = 200.0
    offered_load_fraction: float = 0.5
    fault_plan: FaultPlan | None = None
    policy: DegradationPolicy | None = None
    metrics: bool = True


@dataclass(frozen=True)
class ShardBatchRequest:
    """One sub-batch offered to a shard (local VNIDs, arrival order)."""

    batch_index: int
    addresses: np.ndarray
    vnids: np.ndarray
    queue_seed: int


@dataclass(frozen=True)
class ShardBatchResult:
    """One shard's answer: results, trace, and its measured queue."""

    shard_id: int
    results: np.ndarray
    trace: ServeTrace
    queue: QueueValidation


class ShardRuntime:
    """The shard's in-process engine: build once, answer sub-batches.

    Hosts the full :class:`LookupService` composition over the shard's
    tables with a private registry (so per-shard counters merge
    losslessly under the ``shard`` label) and a disabled tracer (span
    streams don't cross processes; the frontend owns tracing).  Also
    usable in-process via the frontend's ``inline`` transport, which
    is how the unit suite exercises the tier deterministically.
    """

    def __init__(self, config: ShardConfig):
        self.config = config
        self.registry = MetricsRegistry(enabled=config.metrics)
        self.service = LookupService(
            list(config.tables),
            config.scheme,
            n_stages=config.n_stages,
            frequency_mhz=config.frequency_mhz,
            offered_load_fraction=config.offered_load_fraction,
            fault_plan=config.fault_plan,
            policy=config.policy,
            registry=self.registry,
            tracer=Tracer(enabled=False),
        )

    def serve(self, request: ShardBatchRequest) -> ShardBatchResult:
        """Answer one sub-batch at the frontend's batch index.

        The service's batch clock is pinned to the frontend's index
        before serving so every shard consults its scoped fault plan
        at the same schedule position, and the queue simulation is
        seeded from the request — identical requests produce identical
        results, traces and measured waits.
        """
        self.service.batches_served = request.batch_index
        results, trace = self.service.serve(request.addresses, request.vnids)
        queue = self._measure_queue(request)
        return ShardBatchResult(
            shard_id=self.config.shard_id,
            results=results,
            trace=trace,
            queue=queue,
        )

    def _measure_queue(self, request: ShardBatchRequest) -> QueueValidation:
        """Simulate this batch's input queue and score it against M/D/1.

        Reads the *live* service state, not the frozen config — a
        governor reconfig changes both the offered fraction and the
        clock, and the measured queue must track the operating point
        actually in force.
        """
        rho = self.service.offered_load_fraction
        frequency_mhz = self.service.frequency_mhz
        waits = simulate_md1_waits(
            rho,
            frequency_mhz,
            max(1, len(request.addresses)),
            request.queue_seed,
        )
        validation = validate_md1(rho, frequency_mhz, float(waits.mean()))
        if self.registry.enabled:
            self.registry.gauge(
                "repro_shard_queue_wait_ns",
                "Measured mean M/D/1 input-queue wait of the last batch",
                labels=("scheme",),
            ).labels(self.config.scheme.name).set(validation.observed_wait_ns)
            self.registry.gauge(
                "repro_shard_queue_error",
                "Relative error of the measured queue wait vs the M/D/1 model",
                labels=("scheme",),
            ).labels(self.config.scheme.name).set(validation.relative_error)
        return validation

    def snapshot(self) -> RegistrySnapshot:
        """Shard-labeled snapshot of the private registry."""
        return snapshot_registry(self.registry, shard=self.config.shard_id)

    def handle(self, message: tuple[str, object]) -> tuple[str, object]:
        """Dispatch one protocol message (shared by pipe and inline paths)."""
        op, payload = message
        try:
            if op == "serve":
                assert isinstance(payload, ShardBatchRequest)
                return ("ok", self.serve(payload))
            if op == "metrics":
                return ("ok", self.snapshot())
            if op == "reconfig":
                assert isinstance(payload, tuple) and len(payload) == 2
                point, nominal = payload
                self.service.set_offered_load(nominal)
                self.service.apply_operating_point(point)
                return ("ok", None)
            if op == "stop":
                return ("bye", None)
            return ("error", f"unknown shard op {op!r}")
        except Exception:
            return ("error", traceback.format_exc())


def shard_worker(conn: Connection, config: ShardConfig) -> None:
    """Worker-process entry point: serve the pipe until told to stop.

    Builds the runtime (freezing the shard's engines once), then
    answers the strict request/reply protocol documented in the
    module docstring.  Any per-request failure is returned as an
    ``("error", traceback)`` reply — the worker itself stays up, so
    one poisoned batch cannot take a shard's tables with it.
    """
    runtime = ShardRuntime(config)
    try:
        while True:
            message = conn.recv()
            reply = runtime.handle(message)
            conn.send(reply)
            if reply[0] == "bye":
                break
    except (EOFError, KeyboardInterrupt):
        pass  # frontend went away; exit quietly
    finally:
        conn.close()
