"""Sharded asyncio serving tier: admission, backpressure, fan-out, merge.

This is the "millions of users" face of the serving stack: the same
stage pipeline as :class:`~repro.serve.service.LookupService`
(validate → admit → partition → walk → scatter → account), with the
walk fanned out across **shard worker processes**
(:mod:`repro.serve.shard`) behind an asyncio front end.  One batch
flows as:

1. **validate** — :func:`repro.serve.stages.validate_batch`, same
   strict typed rejection as the library call;
2. **partition** — one global
   :meth:`~repro.virt.distributor.Distributor.partition`; because
   every shard owns a *contiguous VN range* and the partition sorts
   by VNID, each shard's sub-batch is one contiguous slice of the
   sorted batch — zero extra copies before the pipe;
3. **admit** — per-VN admission via
   :func:`repro.virt.qos.check_admission` against each shard's
   fault-degraded capacity (head-of-slice shedding, exactly the
   single-process discipline), then **backpressure**: each shard has
   a bounded dispatch queue
   (:attr:`~repro.faults.DegradationPolicy.max_queue_batches`); a
   full queue sheds the whole sub-batch with
   :data:`~repro.faults.SHED_RESULT` instead of queueing without
   bound;
4. **walk** — shards answer concurrently in their own processes (the
   pipe round-trip runs in the default executor so the event loop
   never blocks on a worker);
5. **scatter / account** — results scatter back to arrival order and
   the shard traces reassemble into one *global-shaped*
   :class:`~repro.serve.service.ServeTrace`, so the frontend's single
   :class:`~repro.obs.power.PowerTelemetrySampler` attributes power
   exactly as a single-process service would — per-shard watts are
   that sample cut along shard boundaries, which is why they sum to
   the single-process total.

Every shard also ships back a
:class:`~repro.virt.queueing.QueueValidation` (its measured Lindley
queue vs the M/D/1 prediction); the frontend keeps the latest per
shard in :attr:`ShardedLookupService.queue_validations`.

Metrics appear on two surfaces: shard-local registries (scraped and
merged through shard-labeled snapshots — :meth:`ShardedLookupService.scrape`
/ :meth:`~ShardedLookupService.merged_snapshot`) and the frontend's
own ``repro_frontend_*`` / ``repro_shard_power_watts`` families on
the process registry.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp
import threading
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.metrics import throughput_gbps
from repro.errors import ConfigurationError, MalformedBatchError, ShardError
from repro.faults.plan import FaultPlan
from repro.faults.policy import SHED_RESULT, DegradationPolicy
from repro.fpga.dvs import NOMINAL_POINT, OperatingPoint
from repro.iplookup.pipeline import PipelineTrace, trace_from_walk
from repro.iplookup.rib import RoutingTable
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.snapshot import RegistrySnapshot, merge_snapshots, snapshot_registry
from repro.obs.tracing import Tracer, default_tracer
from repro.serve.service import ServeTrace, effective_load_fraction
from repro.serve.shard import (
    ShardBatchRequest,
    ShardBatchResult,
    ShardConfig,
    ShardRuntime,
    shard_worker,
)
from repro.serve.stages import admit_count, validate_batch
from repro.virt.distributor import Distributor
from repro.virt.qos import AdmissionReport, check_admission
from repro.virt.queueing import LatencyReport, QueueValidation
from repro.virt.schemes import Scheme

if TYPE_CHECKING:  # the sampler/governor pull in the experiment stack
    from repro.obs.power import PowerTelemetrySampler
    from repro.power.governor import DvsGovernor

__all__ = ["ShardedLookupService", "shard_vn_bounds"]


def shard_vn_bounds(k: int, n_shards: int) -> tuple[int, ...]:
    """Contiguous VN split: boundaries of each shard's range.

    Returns ``n_shards + 1`` offsets; shard *s* owns global VNs
    ``bounds[s]..bounds[s+1]-1``.  VNs spread as evenly as possible,
    earlier shards taking the remainder (the same convention as
    :func:`numpy.array_split`).
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > k:
        raise ConfigurationError(
            f"cannot spread {k} virtual network(s) over {n_shards} shards"
        )
    base, extra = divmod(k, n_shards)
    bounds = [0]
    for s in range(n_shards):
        bounds.append(bounds[-1] + base + (1 if s < extra else 0))
    return tuple(bounds)


class _ShardHandle:
    """One shard's frontend-side state: config, transport, queue."""

    def __init__(
        self, config: ShardConfig, vn_lo: int, vn_hi: int, inline: bool = False
    ):
        self.config = config
        self.vn_lo = vn_lo
        self.vn_hi = vn_hi
        self.inline = inline
        self.queue: asyncio.Queue | None = None
        self.task: asyncio.Task | None = None
        # process transport state
        self.process: mp.Process | None = None
        self.conn = None
        # inline transport state
        self.runtime: ShardRuntime | None = None
        # the pipe is strict request/reply; the dispatcher serializes
        # all async traffic, and this lock keeps shutdown (which talks
        # to the worker from outside the dispatcher) honest too
        self.lock = threading.Lock()

    @property
    def k_local(self) -> int:
        return self.vn_hi - self.vn_lo

    @property
    def n_engines(self) -> int:
        return self.config.scheme.engines_required(self.k_local)

    def start_transport(self) -> None:
        """Boot the worker (process transport) or build it inline."""
        if self.runtime is not None or self.process is not None:
            return
        if self.inline:
            self.runtime = ShardRuntime(self.config)
            return
        parent, child = mp.Pipe(duplex=True)
        process = mp.Process(
            target=shard_worker,
            args=(child, self.config),
            daemon=True,
            name=f"repro-shard-{self.config.shard_id}",
        )
        process.start()
        child.close()
        self.conn = parent
        self.process = process

    def roundtrip(self, message: tuple[str, object]) -> tuple[str, object]:
        """One synchronous request/reply exchange (runs in the executor)."""
        with self.lock:
            if self.runtime is not None:
                return self.runtime.handle(message)
            if self.conn is None:
                raise ShardError(
                    f"shard {self.config.shard_id} transport is not started"
                )
            try:
                self.conn.send(message)
                return self.conn.recv()
            except (EOFError, BrokenPipeError, OSError) as error:
                raise ShardError(
                    f"shard {self.config.shard_id} worker died: {error}"
                ) from error

    def close_transport(self) -> None:
        """Stop the worker and reclaim the process (idempotent)."""
        if self.runtime is not None:
            self.runtime = None
            return
        if self.conn is not None:
            try:
                self.roundtrip(("stop", None))
            except ShardError:
                pass
            self.conn.close()
            self.conn = None
        if self.process is not None:
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.terminate()
                self.process.join(timeout=5.0)
            self.process = None


class ShardedLookupService:
    """Asyncio front end over shard worker processes.

    The async twin of :class:`~repro.serve.service.LookupService`:
    same constructor vocabulary plus sharding knobs, an ``async``
    serve path, and explicit lifecycle (``start``/``stop``, or use it
    as an async context manager).

    Parameters
    ----------
    tables:
        One routing table per virtual network (K = len(tables)).
    scheme:
        Deployment scheme.  NV/VS shards own contiguous VN ranges and
        their per-VN engines; VM gives each shard a merged engine over
        its own VN range.
    n_shards:
        Worker processes to fan out across (1 ≤ n_shards ≤ K).
    transport:
        ``"process"`` (default) boots one worker process per shard
        over a pipe; ``"inline"`` hosts the shard runtimes in-process
        — same code path minus the pipe, for deterministic tests.
    fault_plan:
        *Global* fault plan; engine-targeted faults are re-scoped to
        each shard's local engines
        (:meth:`~repro.faults.FaultPlan.scoped_to_engines`), while
        device-wide storms reach every shard.
    policy:
        Degradation knobs; :attr:`~repro.faults.DegradationPolicy.max_queue_batches`
        bounds each shard's dispatch queue (backpressure).
    power_sampler:
        Optional sampler fed the reassembled *global* trace each
        batch, so per-VN/per-shard power attribution matches the
        single-process value on the same workload.
    metrics:
        Enable each shard's private registry (per-shard counters for
        the scrape-merge path).
    Other parameters mirror :class:`~repro.serve.service.LookupService`.
    """

    def __init__(
        self,
        tables: list[RoutingTable],
        scheme: Scheme = Scheme.VM,
        *,
        n_shards: int = 2,
        n_stages: int | None = 28,
        frequency_mhz: float = 200.0,
        offered_load_fraction: float = 0.5,
        fault_plan: FaultPlan | None = None,
        policy: DegradationPolicy | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        power_sampler: "PowerTelemetrySampler | None" = None,
        transport: str = "process",
        metrics: bool = True,
    ):
        if not tables:
            raise ConfigurationError("need at least one routing table")
        if transport not in ("process", "inline"):
            raise ConfigurationError(
                f"transport must be 'process' or 'inline', got {transport!r}"
            )
        if frequency_mhz <= 0:
            raise ConfigurationError("frequency_mhz must be positive")
        if not 0.0 <= offered_load_fraction < 1.0:
            raise ConfigurationError(
                "offered_load_fraction must be in [0, 1) for a stable queue"
            )
        self.k = len(tables)
        self.scheme = scheme
        if n_stages is None:
            # auto-depth, resolved *before* the shard configs so every
            # shard builds the same pipeline depth: a unibit trie is
            # exactly as deep as its longest prefix, so the deepest
            # table fixes the fleet-wide stage count (real RIB
            # snapshots carry /32s — deeper than the paper's 28)
            n_stages = max(max(t.max_length() for t in tables), 1)
        self.n_stages = n_stages
        self.frequency_mhz = frequency_mhz
        self.base_frequency_mhz = frequency_mhz
        self.offered_load_fraction = offered_load_fraction
        self._nominal_load_fraction = offered_load_fraction
        self._operating_point = NOMINAL_POINT
        self._pending_reconfig: tuple[OperatingPoint, float] | None = None
        self._governor: "DvsGovernor | None" = None
        self.fault_plan = fault_plan
        self.policy = policy if policy is not None else DegradationPolicy()
        self._registry = registry if registry is not None else default_registry()
        self._tracer = tracer if tracer is not None else default_tracer()
        self.power_sampler = power_sampler
        self.distributor = Distributor(k=self.k)
        self.bounds = shard_vn_bounds(self.k, n_shards)
        self.batches_served = 0
        self.queue_validations: dict[int, QueueValidation] = {}
        self.admission_reports: dict[int, AdmissionReport] = {}
        self._started = False
        self.shards: list[_ShardHandle] = []
        for shard_id in range(n_shards):
            lo, hi = self.bounds[shard_id], self.bounds[shard_id + 1]
            plan = self._scoped_plan(fault_plan, lo, hi)
            config = ShardConfig(
                shard_id=shard_id,
                vn_base=lo,
                tables=tuple(tables[lo:hi]),
                scheme=scheme,
                n_stages=n_stages,
                frequency_mhz=frequency_mhz,
                offered_load_fraction=offered_load_fraction,
                fault_plan=plan,
                policy=self.policy,
                metrics=metrics,
            )
            self.shards.append(
                _ShardHandle(config, lo, hi, inline=transport == "inline")
            )

    def _scoped_plan(
        self, plan: FaultPlan | None, lo: int, hi: int
    ) -> FaultPlan | None:
        """Project the global plan onto one shard's engines.

        NV/VS bind global engine *i* to VN *i*, so the shard sees the
        engines of its VN range rebased to local indices.  VM has one
        merged engine per shard; engine-0 faults (the only valid VM
        target) apply to every shard's merged engine — there is no
        narrower addressable unit in that scheme.
        """
        if plan is None:
            return None
        if self.scheme.shares_engine:
            return plan
        return plan.scoped_to_engines(tuple(range(lo, hi)))

    # -- DVS operating point ----------------------------------------------

    @property
    def operating_point(self) -> OperatingPoint:
        """The DVS operating point the tier currently runs at."""
        return self._operating_point

    def apply_operating_point(self, point: OperatingPoint) -> None:
        """Re-clock the whole tier to a DVS operating point.

        The voltage rail is device-wide, so one point re-clocks every
        shard.  Frontend bookkeeping (capacity, admission demands,
        power sampler) updates immediately; the shard broadcast rides
        the dispatch queues at the *start of the next served batch* —
        the pipe protocol is strict request/reply, and a decision made
        while a batch is accounted must never interleave with it.
        """
        scale = point.frequency_scale
        self._operating_point = point
        self.frequency_mhz = self.base_frequency_mhz * scale
        self.offered_load_fraction = effective_load_fraction(
            self._nominal_load_fraction, scale
        )
        self._pending_reconfig = (point, self._nominal_load_fraction)
        if self.power_sampler is not None:
            self.power_sampler.set_operating_point(point)

    def set_offered_load(self, fraction: float) -> None:
        """Change the modeled offered load (fraction of *base* capacity)."""
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(
                "offered_load_fraction must be in [0, 1) for a stable queue"
            )
        self._nominal_load_fraction = fraction
        self.apply_operating_point(self._operating_point)

    async def _flush_reconfig(self) -> None:
        """Broadcast a pending operating point to every shard runtime."""
        if self._pending_reconfig is None:
            return
        payload = self._pending_reconfig
        self._pending_reconfig = None
        loop = asyncio.get_running_loop()
        futures = []
        for handle in self.shards:
            future: asyncio.Future = loop.create_future()
            assert handle.queue is not None
            await handle.queue.put((("reconfig", payload), future))
            futures.append(future)
        for future in futures:
            await future

    # -- capacity ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_engines(self) -> int:
        """Engines across all shards (K for NV/VS, one merged per shard)."""
        return sum(handle.n_engines for handle in self.shards)

    def capacity_gbps(self) -> float:
        """Aggregate lookup capacity across every shard's engines."""
        return throughput_gbps(self.frequency_mhz, self.n_engines)

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "ShardedLookupService":
        """Boot the shard workers and their dispatchers."""
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._start_transports)
        for handle in self.shards:
            handle.queue = asyncio.Queue(maxsize=self.policy.max_queue_batches)
            handle.task = asyncio.create_task(self._dispatch_loop(handle))
        self._started = True
        return self

    def _start_transports(self) -> None:
        for handle in self.shards:
            handle.start_transport()

    async def stop(self) -> None:
        """Drain the dispatchers and stop every worker (idempotent)."""
        if not self._started:
            return
        for handle in self.shards:
            if handle.queue is not None:
                await handle.queue.put(None)
        for handle in self.shards:
            if handle.task is not None:
                await handle.task
                handle.task = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._close_transports)
        self._started = False

    def _close_transports(self) -> None:
        for handle in self.shards:
            handle.close_transport()

    async def __aenter__(self) -> "ShardedLookupService":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def _dispatch_loop(self, handle: _ShardHandle) -> None:
        """Per-shard dispatcher: pop the bounded queue, run the pipe
        round-trip in the executor, resolve the caller's future."""
        loop = asyncio.get_running_loop()
        assert handle.queue is not None
        while True:
            item = await handle.queue.get()
            if item is None:
                handle.queue.task_done()
                return
            message, future = item
            try:
                op, payload = await loop.run_in_executor(
                    None, handle.roundtrip, message
                )
            except Exception as error:  # worker/pipe death
                if not future.cancelled():
                    future.set_exception(
                        error
                        if isinstance(error, ShardError)
                        else ShardError(str(error))
                    )
            else:
                if future.cancelled():
                    pass
                elif op == "error":
                    future.set_exception(ShardError(str(payload)))
                else:
                    future.set_result(payload)
            handle.queue.task_done()

    # -- admission --------------------------------------------------------

    def _shard_admission(
        self,
        handle: _ShardHandle,
        offered: np.ndarray,
        n_total: int,
        batch_index: int,
    ) -> np.ndarray:
        """Per-VN admitted fractions for one shard's slice of the batch.

        Interprets the batch's VN mix as the offered traffic at the
        configured load fraction and runs
        :func:`repro.virt.qos.check_admission` against the shard's
        fault-degraded capacity.  An admissible shard admits
        everything; an oversubscribed one admits each VN's head up to
        the policy's shed-utilization bound of the remaining capacity;
        an offline shard admits nothing.  The report lands in
        :attr:`admission_reports` keyed by shard.
        """
        counts = offered[handle.vn_lo : handle.vn_hi].astype(float)
        k_local = handle.k_local
        if n_total == 0 or counts.sum() == 0:
            return np.ones(k_local)
        shares = counts / n_total
        demands = shares * self.offered_load_fraction * self.capacity_gbps()
        scales = np.ones(handle.n_engines)
        if handle.config.fault_plan is not None:
            scales = handle.config.fault_plan.context_at(
                batch_index
            ).capacity_scales(handle.n_engines)
        effective = throughput_gbps(self.frequency_mhz, handle.n_engines) * float(
            scales.mean()
        )
        if effective <= 0.0:
            return np.zeros(k_local)
        report = check_admission(effective, demands)
        self.admission_reports[handle.config.shard_id] = report
        if report.admissible:
            return np.ones(k_local)
        total_demand = float(sum(report.demands_gbps))
        factor = self.policy.shed_utilization * effective / total_demand
        return np.full(k_local, min(1.0, factor))

    # -- serving ----------------------------------------------------------

    async def serve(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> tuple[np.ndarray, ServeTrace]:
        """Answer one batch through the sharded tier.

        Same contract as :meth:`LookupService.serve`, asynchronously:
        next hops in arrival order plus a global-shaped
        :class:`ServeTrace`; shed lookups (qos admission, backpressure
        or shard-internal degradation) answer
        :data:`~repro.faults.SHED_RESULT`.
        """
        if not self._started:
            raise ShardError("service is not started; use 'async with' or start()")
        try:
            addresses, vnids = validate_batch(addresses, vnids, self.k)
        except MalformedBatchError as exc:
            self._count_malformed(exc)
            raise
        await self._flush_reconfig()
        start = time.perf_counter()
        batch_index = self.batches_served
        self.batches_served += 1
        n = len(addresses)
        part = self.distributor.partition(vnids)
        sorted_addresses = part.gather(addresses)
        sorted_vnids = part.gather(vnids)
        offered = np.bincount(vnids, minlength=self.k)
        vn_shed = np.zeros(self.k, dtype=np.int64)
        results = np.full(n, SHED_RESULT, dtype=np.int64)
        loop = asyncio.get_running_loop()
        pending: list[tuple[_ShardHandle, np.ndarray, asyncio.Future]] = []
        for handle in self.shards:
            admit = self._shard_admission(handle, offered, n, batch_index)
            pieces_a: list[np.ndarray] = []
            pieces_v: list[np.ndarray] = []
            pieces_pos: list[np.ndarray] = []
            for vn in range(handle.vn_lo, handle.vn_hi):
                sl = part.engine_slice(vn)
                keep = admit_count(
                    sl.stop - sl.start, admit[vn - handle.vn_lo], vn, vn_shed
                )
                kept = slice(sl.start, sl.start + keep)
                pieces_a.append(sorted_addresses[kept])
                pieces_v.append(sorted_vnids[kept] - handle.vn_lo)
                pieces_pos.append(part.order[kept])
            sub_addresses = np.concatenate(pieces_a) if pieces_a else np.array([], dtype=np.uint32)
            if len(sub_addresses) == 0:
                continue
            sub_vnids = np.concatenate(pieces_v)
            positions = np.concatenate(pieces_pos)
            request = ShardBatchRequest(
                batch_index=batch_index,
                addresses=sub_addresses,
                vnids=sub_vnids,
                queue_seed=batch_index * len(self.shards)
                + handle.config.shard_id,
            )
            future: asyncio.Future = loop.create_future()
            assert handle.queue is not None
            try:
                handle.queue.put_nowait((("serve", request), future))
            except asyncio.QueueFull:
                # backpressure: a saturated shard sheds the whole
                # sub-batch (admission sheds included) instead of
                # queueing without bound
                future.cancel()
                for vn in range(handle.vn_lo, handle.vn_hi):
                    sl = part.engine_slice(vn)
                    vn_shed[vn] = sl.stop - sl.start
                self._record_backpressure(handle)
                continue
            self._record_queue_depth(handle)
            pending.append((handle, positions, future))

        shard_results: dict[int, ShardBatchResult] = {}
        for handle, positions, future in pending:
            outcome = await future
            assert isinstance(outcome, ShardBatchResult)
            shard_results[handle.config.shard_id] = outcome
            results[positions] = outcome.results
            self.queue_validations[handle.config.shard_id] = outcome.queue
            # fold the shard's internal shedding (fault degradation)
            # into the global per-VN ledger
            for local_vn, count in enumerate(outcome.trace.vn_shed):
                if count:
                    vn_shed[handle.vn_lo + local_vn] += count
        trace = self._account(
            shard_results, offered, vn_shed, n, batch_index, start
        )
        self._publish(trace, shard_results, batch_index)
        return results, trace

    async def lookup_batch(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> np.ndarray:
        """Results-only convenience wrapper around :meth:`serve`."""
        results, _ = await self.serve(addresses, vnids)
        return results

    # -- accounting -------------------------------------------------------

    def _account(
        self,
        shard_results: dict[int, ShardBatchResult],
        offered: np.ndarray,
        vn_shed: np.ndarray,
        n: int,
        batch_index: int,
        start: float,
    ) -> ServeTrace:
        """Reassemble shard traces into one global-shaped ServeTrace.

        NV/VS: per-VN engine traces concatenate in global VN order (a
        shard that answered nothing contributes empty traces).  VM:
        the shards' merged-engine traces fold into a single engine
        trace — the global topology has one engine, and the power
        model attributes by lookup share, which summing preserves.
        """
        empty = np.array([], dtype=np.int64)
        engine_traces: list[PipelineTrace] = []
        retries = 0
        walk_failures = 0
        failed_engines: list[int] = []
        fault_labels: list[str] = []
        weights: list[float] = []
        reports: list[LatencyReport] = []
        for handle in self.shards:
            outcome = shard_results.get(handle.config.shard_id)
            if outcome is None:
                if not self.scheme.shares_engine:
                    engine_traces.extend(
                        trace_from_walk(empty, empty, self.n_stages)
                        for _ in range(handle.k_local)
                    )
                continue
            shard_trace = outcome.trace
            retries += shard_trace.retries
            walk_failures += shard_trace.walk_failures
            fault_labels.extend(shard_trace.fault_labels)
            weights.append(float(shard_trace.n_admitted))
            reports.append(shard_trace.latency)
            if self.scheme.shares_engine:
                failed_engines.extend(0 for _ in shard_trace.failed_engines)
            else:
                failed_engines.extend(
                    handle.vn_lo + e for e in shard_trace.failed_engines
                )
                engine_traces.extend(shard_trace.engine_traces)
        if self.scheme.shares_engine:
            merged = [
                t
                for outcome in shard_results.values()
                for t in outcome.trace.engine_traces
            ]
            engine_traces = [self._merge_engine_traces(merged)]
        latency = self._blend_latency(reports, weights)
        vn_counts = tuple(int(c) for c in (offered - vn_shed))
        return ServeTrace(
            scheme=self.scheme,
            n_packets=n,
            engine_traces=tuple(engine_traces),
            latency=latency,
            elapsed_s=time.perf_counter() - start,
            vn_counts=vn_counts,
            vn_shed=tuple(int(c) for c in vn_shed),
            retries=retries,
            walk_failures=walk_failures,
            failed_engines=tuple(sorted(set(failed_engines))),
            fault_labels=tuple(dict.fromkeys(fault_labels)),
        )

    def _merge_engine_traces(
        self, traces: list[PipelineTrace]
    ) -> PipelineTrace:
        """Fold shard merged-engine traces into the global single engine."""
        if not traces:
            empty = np.array([], dtype=np.int64)
            return trace_from_walk(empty, empty, self.n_stages)
        return PipelineTrace(
            results=np.concatenate([t.results for t in traces]),
            total_cycles=int(sum(t.total_cycles for t in traces)),
            accesses_per_stage=np.sum(
                [t.accesses_per_stage for t in traces], axis=0
            ),
            busy_cycles_per_stage=np.sum(
                [t.busy_cycles_per_stage for t in traces], axis=0
            ),
            n_packets=int(sum(t.n_packets for t in traces)),
        )

    def _blend_latency(
        self, reports: list[LatencyReport], weights: list[float]
    ) -> LatencyReport:
        """Admitted-load-weighted mean of the shard latency reports."""
        total = sum(weights)
        if not reports or total == 0:
            return LatencyReport(
                scheme_label=str(self.scheme),
                frequency_mhz=self.frequency_mhz,
                pipeline_ns=0.0,
                queueing_ns=0.0,
            )
        pipeline = sum(w * r.pipeline_ns for w, r in zip(weights, reports)) / total
        queueing = sum(w * r.queueing_ns for w, r in zip(weights, reports)) / total
        return LatencyReport(
            scheme_label=str(self.scheme),
            frequency_mhz=self.frequency_mhz,
            pipeline_ns=pipeline,
            queueing_ns=queueing,
        )

    # -- metrics ----------------------------------------------------------

    def _count_malformed(self, exc: MalformedBatchError) -> None:
        if self._registry.enabled:
            self._registry.counter(
                "repro_serve_errors_total",
                "Serve-path errors by kind",
                labels=("kind",),
            ).labels(exc.kind).inc()

    def _record_backpressure(self, handle: _ShardHandle) -> None:
        if self._registry.enabled:
            self._registry.counter(
                "repro_frontend_shed_batches_total",
                "Sub-batches shed by bounded-queue backpressure",
                labels=("scheme", "shard"),
            ).labels(self.scheme.name, handle.config.shard_id).inc()

    def _record_queue_depth(self, handle: _ShardHandle) -> None:
        if self._registry.enabled and handle.queue is not None:
            self._registry.gauge(
                "repro_frontend_queue_depth",
                "Dispatch-queue depth per shard, batches",
                labels=("scheme", "shard"),
            ).labels(self.scheme.name, handle.config.shard_id).set(
                handle.queue.qsize()
            )

    def _publish(
        self,
        trace: ServeTrace,
        shard_results: dict[int, ShardBatchResult],
        batch_index: int,
    ) -> None:
        """Frontend-side metrics, span and power for one served batch."""
        metrics_on = self._registry.enabled
        tracing_on = self._tracer.enabled
        if not metrics_on and not tracing_on:
            return
        with self._tracer.span(
            "frontend.batch",
            scheme=self.scheme.name,
            n_packets=trace.n_packets,
            n_shards=self.n_shards,
        ) as span:
            span.set("n_shed", trace.n_shed)
            span.set("elapsed_s", trace.elapsed_s)
            if not metrics_on:
                return
            scheme = self.scheme.name
            self._registry.counter(
                "repro_frontend_batches_total",
                "Batches served through the sharded frontend",
                labels=("scheme",),
            ).labels(scheme).inc()
            self._registry.counter(
                "repro_frontend_lookups_total",
                "Lookups admitted through the sharded frontend",
                labels=("scheme",),
            ).labels(scheme).inc(trace.n_admitted)
            if trace.n_shed:
                shed = self._registry.counter(
                    "repro_frontend_shed_lookups_total",
                    "Lookups shed by frontend admission or shard degradation",
                    labels=("scheme", "vn"),
                )
                for vn, count in enumerate(trace.vn_shed):
                    if count:
                        shed.labels(scheme, vn).inc(count)
            # the same tier-level gauges the single-process service
            # publishes, so the DVS governor samples one surface on
            # either tier: the reassembled global duty cycle and the
            # worst shard's measured queue wait
            self._registry.gauge(
                "repro_serve_duty_cycle",
                "Packet-weighted mean memory duty cycle of the last batch",
                labels=("scheme",),
            ).labels(scheme).set(trace.mean_duty_cycle())
            if self.queue_validations:
                worst_wait = max(
                    v.observed_wait_ns for v in self.queue_validations.values()
                )
                self._registry.gauge(
                    "repro_serve_queue_wait_ns",
                    "Measured mean M/D/1 input-queue wait of the last batch "
                    "at the realized (post-shedding) load",
                    labels=("scheme",),
                ).labels(scheme).set(worst_wait)
            if self.power_sampler is not None:
                write_rate = None
                if self.fault_plan is not None:
                    write_rate = self.fault_plan.context_at(batch_index).write_rate
                # measured duty, not the configured fraction — the
                # same satellite fix as LookupService.serve: live
                # power must track the load actually carried
                sample = self.power_sampler.observe(
                    trace,
                    duty_cycle=trace.mean_duty_cycle(),
                    write_rate=write_rate,
                )
                span.set("power_total_w", sample.total_w)
                watts = self._registry.gauge(
                    "repro_shard_power_watts",
                    "Power attributed to each shard's virtual networks",
                    labels=("scheme", "shard"),
                )
                for handle in self.shards:
                    shard_w = float(
                        sum(sample.per_vn_w[handle.vn_lo : handle.vn_hi])
                    )
                    watts.labels(scheme, handle.config.shard_id).set(shard_w)
            if self._governor is not None:
                self._governor.on_batch(self, trace)

    # -- scrape-merge -----------------------------------------------------

    async def scrape(self) -> list[RegistrySnapshot]:
        """Collect every shard's shard-labeled registry snapshot.

        Scrapes ride the same per-shard dispatch queue as traffic (the
        pipe is strict request/reply), so a scrape never interleaves
        with an in-flight batch; the frontend's own registry joins the
        list labeled ``shard="frontend"``.
        """
        if not self._started:
            raise ShardError("service is not started; use 'async with' or start()")
        loop = asyncio.get_running_loop()
        futures = []
        for handle in self.shards:
            future: asyncio.Future = loop.create_future()
            assert handle.queue is not None
            await handle.queue.put((("metrics", None), future))
            futures.append(future)
        snapshots = [await future for future in futures]
        snapshots.append(snapshot_registry(self._registry, shard="frontend"))
        return snapshots

    async def merged_snapshot(self) -> RegistrySnapshot:
        """One merged multi-shard snapshot (see :func:`merge_snapshots`)."""
        return merge_snapshots(await self.scrape())

    # -- verification -----------------------------------------------------

    async def verify(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> bool:
        """Cross-check a nominal batch against per-VN linear-scan oracles.

        Builds the oracle answers from the shard configs' tables (the
        frontend keeps no engines of its own) and serves the batch
        through the tier; admitted results must match the oracle
        everywhere (shed lookups are excluded — a faulted tier can
        still verify its admitted traffic).
        """
        results, _ = await self.serve(addresses, vnids)
        addresses, vnids = validate_batch(addresses, vnids, self.k)
        for handle in self.shards:
            for local_vn, table in enumerate(handle.config.tables):
                vn = handle.vn_lo + local_vn
                indices = np.flatnonzero(
                    (vnids == vn) & (results != SHED_RESULT)
                )
                if not len(indices):
                    continue
                oracle = table.lookup_linear_batch(addresses[indices])
                if not np.array_equal(results[indices], oracle):
                    return False
        return True
