"""Suppression comments: ``# repro-lint: disable=RULE[,RULE...]``.

Two scopes are supported:

* **line** — ``# repro-lint: disable=UNIT001`` on (or trailing) the
  offending line silences the named rules for that line only;
* **file** — ``# repro-lint: disable-file=FLT001`` anywhere in the
  module silences the named rules for the whole file.

``disable=all`` (either scope) silences every rule.  Comments are
found with :mod:`tokenize`, so the markers never match inside string
literals.

Every entry tracks which rules it actually silenced during a run, so
the runner's SUP001 sweep can report suppressions that no longer match
any finding (rotten suppressions).  SUP001 itself can only be disabled
through configuration, never by another inline comment.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppressions", "SuppressionEntry", "collect_suppressions"]

_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)

#: wildcard accepted in place of a rule id
ALL = "all"

#: the unused-suppression rule may not be silenced inline
_INLINE_IMMUNE = frozenset({"SUP001"})


@dataclass
class SuppressionEntry:
    """One ``disable`` comment and the rules it silenced this run."""

    line: int
    scope: str  #: ``line`` or ``file``
    rules: frozenset[str]
    used: set[str] = field(default_factory=set)

    def matches(self, rule: str, line: int) -> bool:
        """Whether this entry silences ``rule`` at ``line``."""
        if rule in _INLINE_IMMUNE:
            return False
        if ALL not in self.rules and rule not in self.rules:
            return False
        return self.scope == "file" or self.line == line

    def unused_rules(self) -> list[str]:
        """Rule ids this entry names that silenced nothing."""
        if ALL in self.rules:
            return [] if self.used else [ALL]
        return sorted(self.rules - self.used)


@dataclass
class Suppressions:
    """Parsed suppression state for one module."""

    entries: list[SuppressionEntry] = field(default_factory=list)

    @property
    def by_line(self) -> dict[int, set[str]]:
        """line number -> rule ids (line-scope entries only)."""
        out: dict[int, set[str]] = {}
        for entry in self.entries:
            if entry.scope == "line":
                out.setdefault(entry.line, set()).update(entry.rules)
        return out

    @property
    def file_wide(self) -> set[str]:
        """Rule ids disabled for the entire file."""
        out: set[str] = set()
        for entry in self.entries:
            if entry.scope == "file":
                out.update(entry.rules)
        return out

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced at ``line`` (marks entries used)."""
        hit = False
        for entry in self.entries:
            if entry.matches(rule, line):
                entry.used.add(ALL if ALL in entry.rules else rule)
                hit = True
        return hit


def _parse_rules(raw: str) -> frozenset[str]:
    return frozenset(part for part in re.split(r"[,\s]+", raw) if part)


def collect_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for suppression comments.

    Unreadable sources (tokenize errors) yield empty suppressions; the
    caller will surface the syntax error through :func:`ast.parse`.
    """
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(token.string)
            if not match:
                continue
            rules = _parse_rules(match.group("rules"))
            scope = "file" if match.group("scope") == "disable-file" else "line"
            result.entries.append(
                SuppressionEntry(line=token.start[0], scope=scope, rules=rules)
            )
    except tokenize.TokenError:
        pass
    return result
