"""Suppression comments: ``# repro-lint: disable=RULE[,RULE...]``.

Two scopes are supported:

* **line** — ``# repro-lint: disable=UNIT001`` on (or trailing) the
  offending line silences the named rules for that line only;
* **file** — ``# repro-lint: disable-file=FLT001`` anywhere in the
  module silences the named rules for the whole file.

``disable=all`` (either scope) silences every rule.  Comments are
found with :mod:`tokenize`, so the markers never match inside string
literals.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppressions", "collect_suppressions"]

_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)

#: wildcard accepted in place of a rule id
ALL = "all"


@dataclass
class Suppressions:
    """Parsed suppression state for one module."""

    #: line number -> set of rule ids (or ``{"all"}``)
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids disabled for the entire file
    file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced at ``line``."""
        if ALL in self.file_wide or rule in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return rules is not None and (ALL in rules or rule in rules)


def _parse_rules(raw: str) -> set[str]:
    return {part for part in re.split(r"[,\s]+", raw) if part}


def collect_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for suppression comments.

    Unreadable sources (tokenize errors) yield empty suppressions; the
    caller will surface the syntax error through :func:`ast.parse`.
    """
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(token.string)
            if not match:
                continue
            rules = _parse_rules(match.group("rules"))
            if match.group("scope") == "disable-file":
                result.file_wide |= rules
            else:
                line = token.start[0]
                result.by_line.setdefault(line, set()).update(rules)
    except tokenize.TokenError:
        pass
    return result
