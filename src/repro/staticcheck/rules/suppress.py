"""Suppression hygiene (SUP001).

A ``# repro-lint: disable=RULE`` comment is a standing exception; once
the underlying finding is fixed (or the rule retired) the comment is
dead weight that hides future regressions at that line.  SUP001
reports every suppression that silenced nothing during the run.

The sweep itself lives in the runner (it must observe the *complete*
finding set, per-file and project scope alike); this class gives the
rule an id, a catalog entry and a configuration handle.  SUP001 is
deliberately immune to inline ``disable`` comments — silencing the
"your silencer is dead" message with another silencer would let
suppressions rot forever.  Disable it via ``ignore = ["SUP001"]`` in
``pyproject.toml`` if a tree really wants that.
"""

from __future__ import annotations

from repro.staticcheck.registry import Rule, register

__all__ = ["UnusedSuppression"]


@register
class UnusedSuppression(Rule):
    """SUP001: a disable comment that no longer matches any finding."""

    id = "SUP001"
    name = "unused-suppression"
    description = "disable comments must still match a finding (config-only disable)"
    #: driven by the runner after all other rules have reported
    scope = "post"
    default_options = {}
