"""Async/process-pool readiness rules (CONC001–CONC003).

The sharded serving tier (:mod:`repro.serve.frontend`) puts an
``async def`` front-end ahead of shard worker processes.  These rules
lint the codebase for the classic ways that architecture goes wrong:

* **CONC001** — a blocking call (``time.sleep``, ``open``,
  ``subprocess`` …, a pipe ``.recv()``, or the CPU-bound trie
  ``.walk_batch()``) reachable from an ``async def`` body stalls the
  event loop for every connection, not just the caller;
* **CONC002** — a function submitted to an executor mutates
  module-level shared state: in a process pool the mutation silently
  lands in the child's copy, in a thread pool it races;
* **CONC003** — a function handed to another worker — via
  ``executor.submit``, ``pool.map``, ``Process(target=...)`` or
  ``loop.run_in_executor`` — carries an unpicklable default argument
  (``lambda``, ``threading.Lock()`` …), which fails only at submit
  time, on the first call that relies on the default;
* **CONC004** — a closure defined inside a loop reads the loop
  variable from the enclosing scope: the name is resolved at *call*
  time, so every deferred callable sees the last iteration's value
  (the retry-thunk bug fixed in the serving layer).  Bind the value
  at definition time with a default argument (``lambda t=t: ...``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.staticcheck.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.project import ProjectAnalysis
    from repro.staticcheck.visitor import ModuleContext

__all__ = [
    "BlockingInAsync",
    "ExecutorSharedState",
    "UnpicklableDefault",
    "LateBindingClosure",
]

_POOL_CLASSES = ("ProcessPoolExecutor", "ThreadPoolExecutor", "Pool")


def _pool_hint(project: "ProjectAnalysis", summary, site) -> str | None:
    """Constructor class of the submit receiver, when statically known."""
    recv = site.pool_class
    if recv is None:
        return None
    root = recv.split(".")[0]
    for fn in summary.functions.values():
        cls = fn.constructed.get(root)
        if cls in _POOL_CLASSES:
            return cls
    if any(token in root.lower() for token in ("pool", "executor")):
        return "executor"
    return None


@register
class BlockingInAsync(Rule):
    """CONC001: blocking calls reachable from ``async def`` bodies."""

    id = "CONC001"
    name = "blocking-in-async"
    description = "async def bodies must not (transitively) block the event loop"
    scope = "project"
    default_options = {}

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag blocking effects in the closure of every async function."""
        for fn in sorted(project.functions.values(), key=lambda f: f.qualname):
            if not fn.is_async:
                continue
            for holder, effect in project.effects_reachable_from(
                fn.qualname, kinds={"blocking"}
            ):
                where = (
                    "directly"
                    if holder.qualname == fn.qualname
                    else f"via '{holder.qualname}'"
                )
                self.report_at(
                    project.modules[holder.module].path,
                    effect.line,
                    effect.col,
                    f"{effect.detail} {where} inside async "
                    f"'{fn.qualname}' blocks the event loop; await an "
                    f"async equivalent or push it to an executor",
                )


@register
class ExecutorSharedState(Rule):
    """CONC002: executor-submitted functions mutating module state."""

    id = "CONC002"
    name = "executor-shared-state"
    description = "functions submitted to executors must not mutate module-level state"
    scope = "project"
    default_options = {}

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag submit sites whose target mutates globals (transitively)."""
        for summary, site in project.submit_sites():
            if site.via == "map" and _pool_hint(project, summary, site) is None:
                continue  # bare ``.map`` is usually list/dict-like, not a pool
            if site.target is None:
                continue
            target = project.resolve_in_module(summary, site.target)
            if target is None:
                continue
            for holder, effect in project.effects_reachable_from(
                target.qualname, kinds={"global_mut"}
            ):
                self.report_at(
                    summary.path,
                    site.line,
                    site.col,
                    f"'{site.target}' submitted to an executor {effect.detail} "
                    f"(in '{holder.qualname}' at {holder.module}:{effect.line}); "
                    f"shared state does not propagate across workers",
                )


@register
class UnpicklableDefault(Rule):
    """CONC003: unpicklable defaults on executor-submitted functions."""

    id = "CONC003"
    name = "unpicklable-default"
    description = "process-pool targets must not carry unpicklable default arguments"
    scope = "project"
    default_options = {}

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag submit targets whose defaults cannot cross pickling."""
        for summary, site in project.submit_sites():
            if site.target is None:
                continue
            target = project.resolve_in_module(summary, site.target)
            if target is None or not target.unpicklable_defaults:
                continue
            target_path = project.modules[target.module].path
            for param, line, reason in target.unpicklable_defaults:
                self.report_at(
                    target_path,
                    line,
                    target.col,
                    f"'{target.qualname}' is submitted to an executor "
                    f"({summary.path}:{site.line}) but parameter '{param}' has "
                    f"an unpicklable {reason}",
                )


_FUNCTION_NODES = (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)


def _param_names(args: ast.arguments) -> set[str]:
    """Every name the function's own parameter list binds."""
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


@register
class LateBindingClosure(Rule):
    """CONC004: loop variables captured late by closures in the loop body."""

    id = "CONC004"
    name = "late-binding-closure"
    description = (
        "closures defined in a loop must bind loop variables at definition "
        "time (default arguments), not read them at call time"
    )
    default_options = {}

    def visit_For(self, node: ast.For, ctx: "ModuleContext") -> None:
        """Check closures in a ``for`` body against its targets."""
        self._check_loop(node, ctx)

    def visit_AsyncFor(self, node: ast.AsyncFor, ctx: "ModuleContext") -> None:
        """Check closures in an ``async for`` body against its targets."""
        self._check_loop(node, ctx)

    def _check_loop(self, loop: ast.For | ast.AsyncFor, ctx: "ModuleContext") -> None:
        targets = {
            name.id
            for name in ast.walk(loop.target)
            if isinstance(name, ast.Name)
        }
        if not targets:
            return
        for stmt in loop.body + loop.orelse:
            for inner in ast.walk(stmt):
                if isinstance(inner, _FUNCTION_NODES):
                    self._check_closure(inner, targets, ctx)

    def _check_closure(
        self,
        fn: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef,
        targets: set[str],
        ctx: "ModuleContext",
    ) -> None:
        # only the *body* is deferred to call time — default-argument
        # expressions evaluate at definition, which is exactly the fix
        # this rule prescribes, so they must stay out of the scan
        body = [fn.body] if isinstance(fn, ast.Lambda) else list(fn.body)
        bound = _param_names(fn.args)
        stored: set[str] = set()
        captured: dict[str, ast.Name] = {}
        for part in body:
            for sub in ast.walk(part):
                if not isinstance(sub, ast.Name):
                    continue
                if isinstance(sub.ctx, ast.Load):
                    if sub.id in targets:
                        captured.setdefault(sub.id, sub)
                else:  # Store / Del make the name function-local
                    stored.add(sub.id)
        for name in sorted(captured.keys() - bound - stored):
            use = captured[name]
            self.report(
                ctx,
                use.lineno,
                use.col_offset,
                f"closure reads loop variable '{name}' from the enclosing "
                f"scope at call time, so every deferred call sees the last "
                f"iteration's value; bind it at definition time "
                f"('{name}={name}' in the parameter list)",
            )
