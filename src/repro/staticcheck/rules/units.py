"""Unit-safety rules (UNIT001, UNIT002).

These are the rules closest to the paper: every power figure
(Figs. 5–8) flows through µW→W, mW→W and MHz→Hz conversions, and a
single transposed exponent corrupts the entire evaluation while
remaining plausible on screen.  All conversions must therefore go
through :mod:`repro.units`, and a function whose *name* claims a unit
must actually return that unit.
"""

from __future__ import annotations

import ast
import re

from repro.staticcheck.registry import Rule, register
from repro.staticcheck.visitor import ModuleContext, identifiers_in

__all__ = ["BareConversionFactor", "UnitSuffixMismatch", "DIMENSIONS"]

#: unit-name suffix -> dimension; units of the same dimension are
#: interconvertible (and therefore confusable)
DIMENSIONS = {
    "w": "power",
    "uw": "power",
    "mw": "power",
    "mhz": "frequency",
    "hz": "frequency",
    "mb": "memory",
    "bits": "memory",
    "nj": "energy",
    "pj": "energy",
    "j": "energy",
    "ns": "time",
    "ms": "time",
}

_CONVERSION_CALL = re.compile(r"^([a-z]+)_to_([a-z]+)$")


def _is_unit_context(text_parts: list[str], pattern: re.Pattern[str]) -> bool:
    return any(pattern.search(part.lower()) for part in text_parts)


@register
class BareConversionFactor(Rule):
    """UNIT001: bare numeric conversion factors in unit-bearing expressions.

    A multiplication or division by a known scale factor (``1e-6``,
    ``1e6``, ``1e3`` …) in an expression that mentions power,
    frequency, energy or time quantities must use a
    :mod:`repro.units` helper instead, so the conversion is named and
    greppable.  Byte/bit factors (``8``, ``1024``) are flagged only
    when the expression mentions bits or bytes, to avoid claiming
    every small integer.
    """

    id = "UNIT001"
    name = "bare-conversion-factor"
    description = "scale factors in unit expressions must go through repro.units"
    default_options = {
        "factors": [1e-12, 1e-9, 1e-6, 1e-3, 1e3, 1e6, 1e9, 1e12],
        "byte-factors": [8, 1024],
        "context-pattern": (
            r"(^|_)(u?w|mw|watts?|power|freq|frequency|m?hz|gbps|"
            r"joules?|nj|pj|energy|ns|ms|secs?|seconds?|latency)(_|$)"
        ),
        "byte-context-pattern": r"(^|_)(bits?|bytes?|kib|mib|octets?)(_|$)",
        # modules allowed to spell factors out (the defining module)
        "allow-modules": [],
    }

    def __init__(self, options):
        super().__init__(options)
        self._context = re.compile(options["context-pattern"])
        self._byte_context = re.compile(options["byte-context-pattern"])
        self._factors = set(float(f) for f in options["factors"])
        self._byte_factors = set(int(f) for f in options["byte-factors"])
        self._allowed_module = False

    def begin_module(self, ctx: ModuleContext) -> None:
        """Resolve whether this module may spell factors out."""
        path = ctx.path.as_posix()
        self._allowed_module = any(
            path.endswith(allowed) for allowed in self.options["allow-modules"]
        )

    def visit_BinOp(self, node: ast.BinOp, ctx: ModuleContext) -> None:
        """Flag known scale factors multiplied/divided in unit context."""
        if self._allowed_module or not isinstance(node.op, (ast.Mult, ast.Div)):
            return
        names = sorted(identifiers_in(node))
        if ctx.current_function is not None:
            names.append(ctx.current_function.name)
        for operand in (node.left, node.right):
            if not isinstance(operand, ast.Constant):
                continue
            value = operand.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if float(value) in self._factors and _is_unit_context(names, self._context):
                self.report(
                    ctx,
                    operand.lineno,
                    operand.col_offset,
                    f"bare conversion factor {value!r} in a unit expression; "
                    f"use a repro.units helper",
                )
            elif (
                isinstance(value, int)
                and value in self._byte_factors
                and _is_unit_context(names, self._byte_context)
            ):
                self.report(
                    ctx,
                    operand.lineno,
                    operand.col_offset,
                    f"bare byte/bit factor {value!r}; use repro.units constants "
                    f"(BITS_PER_BYTE, KIB, ...)",
                )


@register
class UnitSuffixMismatch(Rule):
    """UNIT002: function names that claim one unit must not return another.

    ``def total_power_w(...)`` returning ``w_to_mw(...)`` compiles,
    runs, and is wrong by 10³.  When the returned expression is (up to
    a sign) a single ``<a>_to_<b>`` conversion call, ``b`` must agree
    with the unit suffix the function name claims whenever both units
    share a dimension.
    """

    id = "UNIT002"
    name = "unit-suffix-mismatch"
    description = "unit-suffixed functions must return the unit they claim"
    default_options = {}

    def visit_Return(self, node: ast.Return, ctx: ModuleContext) -> None:
        """Check returned conversions against the claimed name suffix."""
        function = ctx.current_function
        if function is None or node.value is None:
            return
        suffix = function.name.rsplit("_", 1)[-1]
        claimed = DIMENSIONS.get(suffix)
        if claimed is None:
            return
        value: ast.expr = node.value
        while isinstance(value, ast.UnaryOp):
            value = value.operand
        if not isinstance(value, ast.Call):
            return
        callee = value.func
        name = callee.id if isinstance(callee, ast.Name) else (
            callee.attr if isinstance(callee, ast.Attribute) else None
        )
        if name is None:
            return
        match = _CONVERSION_CALL.match(name)
        if match is None:
            return
        target = match.group(2)
        if DIMENSIONS.get(target) == claimed and target != suffix:
            self.report(
                ctx,
                node.lineno,
                node.col_offset,
                f"function '{function.name}' claims unit '{suffix}' but returns "
                f"a value converted to '{target}' via {name}()",
            )
