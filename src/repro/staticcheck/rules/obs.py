"""Metrics/span hygiene rules (OBS001–OBS004).

docs/OBSERVABILITY.md (plus the fault-metric tables in
docs/ROBUSTNESS.md) is the catalog of record for every metric family
and span the runtime may emit; per-shard scrape-merging in the planned
serving tier relies on names and label sets being consistent across
processes.  These rules parse the markdown catalogs and check every
registration site in code against them:

* **OBS001** — a metric name used in code is missing from the catalog;
* **OBS002** — a metric's label set disagrees with the catalog;
* **OBS003** — a span name is missing from the span catalog
  (f-string spans match catalog wildcards like ``fault.<kind>``);
* **OBS004** — a histogram observed with a non-float literal.

Catalog tables need a header row containing a ``label`` column; label
cells may carry backticked label names with parenthesized value hints,
e.g. ``` `outcome` (`hit`/`miss`) ``` — the hints are stripped.
"""

from __future__ import annotations

import fnmatch
import re
from pathlib import Path
from typing import TYPE_CHECKING

from repro.staticcheck.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.project import ProjectAnalysis

__all__ = [
    "MetricNotInCatalog",
    "MetricLabelMismatch",
    "SpanNotInCatalog",
    "HistogramIntLiteral",
    "parse_metric_catalog",
    "parse_span_catalog",
]

_BACKTICK = re.compile(r"`([^`]+)`")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_PARENS = re.compile(r"\([^)]*\)")

_DEFAULT_OPTIONS = {
    "catalog-files": ["docs/OBSERVABILITY.md", "docs/ROBUSTNESS.md"],
    "metric-prefix": "repro_",
}


def _table_rows(text: str) -> list[list[str]]:
    """All markdown table rows as stripped cell lists."""
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("|") and line.endswith("|"):
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            rows.append(cells)
    return rows


def parse_metric_catalog(files: list[Path], prefix: str = "repro_") -> dict[str, set[str]]:
    """``{metric name: label set}`` parsed from markdown catalog tables."""
    catalog: dict[str, set[str]] = {}
    for path in files:
        if not path.is_file():
            continue
        rows = _table_rows(path.read_text(encoding="utf-8"))
        label_col = 1
        for cells in rows:
            lowered = [cell.lower() for cell in cells]
            if any("label" in cell for cell in lowered) and not any(
                prefix in cell for cell in cells
            ):
                # header row: remember where the label column sits
                for index, cell in enumerate(lowered):
                    if "label" in cell:
                        label_col = index
                continue
            if not cells:
                continue
            names = _BACKTICK.findall(cells[0])
            if len(names) != 1 or not names[0].startswith(prefix):
                continue
            labels: set[str] = set()
            if label_col < len(cells):
                cell = _PARENS.sub("", cells[label_col])
                for token in _BACKTICK.findall(cell):
                    if _LABEL_NAME.match(token):
                        labels.add(token)
            catalog[names[0]] = labels
    return catalog


def parse_span_catalog(files: list[Path]) -> list[str]:
    """Span-name patterns (``<var>`` placeholders become ``*`` globs)."""
    patterns: list[str] = []
    for path in files:
        if not path.is_file():
            continue
        for cells in _table_rows(path.read_text(encoding="utf-8")):
            if not cells:
                continue
            names = _BACKTICK.findall(cells[0])
            if len(names) != 1:
                continue
            name = names[0]
            if not re.match(r"^[a-z][a-z0-9_.]*(\.<[a-z_]+>)?$", name):
                continue
            if "." not in name:
                continue
            patterns.append(re.sub(r"<[a-z_]+>", "*", name))
    return patterns


class _CatalogRule(Rule):
    """Shared catalog loading for the OBS pack."""

    scope = "project"
    default_options = dict(_DEFAULT_OPTIONS)

    def catalog_files(self, project: "ProjectAnalysis") -> list[Path]:
        """Configured catalog paths resolved against the project root."""
        root = project.root or Path(".")
        return [root / f for f in self.options.get("catalog-files", [])]


@register
class MetricNotInCatalog(_CatalogRule):
    """OBS001: metric names used in code must appear in the docs catalog."""

    id = "OBS001"
    name = "metric-not-in-catalog"
    description = "metric names must be catalogued in docs/OBSERVABILITY.md"

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag registrations whose metric name is uncatalogued."""
        catalog = parse_metric_catalog(
            self.catalog_files(project), self.options.get("metric-prefix", "repro_")
        )
        if not catalog:
            return  # no catalog found — stay quiet rather than flag everything
        for summary, use in project.metric_uses():
            if use.name not in catalog:
                self.report_at(
                    summary.path,
                    use.line,
                    use.col,
                    f"metric '{use.name}' ({use.kind}) is not in the "
                    f"observability catalog; document it or fix the name",
                )


@register
class MetricLabelMismatch(_CatalogRule):
    """OBS002: metric label sets must match the docs catalog."""

    id = "OBS002"
    name = "metric-label-mismatch"
    description = "metric label sets must match the catalog entry"

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag registrations whose labels disagree with the catalog."""
        catalog = parse_metric_catalog(
            self.catalog_files(project), self.options.get("metric-prefix", "repro_")
        )
        if not catalog:
            return
        for summary, use in project.metric_uses():
            expected = catalog.get(use.name)
            if expected is None:
                continue  # OBS001's problem
            if use.labels is None:
                self.report_at(
                    summary.path,
                    use.line,
                    use.col,
                    f"metric '{use.name}' is registered with a dynamic label "
                    f"set; the catalog requires {sorted(expected) or 'no labels'}",
                )
            elif set(use.labels) != expected:
                self.report_at(
                    summary.path,
                    use.line,
                    use.col,
                    f"metric '{use.name}' labels {sorted(use.labels)} disagree "
                    f"with the catalog {sorted(expected)}",
                )


@register
class SpanNotInCatalog(_CatalogRule):
    """OBS003: span names must appear in the span catalog."""

    id = "OBS003"
    name = "span-not-in-catalog"
    description = "span names must be catalogued in docs/OBSERVABILITY.md"

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag span starts whose name matches no catalog pattern."""
        patterns = parse_span_catalog(self.catalog_files(project))
        if not patterns:
            return
        for summary, use in project.span_uses():
            if any(fnmatch.fnmatchcase(use.pattern, pattern) for pattern in patterns):
                continue
            kind = "dynamic span" if use.dynamic else "span"
            self.report_at(
                summary.path,
                use.line,
                use.col,
                f"{kind} '{use.pattern}' is not in the span catalog; "
                f"document it or fix the name",
            )


@register
class HistogramIntLiteral(_CatalogRule):
    """OBS004: histograms must be observed with float values."""

    id = "OBS004"
    name = "histogram-int-literal"
    description = "observe() literals must be floats (unit-bearing seconds)"

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag ``observe(<non-float literal>)`` call sites."""
        for summary, use in project.observe_uses():
            self.report_at(
                summary.path,
                use.line,
                use.col,
                f"histogram observed with a non-float literal ({use.literal}); "
                f"write the value as a float so the unit is explicit",
            )
