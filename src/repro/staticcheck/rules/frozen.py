"""Frozen-structure mutation rules (FRZ001, FRZ002).

``MergedTrie`` (PR 2) and ``PatriciaTrie`` freeze their lookup arrays
at construction; the vectorized hot paths, the merged-view
invalidation bookkeeping, and the per-VN power attribution all assume
the structures never change afterwards.  That contract lives in
docstrings — these rules make it machine-checked:

* **FRZ001** — a direct write to an attribute of a frozen structure:
  ``self.x = ...`` in a method outside the allowed constructor set, or
  ``trie.attr = ...`` / ``setattr(trie, ...)`` / ``trie.attr.append``
  on a variable constructed from (or annotated as) a frozen class;
* **FRZ002** — the same mutation laundered through a helper: the
  frozen instance is passed to a function whose (transitive) effect
  summary mutates that parameter.

The frozen class list and per-class allowed mutator methods come from
rule options, so new frozen structures opt in via ``pyproject.toml``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.staticcheck.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.project import FunctionSummary, ProjectAnalysis

__all__ = ["FrozenDirectMutation", "FrozenMutationViaHelper", "DEFAULT_FROZEN_CLASSES"]

#: class -> methods allowed to mutate ``self`` (construction phase)
DEFAULT_FROZEN_CLASSES: dict[str, list[str]] = {
    "MergedTrie": ["__init__"],
    "PatriciaTrie": ["__init__", "_new_node", "_build"],
}


def _frozen_roots(fn: "FunctionSummary", frozen: dict[str, list[str]]) -> dict[str, str]:
    """Names in ``fn`` statically known to hold frozen instances."""
    roots: dict[str, str] = {}
    for var, cls in fn.constructed.items():
        if cls in frozen:
            roots[var] = cls
    for param, cls in fn.param_annotations.items():
        if cls in frozen:
            roots[param] = cls
    return roots


class _FrozenRule(Rule):
    """Shared option handling for the FRZ pack."""

    scope = "project"
    default_options = {"frozen-classes": DEFAULT_FROZEN_CLASSES}

    def frozen_classes(self) -> dict[str, list[str]]:
        """Normalized ``{class: [allowed methods]}`` option."""
        raw = self.options.get("frozen-classes", DEFAULT_FROZEN_CLASSES)
        if isinstance(raw, dict):
            return {cls: list(methods) for cls, methods in raw.items()}
        # plain list form: allow only __init__
        return {cls: ["__init__"] for cls in raw}


@register
class FrozenDirectMutation(_FrozenRule):
    """FRZ001: direct attribute write to a frozen structure post-freeze."""

    id = "FRZ001"
    name = "frozen-direct-mutation"
    description = "structures documented frozen must not be mutated after construction"

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag self-writes outside constructors and writes via bindings."""
        frozen = self.frozen_classes()
        for fn in sorted(project.functions.values(), key=lambda f: f.qualname):
            path = project.modules[fn.module].path
            # methods of a frozen class mutating self outside the allowed set
            if (
                fn.enclosing_class in frozen
                and fn.localname.split(".")[-1] not in frozen[fn.enclosing_class]
            ):
                for mutation in fn.attr_mutations:
                    if mutation.root == "self":
                        self.report_at(
                            path,
                            mutation.line,
                            mutation.col,
                            f"'{fn.enclosing_class}' is frozen after construction; "
                            f"'{mutation.detail}' in method "
                            f"'{fn.localname.split('.')[-1]}' mutates it",
                        )
            # writes through local bindings / annotated params
            roots = _frozen_roots(fn, frozen)
            for mutation in fn.attr_mutations:
                cls = roots.get(mutation.root)
                if cls is not None:
                    self.report_at(
                        path,
                        mutation.line,
                        mutation.col,
                        f"'{mutation.detail}' mutates frozen '{cls}' instance "
                        f"'{mutation.root}'",
                    )


@register
class FrozenMutationViaHelper(_FrozenRule):
    """FRZ002: frozen structure mutated through a helper call."""

    id = "FRZ002"
    name = "frozen-helper-mutation"
    description = "helpers must not mutate frozen structures passed to them"

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag calls forwarding a frozen instance into a mutating callee."""
        frozen = self.frozen_classes()
        for fn in sorted(project.functions.values(), key=lambda f: f.qualname):
            roots = _frozen_roots(fn, frozen)
            if not roots:
                continue
            path = project.modules[fn.module].path
            for target, call in project.call_edges(fn.qualname):
                callee = project.functions.get(target)
                if callee is None:
                    continue
                mutated = project.mutated_params(target)
                if not mutated:
                    continue
                params = list(callee.params)
                if callee.enclosing_class and params and params[0] in ("self", "cls"):
                    params = params[1:]
                hits: list[tuple[str, str]] = []
                for pos, root in enumerate(call.arg_roots):
                    if root in roots and pos < len(params) and params[pos] in mutated:
                        hits.append((root, params[pos]))
                for kw, root in call.kwarg_roots.items():
                    if root in roots and kw in mutated:
                        hits.append((root, kw))
                for root, param in hits:
                    self.report_at(
                        path,
                        call.line,
                        call.col,
                        f"passes frozen '{roots[root]}' instance '{root}' to "
                        f"'{callee.qualname}', which mutates parameter '{param}'",
                    )
