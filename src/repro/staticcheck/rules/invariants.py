"""Invariant-coverage rule (INV001).

``@monotone_in`` / ``@nonnegative`` declarations
(:mod:`repro.core.invariants`) are promises about model equations —
"logic power is monotone in frequency" is exactly the kind of claim
the paper's figures rest on.  A declaration nobody tests is
documentation cosplay, so this rule requires every annotated function
to be named in a hypothesis property test under the configured test
directories.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticcheck.registry import Rule, register
from repro.staticcheck.visitor import ModuleContext

__all__ = ["InvariantCoverage"]


def _decorator_name(node: ast.expr) -> str | None:
    """The simple name of a decorator: ``@f``, ``@f(...)``, ``@m.f(...)``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class InvariantCoverage(Rule):
    """INV001: every invariant-annotated function needs a property test."""

    id = "INV001"
    name = "invariant-coverage"
    description = "@monotone_in/@nonnegative declarations need a matching property test"
    default_options = {
        "decorators": ["monotone_in", "nonnegative"],
        "test-dirs": ["tests/property"],
    }

    def __init__(self, options):
        super().__init__(options)
        self._decorators = set(options["decorators"])
        self._corpus: str | None = None

    def _test_corpus(self, ctx: ModuleContext) -> str | None:
        """Concatenated text of every property-test module, or ``None``
        when no configured test directory exists (e.g. linting an
        installed copy without its test tree)."""
        if self._corpus is not None:
            return self._corpus
        root = ctx.config.root or Path.cwd()
        dirs = ctx.config.property_test_dirs or self.options["test-dirs"]
        chunks = []
        found_dir = False
        for directory in dirs:
            path = Path(directory)
            if not path.is_absolute():
                path = root / path
            if not path.is_dir():
                continue
            found_dir = True
            for test_file in sorted(path.rglob("*.py")):
                chunks.append(test_file.read_text(encoding="utf-8"))
        if not found_dir:
            return None
        self._corpus = "\n".join(chunks)
        return self._corpus

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: ModuleContext) -> None:
        """Check an annotated function for property-test coverage."""
        self._check(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx: ModuleContext) -> None:
        """Check an annotated async function for property-test coverage."""
        self._check(node, ctx)

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef, ctx: ModuleContext) -> None:
        annotated = [
            name
            for decorator in node.decorator_list
            if (name := _decorator_name(decorator)) in self._decorators
        ]
        if not annotated:
            return
        corpus = self._test_corpus(ctx)
        if corpus is None:
            return
        if node.name not in corpus:
            self.report(
                ctx,
                node.lineno,
                node.col_offset,
                f"'{node.name}' declares @{annotated[0]} but no property test "
                f"under {ctx.config.property_test_dirs or self.options['test-dirs']} "
                f"mentions it",
            )
