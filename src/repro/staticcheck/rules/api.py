"""Public-API contract rules (API001, API002).

A name placed in ``__all__`` is a promise to downstream users
(the experiments, examples, and the README quickstart); promised
callables must document themselves and carry complete type hints so
unit mistakes are visible at the signature.
"""

from __future__ import annotations

import ast

from repro.staticcheck.registry import Rule, register
from repro.staticcheck.visitor import ModuleContext

__all__ = ["ExportedDocstring", "ExportedTypeHints"]

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _exported_definitions(ctx: ModuleContext):
    """Top-level defs/classes whose name appears in the module ``__all__``."""
    exported = ctx.dunder_all()
    if not exported:
        return
    names = set(exported)
    for stmt in ctx.tree.body:
        if isinstance(stmt, _DEF_NODES) and stmt.name in names:
            yield stmt


def _missing_annotations(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    missing = []
    positional = [*args.posonlyargs, *args.args]
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in (args.vararg, args.kwarg):
        if arg is not None and arg.annotation is None:
            missing.append("*" + arg.arg)
    if node.returns is None:
        missing.append("return")
    return missing


@register
class ExportedDocstring(Rule):
    """API001: exported functions and classes need docstrings."""

    id = "API001"
    name = "exported-docstring"
    description = "names in __all__ must carry a docstring"
    default_options = {}

    def finish_module(self, ctx: ModuleContext) -> None:
        """Report exported definitions that lack a docstring."""
        for stmt in _exported_definitions(ctx):
            if ast.get_docstring(stmt) is None:
                kind = "class" if isinstance(stmt, ast.ClassDef) else "function"
                self.report(
                    ctx,
                    stmt.lineno,
                    stmt.col_offset,
                    f"exported {kind} '{stmt.name}' has no docstring",
                )


@register
class ExportedTypeHints(Rule):
    """API002: exported functions need complete type hints."""

    id = "API002"
    name = "exported-type-hints"
    description = "functions in __all__ must annotate every parameter and the return"
    default_options = {}

    def finish_module(self, ctx: ModuleContext) -> None:
        """Report exported functions with incomplete annotations."""
        for stmt in _exported_definitions(ctx):
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = _missing_annotations(stmt)
            if missing:
                self.report(
                    ctx,
                    stmt.lineno,
                    stmt.col_offset,
                    f"exported function '{stmt.name}' is missing type hints "
                    f"for: {', '.join(missing)}",
                )
