"""Float-equality ban (FLT001).

Model and analysis code compares computed powers, utilizations and
error percentages — quantities that arrive through chains of float
arithmetic.  ``== 0.3`` style comparisons are then order-of-evaluation
lottery tickets; use ``math.isclose``, an explicit tolerance, or
restructure around integers.
"""

from __future__ import annotations

import ast

from repro.staticcheck.registry import Rule, register
from repro.staticcheck.visitor import ModuleContext

__all__ = ["FloatEquality"]


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEquality(Rule):
    """FLT001: no ``==`` / ``!=`` against float literals."""

    id = "FLT001"
    name = "float-equality"
    description = "equality comparison against float literals is unreliable"
    default_options = {}

    def visit_Compare(self, node: ast.Compare, ctx: ModuleContext) -> None:
        """Flag ``==``/``!=`` chains with a float-literal operand."""
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            literal = next((o for o in (left, right) if _is_float_literal(o)), None)
            if literal is None:
                continue
            value = ast.literal_eval(literal)
            self.report(
                ctx,
                node.lineno,
                node.col_offset,
                f"equality comparison against float literal {value!r}; "
                f"use math.isclose or an explicit tolerance",
            )
