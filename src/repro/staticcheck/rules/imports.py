"""Import hygiene rules (IMP001, IMP002).

Dead imports hide real dependency structure (and, for heavyweight
modules like :mod:`numpy`, cost import time in every subprocessed
example); ``__all__`` entries that no longer exist turn
``from repro.x import *`` into an ``AttributeError`` at a distance.
"""

from __future__ import annotations

import ast

from repro.staticcheck.registry import Rule, register
from repro.staticcheck.visitor import ModuleContext

__all__ = ["DeadImport", "StaleAllEntry"]


def _toplevel_bindings(statements: list[ast.stmt]) -> set[str]:
    """Names bound at module scope, descending into compound statements
    (``if TYPE_CHECKING:`` blocks, try/except import fallbacks) but not
    into function or class bodies."""
    bound: set[str] = set()
    for stmt in statements:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        bound.add(node.id)
        elif isinstance(stmt, (ast.If, ast.Try, ast.For, ast.While, ast.With)):
            for field in ("body", "orelse", "finalbody", "handlers"):
                block = getattr(stmt, field, [])
                for item in block:
                    if isinstance(item, ast.ExceptHandler):
                        bound |= _toplevel_bindings(item.body)
                bound |= _toplevel_bindings([s for s in block if isinstance(s, ast.stmt)])
            if isinstance(stmt, (ast.For,)):
                for node in ast.walk(stmt.target):
                    if isinstance(node, ast.Name):
                        bound.add(node.id)
    return bound


@register
class DeadImport(Rule):
    """IMP001: module-level imports that nothing references.

    A name counts as used when it appears as a ``Name`` anywhere in
    the module (annotations included) or is re-exported through
    ``__all__``.  The ``import x as x`` re-export idiom is exempt.
    """

    id = "IMP001"
    name = "dead-import"
    description = "imported name is never used"
    default_options = {}

    def finish_module(self, ctx: ModuleContext) -> None:
        """Reconcile module-level imports against every referenced name."""
        imports: list[tuple[str, int, int, str]] = []
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.asname is not None and alias.asname == alias.name:
                        continue  # explicit re-export
                    imports.append((local, stmt.lineno, stmt.col_offset, alias.name))
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module == "__future__":
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    if alias.asname is not None and alias.asname == alias.name:
                        continue  # explicit re-export
                    local = alias.asname or alias.name
                    imports.append((local, stmt.lineno, stmt.col_offset, alias.name))
        if not imports:
            return
        used = {
            node.id
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Name)
        }
        used |= set(ctx.dunder_all() or [])
        for local, line, col, original in imports:
            if local not in used:
                self.report(ctx, line, col, f"imported name '{local}' is never used")


@register
class StaleAllEntry(Rule):
    """IMP002: ``__all__`` entries must name something the module binds."""

    id = "IMP002"
    name = "stale-all-entry"
    description = "__all__ entry does not exist in the module"
    default_options = {}

    def finish_module(self, ctx: ModuleContext) -> None:
        """Reconcile ``__all__`` entries against top-level bindings."""
        exported = ctx.dunder_all()
        if not exported:
            return
        bound = _toplevel_bindings(ctx.tree.body)
        bound.add("__all__")
        has_star = any(
            isinstance(stmt, ast.ImportFrom) and any(a.name == "*" for a in stmt.names)
            for stmt in ctx.tree.body
        )
        if has_star:
            return  # cannot reason statically about star imports
        for stmt in ctx.tree.body:
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
            if isinstance(target, ast.Name) and target.id == "__all__":
                line, col = stmt.lineno, stmt.col_offset
                break
        else:
            return
        for name in exported:
            if name not in bound:
                self.report(ctx, line, col, f"__all__ entry '{name}' is not defined in the module")
