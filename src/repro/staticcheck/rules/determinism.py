"""Determinism / cache-safety rules (DET001–DET004).

The experiment engine (PR 3) caches results content-addressed by
``sha256(experiment id, params, model version)`` — the *inputs*, not
the environment.  Any nondeterminism reachable from a registered
experiment ``run`` function therefore poisons the cache: a stale entry
is indistinguishable from a fresh one.  These rules walk the
conservative call graph from every ``@register``-ed entry point and
flag the four ways results silently stop being a function of their
key:

* **DET001** — unseeded random (``random.*`` globals, bare
  ``numpy.random.*``, ``default_rng()`` with no seed);
* **DET002** — wall-clock reads (``time.time``, ``datetime.now`` …);
* **DET003** — environment reads (``os.environ``, ``os.getenv``);
* **DET004** — iteration over a set (order depends on hash seeding).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.staticcheck.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.project import ProjectAnalysis

__all__ = ["UnseededRandom", "WallClockRead", "EnvironmentRead", "SetIterationOrder"]


class _ReachableEffectRule(Rule):
    """Shared driver: report one effect kind reachable from entry points."""

    scope = "project"
    effect_kind = ""
    default_options = {"entrypoint-decorators": ["register"]}

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Flag every ``effect_kind`` site reachable from an entry point."""
        decorators = self.options.get("entrypoint-decorators", ["register"])
        seen: set[tuple[str, int, int]] = set()
        for decorator in decorators:
            for entry in project.entry_points(decorator):
                label = entry.entry_id or entry.qualname
                for holder, effect in project.effects_reachable_from(
                    entry.qualname, kinds={self.effect_kind}
                ):
                    site = (holder.module, effect.line, effect.col)
                    if site in seen:
                        continue
                    seen.add(site)
                    where = (
                        f"in '{holder.qualname}'"
                        if holder.qualname != entry.qualname
                        else "directly"
                    )
                    self.report_at(
                        project.modules[holder.module].path,
                        effect.line,
                        effect.col,
                        f"{effect.detail} {where}, reachable from experiment "
                        f"'{label}' — poisons the content-addressed result cache",
                    )


@register
class UnseededRandom(_ReachableEffectRule):
    """DET001: unseeded randomness reachable from an experiment entry point."""

    id = "DET001"
    name = "unseeded-random"
    description = "experiment run() closures must not draw unseeded random numbers"
    effect_kind = "random"


@register
class WallClockRead(_ReachableEffectRule):
    """DET002: wall-clock reads reachable from an experiment entry point."""

    id = "DET002"
    name = "wall-clock-read"
    description = "experiment run() closures must not read wall-clock time"
    effect_kind = "time"


@register
class EnvironmentRead(_ReachableEffectRule):
    """DET003: environment reads reachable from an experiment entry point."""

    id = "DET003"
    name = "environment-read"
    description = "experiment run() closures must not read os.environ"
    effect_kind = "env"


@register
class SetIterationOrder(_ReachableEffectRule):
    """DET004: set-iteration-order dependence reachable from an entry point."""

    id = "DET004"
    name = "set-iteration-order"
    description = "experiment run() closures must not iterate sets unsorted"
    effect_kind = "set_iter"
