"""The shipped rule pack.  Importing this package registers every rule."""

from repro.staticcheck.rules import (
    api,
    concurrency,
    determinism,
    floateq,
    frozen,
    imports,
    invariants,
    obs,
    suppress,
    units,
)

__all__ = [
    "api",
    "concurrency",
    "determinism",
    "floateq",
    "frozen",
    "imports",
    "invariants",
    "obs",
    "suppress",
    "units",
]
