"""The shipped rule pack.  Importing this package registers every rule."""

from repro.staticcheck.rules import api, floateq, imports, invariants, units

__all__ = ["api", "floateq", "imports", "invariants", "units"]
