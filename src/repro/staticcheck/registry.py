"""Rule base class and registry.

A rule is a small visitor: the core walk (:mod:`.visitor`) calls
``visit_<NodeType>``/``leave_<NodeType>`` hooks as it descends the
module AST, plus ``begin_module``/``finish_module`` for whole-module
analyses (import usage, ``__all__`` reconciliation).  Rules register
themselves with :func:`register` at import time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.staticcheck.finding import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.staticcheck.project import ProjectAnalysis
    from repro.staticcheck.visitor import ModuleContext

__all__ = ["Rule", "register", "all_rules", "get_rule"]

_REGISTRY: dict[str, type["Rule"]] = {}


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (stable, e.g. ``UNIT001``), ``name`` (a
    short kebab-case slug) and ``description``, and may declare
    ``default_options`` which :class:`~repro.staticcheck.config.LintConfig`
    overlays from ``pyproject.toml``.

    ``scope`` selects the driver: ``"file"`` rules ride the single-AST
    walk (:mod:`.visitor`); ``"project"`` rules implement
    :meth:`check_project` and see the whole-program analysis built by
    :mod:`.project` instead of individual modules.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    #: "file" (per-module AST walk) or "project" (whole-program pass)
    scope: str = "file"
    default_options: dict[str, Any] = {}

    def __init__(self, options: dict[str, Any]):
        self.options = options
        self.findings: list[Finding] = []

    # -- hooks (all optional) ------------------------------------------------

    def begin_module(self, ctx: "ModuleContext") -> None:
        """Called before the AST walk starts."""

    def finish_module(self, ctx: "ModuleContext") -> None:
        """Called after the AST walk completes."""

    def check_project(self, project: "ProjectAnalysis") -> None:
        """Project-scope hook: called once with the whole-program analysis."""

    # -- reporting -----------------------------------------------------------

    def report(self, ctx: "ModuleContext", line: int, col: int, message: str) -> None:
        """Record one finding at ``line``/``col`` of the current module."""
        self.report_at(ctx.display_path, line, col, message)

    def report_at(self, path: str, line: int, col: int, message: str) -> None:
        """Record one finding at an explicit location (project rules)."""
        self.findings.append(
            Finding(
                path=path,
                line=line,
                col=col,
                rule=self.id,
                message=message,
                severity=self.severity,
            )
        )


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """All registered rules, keyed by id."""
    return dict(_REGISTRY)


def get_rule(rule_id: str) -> type[Rule]:
    """Look up one rule class by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}; known: {sorted(_REGISTRY)}") from None
