"""repro-lint — units- and invariant-aware static analysis for the repro tree.

The paper's power models (Eqs. 1–6) mix µW-per-stage, per-block mW and
W-scale quantities that are only comparable because every module keeps
the unit conventions of :mod:`repro.units`.  This package enforces
those conventions mechanically: an AST visitor core drives a registry
of small rules over every module, and each finding is either fixed or
explicitly suppressed with ``# repro-lint: disable=RULE``.

Shipped rules
-------------
* ``UNIT001`` — bare conversion factors (``1e-6``, ``1e6``, ``8`` …)
  in unit-bearing expressions must go through :mod:`repro.units`.
* ``UNIT002`` — a function whose name claims a unit (``*_w``,
  ``*_mhz`` …) must not return a conversion to a different unit.
* ``FLT001`` — no ``==``/``!=`` against float literals in model code.
* ``API001`` / ``API002`` — exported names need docstrings and full
  type hints.
* ``INV001`` — every ``@monotone_in``-annotated model equation needs a
  matching hypothesis property test.
* ``IMP001`` / ``IMP002`` — dead imports and stale ``__all__`` entries.

Programmatic use::

    from repro.staticcheck import LintConfig, lint_paths
    report = lint_paths(["src/repro"], LintConfig())
    for finding in report.findings:
        print(finding.format())
"""

from repro.staticcheck.config import LintConfig, find_pyproject, load_config
from repro.staticcheck.finding import Finding, Severity
from repro.staticcheck.registry import Rule, all_rules, get_rule, register
from repro.staticcheck.reporters import render_json, render_text
from repro.staticcheck.runner import LintReport, lint_file, lint_paths

# rule modules self-register on import
from repro.staticcheck import rules as _rules  # noqa: F401  # repro-lint: disable=IMP001

__all__ = [
    "Finding",
    "Severity",
    "LintConfig",
    "load_config",
    "find_pyproject",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "LintReport",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
]
