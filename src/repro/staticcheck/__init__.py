"""repro-lint — units-, invariant- and whole-program-aware static analysis.

The paper's power models (Eqs. 1–6) mix µW-per-stage, per-block mW and
W-scale quantities that are only comparable because every module keeps
the unit conventions of :mod:`repro.units`.  This package enforces
those conventions mechanically: an AST visitor core drives a registry
of small per-file rules over every module, and a second
**whole-program pass** (:mod:`repro.staticcheck.project`) builds a
module/symbol table, a conservative call graph and per-function effect
summaries so that cross-module properties — cache determinism, frozen
structures, metric hygiene, executor safety — can be linted too.
Each finding is either fixed or explicitly suppressed with
``# repro-lint: disable=RULE``.

Shipped rules (see docs/LINTING.md for the full catalog)
--------------------------------------------------------
File scope:

* ``UNIT001`` / ``UNIT002`` — unit-conversion hygiene.
* ``FLT001`` — no ``==``/``!=`` against float literals in model code.
* ``API001`` / ``API002`` — exported names need docstrings and hints.
* ``INV001`` — ``@monotone_in`` equations need property tests.
* ``IMP001`` / ``IMP002`` — dead imports and stale ``__all__`` entries.

Project scope:

* ``DET001``–``DET004`` — non-determinism (unseeded random, wall
  clock, env reads, set-iteration order) reachable from ``@register``
  experiment entry points poisons the content-addressed result cache.
* ``FRZ001`` / ``FRZ002`` — mutation of frozen structures
  (``MergedTrie`` …), directly or through helpers via the call graph.
* ``OBS001``–``OBS004`` — metric/span names and label sets must match
  the docs/OBSERVABILITY.md catalog; histograms take float values.
* ``CONC001``–``CONC003`` — async/process-pool readiness (blocking
  calls in ``async def``, shared-state mutation from executor-submitted
  functions, unpicklable defaults).

Post-run:

* ``SUP001`` — disable comments that no longer silence anything.

Programmatic use::

    from repro.staticcheck import LintConfig, lint_paths
    report = lint_paths(["src/repro"], LintConfig())
    for finding in report.findings:
        print(finding.format())
"""

from repro.staticcheck.baseline import Baseline, BaselineDrift, apply_baseline
from repro.staticcheck.config import LintConfig, find_pyproject, load_config
from repro.staticcheck.finding import Finding, Severity
from repro.staticcheck.project import ProjectAnalysis, ProjectCache, build_project
from repro.staticcheck.registry import Rule, all_rules, get_rule, register
from repro.staticcheck.reporters import render_github, render_json, render_text
from repro.staticcheck.runner import LintReport, lint_file, lint_paths

# rule modules self-register on import
from repro.staticcheck import rules as _rules  # noqa: F401  # repro-lint: disable=IMP001

__all__ = [
    "Finding",
    "Severity",
    "LintConfig",
    "load_config",
    "find_pyproject",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "LintReport",
    "lint_file",
    "lint_paths",
    "ProjectAnalysis",
    "ProjectCache",
    "build_project",
    "Baseline",
    "BaselineDrift",
    "apply_baseline",
    "render_text",
    "render_json",
    "render_github",
]
