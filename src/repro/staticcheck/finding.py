"""Lint findings: what a rule reports and how it is displayed."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """Finding severity; ``ERROR`` findings fail the lint gate."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location.

    ``suppressed`` findings were matched by a
    ``# repro-lint: disable=RULE`` comment; they are kept (for the
    ``--show-suppressed`` report) but do not fail the gate.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR
    suppressed: bool = field(default=False, compare=False)

    def format(self) -> str:
        """Render as ``path:line:col: RULE message`` (text reporter row)."""
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: by file, position, then rule id."""
        return (self.path, self.line, self.col, self.rule)
