"""Lint configuration: rule selection and per-rule options.

Configuration lives under ``[tool.repro-lint]`` in ``pyproject.toml``::

    [tool.repro-lint]
    ignore = []                  # rule ids to disable
    exclude = ["**/build/**"]    # glob patterns never linted
    property-test-dirs = ["tests/property", "tests/unit"]

    [tool.repro-lint.rules.UNIT001]
    allow-modules = ["src/repro/units.py"]

    # relaxed profile for whole subtrees (tests keep exact float
    # assertions and need no public-API docstrings)
    [[tool.repro-lint.overrides]]
    paths = ["tests/**", "benchmarks/**"]
    ignore = ["API001", "API002"]

Rules declare their own option defaults (``Rule.default_options``);
the TOML section overrides them key-by-key.  ``overrides`` entries
relax (never extend) the rule set for paths matching their globs.
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["LintConfig", "load_config", "find_pyproject"]


@dataclass
class LintConfig:
    """Resolved lint configuration."""

    #: if non-empty, only these rule ids run
    select: set[str] = field(default_factory=set)
    #: rule ids that never run
    ignore: set[str] = field(default_factory=set)
    #: glob patterns (matched against posix paths) excluded from linting
    exclude: list[str] = field(default_factory=list)
    #: directories searched by INV001 for property tests
    property_test_dirs: list[str] = field(default_factory=list)
    #: per-rule option overrides, keyed by rule id
    rule_options: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: per-path relaxations: (glob patterns, rule ids ignored there)
    overrides: list[tuple[list[str], set[str]]] = field(default_factory=list)
    #: directory the config was loaded from (anchors relative paths)
    root: Path | None = None

    def is_rule_enabled(self, rule_id: str) -> bool:
        """Whether a rule participates in this run."""
        if rule_id in self.ignore:
            return False
        return not self.select or rule_id in self.select

    def ignored_for_path(self, path: Path | str) -> set[str]:
        """Rule ids relaxed for ``path`` by matching override entries."""
        resolved = Path(path)
        texts = [resolved.as_posix()]
        if self.root is not None and resolved.is_absolute():
            try:
                texts.append(resolved.relative_to(self.root.resolve()).as_posix())
            except ValueError:
                pass
        ignored: set[str] = set()
        for patterns, rules in self.overrides:
            if any(
                fnmatch.fnmatch(text, pattern)
                for text in texts
                for pattern in patterns
            ):
                ignored |= rules
        return ignored

    def is_rule_enabled_for(self, rule_id: str, path: Path | str) -> bool:
        """Rule enablement with per-path overrides applied."""
        return self.is_rule_enabled(rule_id) and rule_id not in self.ignored_for_path(path)

    def is_path_excluded(self, path: Path) -> bool:
        """Whether ``path`` matches any exclude pattern."""
        text = path.as_posix()
        return any(
            fnmatch.fnmatch(text, pattern) or fnmatch.fnmatch(path.name, pattern)
            for pattern in self.exclude
        )

    def options_for(self, rule_id: str, defaults: dict[str, Any]) -> dict[str, Any]:
        """Rule option dict: declared defaults overlaid with config."""
        merged = dict(defaults)
        merged.update(self.rule_options.get(rule_id, {}))
        return merged


def find_pyproject(start: Path) -> Path | None:
    """Walk up from ``start`` looking for a ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Path | None) -> LintConfig:
    """Build a :class:`LintConfig` from a ``pyproject.toml`` (or defaults)."""
    config = LintConfig()
    if pyproject is None or not pyproject.is_file():
        return config
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    section: dict[str, Any] = data.get("tool", {}).get("repro-lint", {})
    config.root = pyproject.parent
    config.select = set(section.get("select", []))
    config.ignore = set(section.get("ignore", []))
    config.exclude = list(section.get("exclude", []))
    config.property_test_dirs = list(section.get("property-test-dirs", []))
    rules = section.get("rules", {})
    if isinstance(rules, dict):
        config.rule_options = {
            rule_id: dict(options)
            for rule_id, options in rules.items()
            if isinstance(options, dict)
        }
    for entry in section.get("overrides", []):
        if isinstance(entry, dict):
            config.overrides.append(
                (list(entry.get("paths", [])), set(entry.get("ignore", [])))
            )
    return config
