"""Whole-program analysis: module/symbol tables, call graph, effects.

Where the per-file rules see one AST at a time, this module parses the
*whole* source tree into compact, JSON-serializable summaries and
answers cross-module questions:

* **symbol table** — every module, class, function and method, keyed
  by dotted qualname (``repro.virt.merged.MergedTrie.lookup``);
* **conservative call graph** — call sites resolved through import
  tables, ``self``, local constructor bindings and annotated
  parameters (unresolvable receivers get no edge rather than a guess);
* **effect summaries** — per-function flags with source locations:
  *calls unseeded random*, *calls wall-clock time*, *reads the
  environment*, *iterates a set*, *performs blocking I/O*, *mutates an
  attribute of a parameter*, *mutates module-level shared state*;
* **reachability** — ``reachable_from(qualname)`` plus
  ``effects_reachable_from`` used by the DET/CONC rule packs to walk
  from ``@register``-ed experiment entry points.

Summaries never hold AST nodes, so a parsed project can round-trip
through JSON: :class:`ProjectCache` keys each module summary by a
sha256 of its source and lets repeated lint invocations (the CI drift
gate runs the linter twice) skip re-extraction of unchanged files.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "Effect",
    "CallSite",
    "AttrMutation",
    "MetricUse",
    "SpanUse",
    "ObserveUse",
    "SubmitSite",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectAnalysis",
    "ProjectCache",
    "build_project",
    "extract_module_summary",
    "module_name_for",
    "source_sha",
]

#: wall-clock calls that make cached experiment results lie
TIME_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: calls that block the event loop / do real I/O
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
})

#: bare builtins that block (only when the name is not locally rebound)
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: method names that block regardless of receiver type: file I/O helpers,
#: pipe/socket receives, and the CPU-bound trie walk of the serving tier
#: (an event loop hosting any of these stalls every connection; ``send``
#: and ``join`` stay out — too many innocent receivers share those names)
BLOCKING_METHODS = frozenset({
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
    "recv",
    "walk_batch",
})

#: method names that mutate their receiver in place
MUTATOR_METHODS = frozenset({
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "sort",
    "reverse",
})

#: ``numpy.random`` globals that are exempt from DET001
_NUMPY_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence"})

#: ``random`` module members that are exempt from DET001
_RANDOM_OK = frozenset({"Random", "SystemRandom", "seed", "getstate", "setstate"})

#: default-argument constructors that cannot cross a pickle boundary
_UNPICKLABLE_DEFAULTS = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Event",
    "threading.Condition",
    "threading.Semaphore",
    "open",
})


@dataclass
class Effect:
    """One observed side effect inside a function body."""

    kind: str  #: ``random`` | ``time`` | ``env`` | ``set_iter`` | ``blocking`` | ``global_mut``
    line: int
    col: int
    detail: str


@dataclass
class CallSite:
    """One call expression, kept in resolvable form."""

    name: str  #: bare callee name (``evaluate_scenario``, ``submit``)
    recv: str | None  #: dotted receiver chain (``self``, ``np.random``) or ``None``
    line: int
    col: int
    #: positional argument roots: the ``Name`` id when the argument is
    #: a plain name, else ``None`` (positions are preserved)
    arg_roots: list[str | None] = field(default_factory=list)
    #: keyword argument roots (same convention)
    kwarg_roots: dict[str, str] = field(default_factory=dict)


@dataclass
class AttrMutation:
    """A write through a name: ``root.attr = ...``, ``root[k] = ...`` ..."""

    root: str
    line: int
    col: int
    detail: str


@dataclass
class MetricUse:
    """A ``registry.counter/gauge/histogram("name", ...)`` registration."""

    kind: str
    name: str
    line: int
    col: int
    #: label names when statically known, ``None`` for dynamic label sets
    labels: list[str] | None = None


@dataclass
class SpanUse:
    """A ``tracer.span("name")`` call; f-strings become ``*`` wildcards."""

    pattern: str
    line: int
    col: int
    dynamic: bool = False


@dataclass
class ObserveUse:
    """A ``histogram.observe(<literal>)`` with a non-float literal."""

    line: int
    col: int
    literal: str


@dataclass
class SubmitSite:
    """A call handing a function to another worker.

    ``executor.submit(f, ...)`` / ``pool.map(f, ...)`` plus the sharded
    serving tier's two fan-out shapes: ``Process(target=f, ...)``
    (the callable and its defaults must pickle into the child) and
    ``loop.run_in_executor(pool, f, ...)``.
    """

    target: str | None  #: bare name of the submitted callable, if a plain name
    line: int
    col: int
    via: str  #: ``submit`` | ``map`` | ``process`` | ``run_in_executor``
    pool_class: str | None  #: constructor class of the receiver, when known


@dataclass
class FunctionSummary:
    """Everything the project rules need to know about one function."""

    qualname: str
    module: str
    localname: str
    line: int
    col: int
    is_async: bool = False
    enclosing_class: str | None = None
    decorators: list[str] = field(default_factory=list)
    #: first string argument of a ``@register("...")`` decorator
    entry_id: str | None = None
    params: list[str] = field(default_factory=list)
    param_annotations: dict[str, str] = field(default_factory=dict)
    #: local var -> bare class name it was constructed from
    constructed: dict[str, str] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)
    effects: list[Effect] = field(default_factory=list)
    attr_mutations: list[AttrMutation] = field(default_factory=list)
    #: (param, line, reason) for defaults that cannot be pickled
    unpicklable_defaults: list[list] = field(default_factory=list)


@dataclass
class ModuleSummary:
    """Extraction result for one module (JSON-serializable)."""

    module: str
    path: str
    sha: str = ""
    top_names: list[str] = field(default_factory=list)
    #: local name -> [kind, dotted target]; kind is ``module`` or ``symbol``
    imports: dict[str, list] = field(default_factory=dict)
    #: class name -> line
    classes: dict[str, int] = field(default_factory=dict)
    #: module-level name -> bare class name it was constructed from
    instances: dict[str, str] = field(default_factory=dict)
    #: localname ("f" or "Cls.m") -> summary
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    metric_uses: list[MetricUse] = field(default_factory=list)
    span_uses: list[SpanUse] = field(default_factory=list)
    observe_uses: list[ObserveUse] = field(default_factory=list)
    submit_sites: list[SubmitSite] = field(default_factory=list)

    def to_json(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_json`)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "ModuleSummary":
        """Rebuild a summary from :meth:`to_json` output."""
        summary = cls(module=data["module"], path=data["path"], sha=data["sha"])
        summary.top_names = list(data["top_names"])
        summary.imports = {k: list(v) for k, v in data["imports"].items()}
        summary.classes = dict(data["classes"])
        summary.instances = dict(data.get("instances", {}))
        summary.metric_uses = [MetricUse(**m) for m in data["metric_uses"]]
        summary.span_uses = [SpanUse(**s) for s in data["span_uses"]]
        summary.observe_uses = [ObserveUse(**o) for o in data["observe_uses"]]
        summary.submit_sites = [SubmitSite(**s) for s in data["submit_sites"]]
        for name, f in data["functions"].items():
            fn = FunctionSummary(
                qualname=f["qualname"],
                module=f["module"],
                localname=f["localname"],
                line=f["line"],
                col=f["col"],
                is_async=f["is_async"],
                enclosing_class=f["enclosing_class"],
                decorators=list(f["decorators"]),
                entry_id=f["entry_id"],
                params=list(f["params"]),
                param_annotations=dict(f["param_annotations"]),
                constructed=dict(f["constructed"]),
                calls=[CallSite(**c) for c in f["calls"]],
                effects=[Effect(**e) for e in f["effects"]],
                attr_mutations=[AttrMutation(**a) for a in f["attr_mutations"]],
                unpicklable_defaults=[list(u) for u in f["unpicklable_defaults"]],
            )
            summary.functions[name] = fn
        return summary


def source_sha(source: str) -> str:
    """Content key used by the parsed-project cache."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(display_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/virt/merged.py`` → ``repro.virt.merged``;
    ``tests/unit/test_trie.py`` → ``tests.unit.test_trie``;
    package ``__init__`` files collapse onto the package name.
    """
    parts = list(Path(display_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return display_path
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or display_path


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mutation_root(target: ast.AST) -> tuple[str, str] | None:
    """(root name, description) when ``target`` writes through a name."""
    node = target
    trail = ""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        trail = ("." + node.attr if isinstance(node, ast.Attribute) else "[...]") + trail
        node = node.value
    if isinstance(node, ast.Name) and trail:
        return node.id, node.id + trail
    return None


class _ModuleScan(ast.NodeVisitor):
    """First pass: imports, top-level names, class index."""

    def __init__(self, tree: ast.Module):
        self.imports: dict[str, list] = {}
        self.top_names: list[str] = []
        self.classes: dict[str, int] = {}
        self.instances: dict[str, str] = {}
        for stmt in tree.body:
            self._scan(stmt)

    def _scan(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self.imports[local] = ["module", target]
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None or stmt.level:
                return
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.imports[local] = ["symbol", f"{stmt.module}.{alias.name}"]
        elif isinstance(stmt, ast.ClassDef):
            self.classes[stmt.name] = stmt.lineno
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        self.top_names.append(node.id)
            # module-level instance:  ESTIMATOR = ScenarioEstimator()
            if isinstance(stmt.value, ast.Call):
                name = _dotted(stmt.value.func)
                if name is not None:
                    bare = name.split(".")[-1]
                    if bare[:1].isupper():
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                self.instances[target.id] = bare
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            self.top_names.append(stmt.target.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._scan(child)


def _resolve_dotted(dotted: str, imports: dict[str, list]) -> str:
    """Resolve the first segment of a dotted chain through the import table."""
    head, _, rest = dotted.partition(".")
    entry = imports.get(head)
    if entry is None:
        return dotted
    resolved = entry[1]
    return f"{resolved}.{rest}" if rest else resolved


class _FunctionScan:
    """Second pass: per-function calls, effects and mutations."""

    def __init__(
        self,
        summary: FunctionSummary,
        imports: dict[str, list],
        top_names: set[str],
    ):
        self.fn = summary
        self.imports = imports
        self.top_names = top_names
        self.locals: set[str] = set(summary.params)
        self.globals_declared: set[str] = set()

    # -- helpers -------------------------------------------------------------

    def _full_call_name(self, recv: str | None, name: str) -> str:
        if recv is None:
            entry = self.imports.get(name)
            if entry is not None and name not in self.locals:
                return entry[1]
            return name
        if recv in ("self", "cls"):
            return f"{recv}.{name}"
        resolved = _resolve_dotted(recv, self.imports) if recv.split(".")[0] not in self.locals else recv
        return f"{resolved}.{name}"

    def _effect(self, kind: str, node: ast.AST, detail: str) -> None:
        self.fn.effects.append(
            Effect(kind=kind, line=node.lineno, col=node.col_offset, detail=detail)
        )

    # -- scan ----------------------------------------------------------------

    def scan(self, node: ast.AST) -> None:
        """Collect locals first (store contexts), then walk for facts."""
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                self.locals.add(child.id)
            elif isinstance(child, ast.Global):
                self.globals_declared.update(child.names)
        for child in ast.walk(node):
            self._visit(child)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._visit_assign(node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = _mutation_root(target)
                if root:
                    self._record_mutation(root[0], node, f"del {root[1]}")
        elif isinstance(node, ast.For):
            self._check_set_iter(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                self._check_set_iter(gen.iter)
        elif isinstance(node, ast.Attribute):
            if _dotted(node) is not None:
                resolved = _resolve_dotted(_dotted(node), self.imports)
                if resolved == "os.environ":
                    self._effect("env", node, "reads os.environ")

    def _is_setish(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "set" and "set" not in self.locals and "set" not in self.imports:
                return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_setish(node.left) or self._is_setish(node.right)
        return False

    def _check_set_iter(self, iter_node: ast.AST) -> None:
        if self._is_setish(iter_node):
            self._effect(
                "set_iter",
                iter_node,
                "iteration order over a set is not deterministic; sort first",
            )

    def _record_mutation(self, root: str, node: ast.AST, detail: str) -> None:
        self.fn.attr_mutations.append(
            AttrMutation(root=root, line=node.lineno, col=node.col_offset, detail=detail)
        )
        if root in self.globals_declared or (
            root in self.top_names and root not in self.locals
        ) or (
            root in self.imports and root not in self.locals
        ):
            self._effect("global_mut", node, f"mutates module-level state '{detail}'")

    def _visit_assign(self, node: ast.Assign | ast.AugAssign | ast.AnnAssign) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            root = _mutation_root(target)
            if root:
                self._record_mutation(root[0], node, f"{root[1]} = ...")
            elif isinstance(target, ast.Name) and (
                target.id in self.globals_declared
            ):
                self._effect("global_mut", node, f"assigns global '{target.id}'")
        # record constructor bindings:  x = SomeClass(...)
        value = getattr(node, "value", None)
        if isinstance(node, ast.Assign) and isinstance(value, ast.Call):
            cls = self._constructed_class(value)
            if cls:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.fn.constructed[target.id] = cls

    def _constructed_class(self, call: ast.Call) -> str | None:
        name = _dotted(call.func)
        if name is None:
            return None
        bare = name.split(".")[-1]
        return bare if bare[:1].isupper() else None

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        recv: str | None = None
        name: str | None = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            recv = _dotted(func.value)
            if recv is None and isinstance(func.value, ast.Subscript):
                recv = _dotted(func.value.value)
        if name is None:
            return

        arg_roots = [a.id if isinstance(a, ast.Name) else None for a in node.args]
        kwarg_roots = {
            kw.arg: kw.value.id
            for kw in node.keywords
            if kw.arg is not None and isinstance(kw.value, ast.Name)
        }
        self.fn.calls.append(
            CallSite(
                name=name,
                recv=recv,
                line=node.lineno,
                col=node.col_offset,
                arg_roots=arg_roots,
                kwarg_roots=kwarg_roots,
            )
        )

        full = self._full_call_name(recv, name)
        self._classify_call(node, full, recv, name)

        # mutation through a method:  root.attr.append(x), setattr(root, ...)
        if recv is not None and name in MUTATOR_METHODS:
            root = recv.split(".")[0]
            if root not in ("self", "cls"):
                self._record_mutation(root, node, f"{recv}.{name}(...)")
        if name == "setattr" and recv is None and node.args:
            if isinstance(node.args[0], ast.Name):
                self._record_mutation(
                    node.args[0].id, node, f"setattr({node.args[0].id}, ...)"
                )

    def _classify_call(
        self, node: ast.Call, full: str, recv: str | None, name: str
    ) -> None:
        if full in TIME_CALLS:
            self._effect("time", node, f"wall-clock call '{full}'")
        elif full == "os.getenv":
            self._effect("env", node, "reads os.getenv")
        elif full in BLOCKING_CALLS:
            self._effect("blocking", node, f"blocking call '{full}'")
        elif recv is None and name in BLOCKING_BUILTINS and name not in self.locals:
            self._effect("blocking", node, f"blocking call '{name}()'")
        elif name in BLOCKING_METHODS and recv is not None:
            self._effect("blocking", node, f"blocking call '.{name}()'")
        self._classify_random(node, full)

    def _classify_random(self, node: ast.Call, full: str) -> None:
        head, _, member = full.rpartition(".")
        if full.startswith("random.") and head == "random":
            if member not in _RANDOM_OK:
                self._effect("random", node, f"unseeded global random call '{full}'")
            elif member == "Random" and not node.args:
                self._effect("random", node, "unseeded random.Random()")
        elif full == "random.Random" and not node.args:
            self._effect("random", node, "unseeded random.Random()")
        elif head == "numpy.random":
            if member == "default_rng" and not (node.args or node.keywords):
                self._effect("random", node, "unseeded numpy.random.default_rng()")
            elif member not in _NUMPY_RANDOM_OK and member != "seed":
                self._effect("random", node, f"unseeded numpy global random call '{full}'")


def _scan_module_level_uses(
    tree: ast.Module, summary: ModuleSummary, metric_prefix: str
) -> None:
    """Metric/span/observe/submit sites anywhere in the module."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # worker-process constructors submit their target across a
        # pickle boundary exactly like an executor does
        callee = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        if callee == "Process":
            target = None
            for kw in node.keywords:
                if (
                    kw.arg == "target"
                    and isinstance(kw.value, ast.Name)
                ):
                    target = kw.value.id
            summary.submit_sites.append(
                SubmitSite(
                    target=target,
                    line=node.lineno,
                    col=node.col_offset,
                    via="process",
                    pool_class="Process",
                )
            )
            continue
        if not isinstance(func, ast.Attribute):
            continue
        attr = func.attr
        if attr in ("counter", "gauge", "histogram"):
            if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                node.args[0].value, str
            ):
                metric_name = node.args[0].value
                if metric_name.startswith(metric_prefix):
                    labels = _extract_labels(node)
                    summary.metric_uses.append(
                        MetricUse(
                            kind=attr,
                            name=metric_name,
                            line=node.lineno,
                            col=node.col_offset,
                            labels=labels,
                        )
                    )
        elif attr == "span" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                summary.span_uses.append(
                    SpanUse(pattern=first.value, line=node.lineno, col=node.col_offset)
                )
            elif isinstance(first, ast.JoinedStr):
                parts = []
                for value in first.values:
                    if isinstance(value, ast.Constant):
                        parts.append(str(value.value))
                    else:
                        parts.append("*")
                summary.span_uses.append(
                    SpanUse(
                        pattern="".join(parts),
                        line=node.lineno,
                        col=node.col_offset,
                        dynamic=True,
                    )
                )
        elif attr == "observe" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and not isinstance(first.value, float):
                literal = type(first.value).__name__
                summary.observe_uses.append(
                    ObserveUse(line=node.lineno, col=node.col_offset, literal=literal)
                )
        elif attr in ("submit", "map"):
            target = None
            if node.args and isinstance(node.args[0], ast.Name):
                target = node.args[0].id
            recv = _dotted(func.value)
            summary.submit_sites.append(
                SubmitSite(
                    target=target,
                    line=node.lineno,
                    col=node.col_offset,
                    via=attr,
                    pool_class=recv,  # resolved to a constructor class later
                )
            )
        elif attr == "run_in_executor":
            # loop.run_in_executor(pool, f, *args): f is argument 1
            target = None
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Name):
                target = node.args[1].id
            summary.submit_sites.append(
                SubmitSite(
                    target=target,
                    line=node.lineno,
                    col=node.col_offset,
                    via="run_in_executor",
                    pool_class="executor",
                )
            )


def _extract_labels(node: ast.Call) -> list[str] | None:
    """Label names from a registration call, ``None`` when dynamic."""
    labels_node: ast.AST | None = None
    for kw in node.keywords:
        if kw.arg == "labels":
            labels_node = kw.value
    if labels_node is None and len(node.args) >= 3:
        labels_node = node.args[2]
    if labels_node is None:
        return []
    if isinstance(labels_node, (ast.Tuple, ast.List)):
        labels = []
        for element in labels_node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                labels.append(element.value)
            else:
                return None
        return labels
    return None


def _entry_id_from_decorator(dec: ast.expr) -> str | None:
    if isinstance(dec, ast.Call) and dec.args:
        first = dec.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _default_reason(node: ast.expr) -> str | None:
    """Why a default argument cannot cross a pickle boundary, if it can't."""
    if isinstance(node, ast.Lambda):
        return "lambda default"
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name is not None and (
            name in _UNPICKLABLE_DEFAULTS or name.split(".")[-1] in ("Lock", "RLock")
        ):
            return f"'{name}(...)' default"
    return None


def extract_module_summary(
    display_path: str,
    tree: ast.Module,
    *,
    module: str | None = None,
    metric_prefix: str = "repro_",
) -> ModuleSummary:
    """Extract the JSON-serializable summary of one parsed module."""
    module = module or module_name_for(display_path)
    summary = ModuleSummary(module=module, path=display_path)
    scan = _ModuleScan(tree)
    summary.imports = scan.imports
    summary.top_names = sorted(set(scan.top_names))
    summary.classes = scan.classes
    summary.instances = scan.instances
    top_names = set(summary.top_names)

    def add_function(node: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None) -> None:
        localname = f"{cls}.{node.name}" if cls else node.name
        args = node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        fn = FunctionSummary(
            qualname=f"{module}.{localname}",
            module=module,
            localname=localname,
            line=node.lineno,
            col=node.col_offset,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            enclosing_class=cls,
        )
        fn.params = params
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is not None:
                ann = _dotted(arg.annotation)
                if ann:
                    fn.param_annotations[arg.arg] = ann.split(".")[-1]
        for dec in node.decorator_list:
            dec_name = _dotted(dec if not isinstance(dec, ast.Call) else dec.func)
            if dec_name:
                fn.decorators.append(dec_name.split(".")[-1])
                if dec_name.split(".")[-1] == "register":
                    fn.entry_id = _entry_id_from_decorator(dec)
        positional = [*args.posonlyargs, *args.args]
        for param, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            reason = _default_reason(default)
            if reason:
                fn.unpicklable_defaults.append([param.arg, default.lineno, reason])
        for param, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                reason = _default_reason(default)
                if reason:
                    fn.unpicklable_defaults.append([param.arg, default.lineno, reason])
        walker = _FunctionScan(fn, scan.imports, top_names)
        for stmt in node.body:
            walker.scan(stmt)
        summary.functions[localname] = fn

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(inner, stmt.name)

    _scan_module_level_uses(tree, summary, metric_prefix)
    return summary


class ProjectCache:
    """Per-file summary cache keyed by source sha (JSON on disk)."""

    VERSION = 2  # v2: recv/walk_batch blocking; Process/run_in_executor submits

    def __init__(self, path: Path | None = None):
        self.path = path
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                if data.get("version") == self.VERSION:
                    self._entries = data.get("modules", {})
            except (OSError, ValueError):
                self._entries = {}

    def lookup(self, display_path: str, sha: str) -> ModuleSummary | None:
        """Cached summary for an unchanged file, else ``None``."""
        entry = self._entries.get(display_path)
        if entry is not None and entry.get("sha") == sha:
            self.hits += 1
            try:
                return ModuleSummary.from_json(entry["summary"])
            except (KeyError, TypeError):
                pass
        self.misses += 1
        return None

    def store(self, summary: ModuleSummary) -> None:
        """Record ``summary`` for its path."""
        self._entries[summary.path] = {"sha": summary.sha, "summary": summary.to_json()}

    def save(self) -> None:
        """Write the cache back to disk (no-op without a path)."""
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": self.VERSION, "modules": self._entries}
        self.path.write_text(json.dumps(payload), encoding="utf-8")


class ProjectAnalysis:
    """Symbol table + call graph + effect queries over module summaries."""

    def __init__(self, summaries: list[ModuleSummary], root: Path | None = None):
        self.root = root
        self.modules: dict[str, ModuleSummary] = {s.module: s for s in summaries}
        #: qualname -> FunctionSummary
        self.functions: dict[str, FunctionSummary] = {}
        #: bare class name -> [(module, class qualname)]
        self.classes: dict[str, list[str]] = {}
        for summary in summaries:
            for fn in summary.functions.values():
                self.functions[fn.qualname] = fn
            for cls in summary.classes:
                self.classes.setdefault(cls, []).append(f"{summary.module}.{cls}")
        self._edges: dict[str, list[tuple[str, CallSite]]] = {}
        self._reach_memo: dict[str, frozenset[str]] = {}
        for fn in self.functions.values():
            self._edges[fn.qualname] = self._resolve_calls(fn)
        self._mutated_params = self._compute_mutated_params()

    # -- resolution ----------------------------------------------------------

    def module_of(self, display_path: str) -> ModuleSummary | None:
        """Summary whose file is ``display_path``, if any."""
        for summary in self.modules.values():
            if summary.path == display_path:
                return summary
        return None

    def _lookup_symbol(self, dotted: str) -> FunctionSummary | None:
        """Resolve ``pkg.mod.fn`` / ``pkg.mod.Cls`` to a function summary."""
        fn = self.functions.get(dotted)
        if fn is not None:
            return fn
        # class constructor: resolve to __init__
        init = self.functions.get(f"{dotted}.__init__")
        if init is not None:
            return init
        # symbol re-exported through a package __init__ — try one re-resolve
        head, _, tail = dotted.rpartition(".")
        package = self.modules.get(head)
        if package is not None and tail in package.imports:
            return self._lookup_symbol(package.imports[tail][1])
        return None

    def _class_method(self, bare_class: str, method: str, prefer_module: str) -> str | None:
        candidates = self.classes.get(bare_class, [])
        ordered = sorted(candidates, key=lambda q: not q.startswith(prefer_module + "."))
        for qual in ordered:
            candidate = f"{qual}.{method}"
            if candidate in self.functions:
                return candidate
        return None

    def _resolve_calls(self, fn: FunctionSummary) -> list[tuple[str, CallSite]]:
        summary = self.modules[fn.module]
        edges: list[tuple[str, CallSite]] = []
        for call in fn.calls:
            target = self._resolve_one(fn, summary, call)
            if target is not None:
                edges.append((target, call))
        return edges

    def _resolve_one(
        self, fn: FunctionSummary, summary: ModuleSummary, call: CallSite
    ) -> str | None:
        recv, name = call.recv, call.name
        if recv is None:
            # local function or method-free call
            if name in summary.functions:
                return summary.functions[name].qualname
            entry = summary.imports.get(name)
            if entry is not None:
                resolved = self._lookup_symbol(entry[1])
                return resolved.qualname if resolved else None
            if name in summary.classes:
                init = f"{summary.module}.{name}.__init__"
                return init if init in self.functions else None
            return None
        head = recv.split(".")[0]
        if head in ("self", "cls") and fn.enclosing_class:
            candidate = f"{summary.module}.{fn.enclosing_class}.{name}"
            return candidate if candidate in self.functions else None
        if head in fn.constructed:
            return self._class_method(fn.constructed[head], name, summary.module)
        if head in fn.param_annotations:
            return self._class_method(fn.param_annotations[head], name, summary.module)
        entry = summary.imports.get(head)
        if entry is not None:
            dotted = _resolve_dotted(recv, summary.imports)
            resolved = self._lookup_symbol(f"{dotted}.{name}")
            if resolved is not None:
                return resolved.qualname
            # imported module-level instance:  from m import ESTIMATOR
            inst_cls = self._instance_class(dotted)
            if inst_cls is not None:
                return self._class_method(inst_cls, name, summary.module)
            return None
        if head in summary.instances:
            return self._class_method(summary.instances[head], name, summary.module)
        return None

    def _instance_class(self, dotted: str) -> str | None:
        """Class of a module-level instance named by ``pkg.mod.NAME``."""
        mod, _, inst = dotted.rpartition(".")
        owner = self.modules.get(mod)
        if owner is None:
            return None
        if inst in owner.instances:
            return owner.instances[inst]
        # re-exported through a package __init__
        if inst in owner.imports:
            return self._instance_class(owner.imports[inst][1])
        return None

    # -- queries -------------------------------------------------------------

    def callees(self, qualname: str) -> list[str]:
        """Direct resolved callees of ``qualname``."""
        return [target for target, _ in self._edges.get(qualname, [])]

    def call_edges(self, qualname: str) -> list[tuple[str, CallSite]]:
        """Resolved (callee qualname, call site) pairs for ``qualname``."""
        return list(self._edges.get(qualname, []))

    def reachable_from(self, qualname: str) -> frozenset[str]:
        """Functions transitively reachable from ``qualname`` (inclusive)."""
        memo = self._reach_memo.get(qualname)
        if memo is not None:
            return memo
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for target, _ in self._edges.get(current, []):
                if target not in seen:
                    stack.append(target)
        result = frozenset(seen)
        self._reach_memo[qualname] = result
        return result

    def effects_reachable_from(
        self, qualname: str, kinds: set[str] | None = None
    ) -> list[tuple[FunctionSummary, Effect]]:
        """(holder, effect) pairs over the reachable closure of ``qualname``."""
        out: list[tuple[FunctionSummary, Effect]] = []
        for reached in sorted(self.reachable_from(qualname)):
            fn = self.functions.get(reached)
            if fn is None:
                continue
            for effect in fn.effects:
                if kinds is None or effect.kind in kinds:
                    out.append((fn, effect))
        return out

    def entry_points(self, decorator: str = "register") -> list[FunctionSummary]:
        """Functions carrying ``@register`` (experiment entry points)."""
        return sorted(
            (fn for fn in self.functions.values() if decorator in fn.decorators),
            key=lambda fn: fn.qualname,
        )

    def mutated_params(self, qualname: str) -> frozenset[str]:
        """Parameter names ``qualname`` mutates, directly or via callees."""
        return self._mutated_params.get(qualname, frozenset())

    def _compute_mutated_params(self) -> dict[str, frozenset[str]]:
        direct: dict[str, set[str]] = {}
        for fn in self.functions.values():
            mutated = {m.root for m in fn.attr_mutations if m.root in fn.params}
            direct[fn.qualname] = mutated
        # propagate through calls that forward a param into a mutating callee
        for _ in range(20):
            changed = False
            for fn in self.functions.values():
                mine = direct[fn.qualname]
                for target, call in self._edges.get(fn.qualname, []):
                    callee = self.functions.get(target)
                    if callee is None:
                        continue
                    callee_mutated = direct.get(target, set())
                    if not callee_mutated:
                        continue
                    # positional forwarding (skip self for methods)
                    params = list(callee.params)
                    if callee.enclosing_class and params and params[0] in ("self", "cls"):
                        params = params[1:]
                    for pos, root in enumerate(call.arg_roots):
                        if root in fn.params and pos < len(params):
                            if params[pos] in callee_mutated and root not in mine:
                                mine.add(root)
                                changed = True
                    for kw, root in call.kwarg_roots.items():
                        if root in fn.params and kw in callee_mutated and root not in mine:
                            mine.add(root)
                            changed = True
            if not changed:
                break
        return {qual: frozenset(mutated) for qual, mutated in direct.items()}

    # -- aggregated site lists (used by OBS/CONC rules) ----------------------

    def metric_uses(self) -> list[tuple[ModuleSummary, MetricUse]]:
        """Every metric registration across the project."""
        return [
            (summary, use)
            for summary in sorted(self.modules.values(), key=lambda s: s.path)
            for use in summary.metric_uses
        ]

    def span_uses(self) -> list[tuple[ModuleSummary, SpanUse]]:
        """Every span start across the project."""
        return [
            (summary, use)
            for summary in sorted(self.modules.values(), key=lambda s: s.path)
            for use in summary.span_uses
        ]

    def observe_uses(self) -> list[tuple[ModuleSummary, ObserveUse]]:
        """Every non-float-literal ``observe`` call across the project."""
        return [
            (summary, use)
            for summary in sorted(self.modules.values(), key=lambda s: s.path)
            for use in summary.observe_uses
        ]

    def submit_sites(self) -> list[tuple[ModuleSummary, SubmitSite]]:
        """Every executor ``submit``/``map`` call across the project."""
        return [
            (summary, use)
            for summary in sorted(self.modules.values(), key=lambda s: s.path)
            for use in summary.submit_sites
        ]

    def resolve_in_module(self, summary: ModuleSummary, bare_name: str) -> FunctionSummary | None:
        """Resolve a bare function name as seen from ``summary``'s namespace."""
        if bare_name in summary.functions:
            return summary.functions[bare_name]
        entry = summary.imports.get(bare_name)
        if entry is not None:
            return self._lookup_symbol(entry[1])
        return None


def build_project(
    parsed: list[tuple[str, ast.Module, str]],
    *,
    root: Path | None = None,
    cache: ProjectCache | None = None,
    metric_prefix: str = "repro_",
) -> ProjectAnalysis:
    """Build a :class:`ProjectAnalysis` from (display_path, tree, source).

    With a ``cache``, unchanged files reuse their stored summaries and
    the cache is rewritten afterwards.
    """
    summaries: list[ModuleSummary] = []
    for display_path, tree, source in parsed:
        sha = source_sha(source)
        summary = cache.lookup(display_path, sha) if cache is not None else None
        if summary is None:
            summary = extract_module_summary(
                display_path, tree, metric_prefix=metric_prefix
            )
            summary.sha = sha
            if cache is not None:
                cache.store(summary)
        summaries.append(summary)
    if cache is not None:
        cache.save()
    return ProjectAnalysis(summaries, root=root)
