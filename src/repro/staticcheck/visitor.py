"""Visitor core: one AST walk drives every active rule.

The walker keeps shared structural context so individual rules stay
small: a parent map, the enclosing-function stack, and the module's
``__all__`` literal.  Rules receive enter (``visit_X``) and exit
(``leave_X``) callbacks named after the :mod:`ast` node class.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.staticcheck.config import LintConfig
from repro.staticcheck.registry import Rule
from repro.staticcheck.suppressions import Suppressions

__all__ = ["ModuleContext", "walk_module"]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class ModuleContext:
    """Everything a rule may need about the module under analysis."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    config: LintConfig
    suppressions: Suppressions
    #: child -> parent links, filled in as the walk descends
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: enclosing (Async)FunctionDef nodes, innermost last
    function_stack: list[FunctionNode] = field(default_factory=list)

    @property
    def current_function(self) -> FunctionNode | None:
        """Innermost enclosing function, if any."""
        return self.function_stack[-1] if self.function_stack else None

    def parent(self, node: ast.AST) -> ast.AST | None:
        """Structural parent of ``node`` (``None`` for the module)."""
        return self.parents.get(node)

    def dunder_all(self) -> list[str] | None:
        """The module's ``__all__`` as a list of strings, if statically known."""
        for stmt in self.tree.body:
            target: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
            if not (isinstance(target, ast.Name) and target.id == "__all__"):
                continue
            value = stmt.value
            if isinstance(value, (ast.List, ast.Tuple)):
                names = []
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        names.append(element.value)
                return names
        return None


def _dispatch(rule: Rule, prefix: str, node: ast.AST, ctx: ModuleContext) -> None:
    handler = getattr(rule, prefix + type(node).__name__, None)
    if handler is not None:
        handler(node, ctx)


def _walk(node: ast.AST, ctx: ModuleContext, rules: list[Rule]) -> None:
    is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for rule in rules:
        _dispatch(rule, "visit_", node, ctx)
    if is_function:
        ctx.function_stack.append(node)  # type: ignore[arg-type]
    for child in ast.iter_child_nodes(node):
        ctx.parents[child] = node
        _walk(child, ctx, rules)
    if is_function:
        ctx.function_stack.pop()
    for rule in rules:
        _dispatch(rule, "leave_", node, ctx)


def walk_module(ctx: ModuleContext, rules: list[Rule]) -> None:
    """Run every rule over one parsed module (single AST traversal)."""
    for rule in rules:
        rule.begin_module(ctx)
    _walk(ctx.tree, ctx, rules)
    for rule in rules:
        rule.finish_module(ctx)


def identifiers_in(node: ast.AST) -> set[str]:
    """All ``Name`` ids and attribute names in a subtree (helper for rules)."""
    found: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            found.add(child.id)
        elif isinstance(child, ast.Attribute):
            found.add(child.attr)
    return found


def call_name(node: ast.AST) -> str | None:
    """Callee name of a ``Call`` (``f`` or trailing ``mod.f``), else ``None``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def literal_value(node: ast.AST) -> Any:
    """The constant value of a node, or ``None`` if not a constant."""
    return node.value if isinstance(node, ast.Constant) else None
