"""Findings baseline: accept legacy findings, fail only on drift.

A baseline is a JSON snapshot of known findings keyed by
``(path, rule, message)`` — deliberately **not** by line number, so
unrelated edits that shift code around do not invalidate it.  The CI
drift gate loads the checked-in baseline, subtracts it from a fresh
lint run, and fails only when *new* findings appear.  Entries that no
longer match anything are reported as *stale* so the baseline cannot
silently rot.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.finding import Finding
from repro.staticcheck.runner import LintReport

__all__ = ["Baseline", "BaselineDrift", "apply_baseline"]

_KEY = tuple[str, str, str]


@dataclass
class Baseline:
    """A set of accepted findings with per-key multiplicities."""

    VERSION = 1

    entries: Counter = field(default_factory=Counter)

    @staticmethod
    def key_for(finding: Finding) -> _KEY:
        """Line-independent identity of a finding."""
        return (finding.path, finding.rule, finding.message)

    @classmethod
    def from_report(cls, report: LintReport) -> "Baseline":
        """Snapshot every unsuppressed finding of ``report``."""
        baseline = cls()
        for finding in report.findings:
            baseline.entries[cls.key_for(finding)] += 1
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline JSON written by :meth:`save`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        baseline = cls()
        for entry in data.get("entries", []):
            key = (entry["path"], entry["rule"], entry["message"])
            baseline.entries[key] += int(entry.get("count", 1))
        return baseline

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        entries = [
            {"path": p, "rule": r, "message": m, "count": count}
            for (p, r, m), count in sorted(self.entries.items())
        ]
        payload = {"version": self.VERSION, "entries": entries}
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@dataclass
class BaselineDrift:
    """Outcome of subtracting a baseline from a report."""

    #: findings not covered by the baseline (these fail the gate)
    new_findings: list[Finding] = field(default_factory=list)
    #: findings absorbed by the baseline
    matched: list[Finding] = field(default_factory=list)
    #: baseline keys that matched nothing (candidates for removal)
    stale: list[_KEY] = field(default_factory=list)


def apply_baseline(report: LintReport, baseline: Baseline) -> BaselineDrift:
    """Partition ``report.findings`` against ``baseline`` **in place**.

    Matched findings move to ``report.baselined``; ``report.findings``
    keeps only the new ones, so ``report.exit_code`` becomes the drift
    gate's verdict.
    """
    remaining = Counter(baseline.entries)
    drift = BaselineDrift()
    for finding in report.findings:
        key = Baseline.key_for(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            drift.matched.append(finding)
        else:
            drift.new_findings.append(finding)
    drift.stale = sorted(key for key, count in remaining.items() if count > 0)
    report.findings = drift.new_findings
    report.baselined.extend(drift.matched)
    return drift
