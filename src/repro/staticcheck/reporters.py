"""Text, JSON and GitHub-annotation reporters for lint runs."""

from __future__ import annotations

import json
from collections import Counter

from repro.staticcheck.finding import Severity
from repro.staticcheck.runner import LintReport

__all__ = ["render_text", "render_json", "render_github"]


def render_text(report: LintReport, show_suppressed: bool = False, statistics: bool = False) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per row."""
    lines = [finding.format() for finding in report.findings]
    if show_suppressed:
        lines.extend(finding.format() for finding in report.suppressed)
    if statistics and report.findings:
        lines.append("")
        counts = Counter(finding.rule for finding in report.findings)
        for rule_id, count in sorted(counts.items()):
            lines.append(f"{count:5d}  {rule_id}")
    summary = (
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.files_checked} file(s) checked"
    )
    if report.baselined:
        summary += f", {len(report.baselined)} baselined"
    if statistics:
        summary += (
            f" in {report.duration_s:.2f}s"
            f" (project pass {report.project_duration_s:.2f}s"
        )
        if report.project_cache_hits or report.project_cache_misses:
            summary += (
                f", cache {report.project_cache_hits} hit(s)"
                f"/{report.project_cache_misses} miss(es)"
            )
        summary += ")"
    lines.append(summary)
    return "\n".join(lines)


def _github_escape(value: str, *, property_value: bool = False) -> str:
    """Escape per GitHub's workflow-command data rules."""
    value = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        value = value.replace(":", "%3A").replace(",", "%2C")
    return value


def render_github(report: LintReport) -> str:
    """GitHub Actions workflow commands: one ``::error`` per finding.

    Emitted to stdout in CI so findings surface as inline PR
    annotations on the exact file and line.
    """
    lines = []
    for finding in report.findings:
        command = "error" if finding.severity is Severity.ERROR else "warning"
        lines.append(
            f"::{command} "
            f"file={_github_escape(finding.path, property_value=True)},"
            f"line={finding.line},col={finding.col + 1},"
            f"title={_github_escape(finding.rule, property_value=True)}::"
            f"{_github_escape(f'{finding.rule}: {finding.message}')}"
        )
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.files_checked} file(s) checked"
    )
    return "\n".join(lines)


def render_json(report: LintReport, show_suppressed: bool = False) -> str:
    """Machine-readable report (stable key order, one document)."""
    def encode(finding):
        return {
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "rule": finding.rule,
            "severity": str(finding.severity),
            "message": finding.message,
            "suppressed": finding.suppressed,
        }

    payload = {
        "findings": [encode(f) for f in report.findings],
        "summary": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "files_checked": report.files_checked,
        },
    }
    if show_suppressed:
        payload["suppressed"] = [encode(f) for f in report.suppressed]
    return json.dumps(payload, indent=2, sort_keys=False)
