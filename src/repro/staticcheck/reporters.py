"""Text and JSON reporters for lint runs."""

from __future__ import annotations

import json
from collections import Counter

from repro.staticcheck.runner import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport, show_suppressed: bool = False, statistics: bool = False) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per row."""
    lines = [finding.format() for finding in report.findings]
    if show_suppressed:
        lines.extend(finding.format() for finding in report.suppressed)
    if statistics and report.findings:
        lines.append("")
        counts = Counter(finding.rule for finding in report.findings)
        for rule_id, count in sorted(counts.items()):
            lines.append(f"{count:5d}  {rule_id}")
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.files_checked} file(s) checked"
    )
    return "\n".join(lines)


def render_json(report: LintReport, show_suppressed: bool = False) -> str:
    """Machine-readable report (stable key order, one document)."""
    def encode(finding):
        return {
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "rule": finding.rule,
            "severity": str(finding.severity),
            "message": finding.message,
            "suppressed": finding.suppressed,
        }

    payload = {
        "findings": [encode(f) for f in report.findings],
        "summary": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "files_checked": report.files_checked,
        },
    }
    if show_suppressed:
        payload["suppressed"] = [encode(f) for f in report.suppressed]
    return json.dumps(payload, indent=2, sort_keys=False)
