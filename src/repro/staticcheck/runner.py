"""File discovery and the lint driver (per-file and project passes).

A run has three phases:

1. **per-file** — every module is parsed once and the ``scope="file"``
   rules ride a single AST walk (unchanged from PR 1);
2. **project** — if any ``scope="project"`` rules are active, the
   parsed trees are summarized into a
   :class:`~repro.staticcheck.project.ProjectAnalysis` (optionally via
   the on-disk :class:`~repro.staticcheck.project.ProjectCache`) and
   each project rule sees the whole program at once;
3. **suppression sweep** — ``disable`` comments that silenced nothing
   become SUP001 findings, so suppressions cannot rot.

Findings from every phase flow through the same suppression and
per-path override machinery; project findings are attributed to the
file they land in and can be silenced with the usual inline comments.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.config import LintConfig
from repro.staticcheck.finding import Finding, Severity
from repro.staticcheck.registry import Rule, all_rules
from repro.staticcheck.suppressions import Suppressions, collect_suppressions
from repro.staticcheck.visitor import ModuleContext, walk_module

__all__ = ["LintReport", "ParsedModule", "lint_file", "lint_paths", "iter_python_files"]


@dataclass
class LintReport:
    """Aggregated result of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: findings absorbed by a findings baseline (drift gate)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: wall time of the whole run / of the project pass alone, seconds
    duration_s: float = 0.0
    project_duration_s: float = 0.0
    #: parsed-project cache outcome (files reused / re-extracted)
    project_cache_hits: int = 0
    project_cache_misses: int = 0

    def extend(self, other: "LintReport") -> None:
        """Merge ``other`` into this report."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)
        self.files_checked += other.files_checked

    def finalize(self) -> "LintReport":
        """Sort findings into stable display order."""
        self.findings.sort(key=Finding.sort_key)
        self.suppressed.sort(key=Finding.sort_key)
        self.baselined.sort(key=Finding.sort_key)
        return self

    @property
    def exit_code(self) -> int:
        """0 when no unsuppressed findings remain, 1 otherwise."""
        return 1 if self.findings else 0


@dataclass
class ParsedModule:
    """One successfully parsed module, retained for the project pass."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions


def iter_python_files(paths: list[Path], config: LintConfig) -> list[Path]:
    """Expand files/directories into the sorted list of modules to lint."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return [f for f in files if not config.is_path_excluded(f)]


def _rule_classes(config: LintConfig, scope: str) -> list[type[Rule]]:
    return [
        cls
        for rule_id, cls in sorted(all_rules().items())
        if cls.scope == scope and config.is_rule_enabled(rule_id)
    ]


def _instantiate(cls: type[Rule], config: LintConfig) -> Rule:
    return cls(config.options_for(cls.id, cls.default_options))


def _partition(
    report: LintReport,
    findings: list[Finding],
    suppressions_by_path: dict[str, Suppressions],
    config: LintConfig,
) -> None:
    """Route findings into ``findings``/``suppressed`` buckets."""
    for finding in findings:
        if finding.rule in config.ignored_for_path(finding.path):
            continue
        sup = suppressions_by_path.get(finding.path)
        if sup is not None and sup.is_suppressed(finding.rule, finding.line):
            report.suppressed.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    rule=finding.rule,
                    message=finding.message,
                    severity=finding.severity,
                    suppressed=True,
                )
            )
        else:
            report.findings.append(finding)


def _parse_one(
    path: Path, display_path: str, report: LintReport
) -> ParsedModule | None:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                path=display_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="PARSE",
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
        )
        return None
    return ParsedModule(
        path=path,
        display_path=display_path,
        source=source,
        tree=tree,
        suppressions=collect_suppressions(source),
    )


def _lint_module(
    module: ParsedModule, config: LintConfig, report: LintReport
) -> None:
    """Run the per-file rules over one parsed module."""
    ctx = ModuleContext(
        path=module.path,
        display_path=module.display_path,
        source=module.source,
        tree=module.tree,
        config=config,
        suppressions=module.suppressions,
    )
    ignored_here = config.ignored_for_path(module.display_path)
    rules = [
        _instantiate(cls, config)
        for cls in _rule_classes(config, "file")
        if cls.id not in ignored_here
    ]
    walk_module(ctx, rules)
    suppressions_by_path = {module.display_path: module.suppressions}
    for rule in rules:
        _partition(report, rule.findings, suppressions_by_path, config)


def lint_file(path: Path, config: LintConfig, display_path: str | None = None) -> LintReport:
    """Lint a single module with the per-file rules only.

    Project-scope rules need the whole tree; use :func:`lint_paths`
    for runs that should include them.
    """
    report = LintReport(files_checked=1)
    module = _parse_one(path, display_path or str(path), report)
    if module is not None:
        _lint_module(module, config, report)
    return report


def _run_project_pass(
    modules: list[ParsedModule],
    config: LintConfig,
    report: LintReport,
    project_cache: Path | None,
) -> None:
    from repro.staticcheck.project import ProjectCache, build_project

    rule_classes = _rule_classes(config, "project")
    if not rule_classes:
        return
    started = time.perf_counter()
    cache = ProjectCache(project_cache) if project_cache is not None else None
    project = build_project(
        [(m.display_path, m.tree, m.source) for m in modules],
        root=config.root,
        cache=cache,
    )
    if cache is not None:
        report.project_cache_hits = cache.hits
        report.project_cache_misses = cache.misses
    suppressions_by_path = {m.display_path: m.suppressions for m in modules}
    for cls in rule_classes:
        rule = _instantiate(cls, config)
        rule.check_project(project)
        _partition(report, rule.findings, suppressions_by_path, config)
    report.project_duration_s = time.perf_counter() - started


def _sweep_unused_suppressions(
    modules: list[ParsedModule], config: LintConfig, report: LintReport
) -> None:
    """SUP001: disable comments that silenced nothing this run."""
    if not config.is_rule_enabled("SUP001"):
        return
    for module in modules:
        if "SUP001" in config.ignored_for_path(module.display_path):
            continue
        for entry in module.suppressions.entries:
            for rule_id in entry.unused_rules():
                scope = "file-wide " if entry.scope == "file" else ""
                report.findings.append(
                    Finding(
                        path=module.display_path,
                        line=entry.line,
                        col=0,
                        rule="SUP001",
                        message=(
                            f"unused {scope}suppression for '{rule_id}': no finding "
                            f"matched; remove the disable comment"
                        ),
                        severity=Severity.ERROR,
                    )
                )


def lint_paths(
    paths: list[str | Path],
    config: LintConfig | None = None,
    *,
    project_cache: Path | None = None,
    include_project: bool = True,
) -> LintReport:
    """Lint every module under ``paths`` with ``config`` (or defaults).

    Runs the per-file rules, then (unless ``include_project=False``)
    the whole-program pass, then the unused-suppression sweep.
    ``project_cache`` points at the parsed-project JSON artifact reused
    across invocations (the CI drift gate lints twice).
    """
    config = config or LintConfig()
    started = time.perf_counter()
    resolved = [Path(p) for p in paths]
    report = LintReport()
    modules: list[ParsedModule] = []
    # display paths are root-relative whenever possible so module
    # names, override globs and baseline keys are invocation-stable
    root = config.root.resolve() if config.root is not None else None
    for path in iter_python_files(resolved, config):
        display = path.as_posix()
        if root is not None and path.is_absolute():
            try:
                display = path.resolve().relative_to(root).as_posix()
            except ValueError:
                pass
        report.files_checked += 1
        module = _parse_one(path, display, report)
        if module is not None:
            modules.append(module)
            _lint_module(module, config, report)
    if include_project:
        _run_project_pass(modules, config, report, project_cache)
    _sweep_unused_suppressions(modules, config, report)
    report.duration_s = time.perf_counter() - started
    return report.finalize()
