"""File discovery and the lint driver."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.config import LintConfig
from repro.staticcheck.finding import Finding, Severity
from repro.staticcheck.registry import all_rules
from repro.staticcheck.suppressions import collect_suppressions
from repro.staticcheck.visitor import ModuleContext, walk_module

__all__ = ["LintReport", "lint_file", "lint_paths", "iter_python_files"]


@dataclass
class LintReport:
    """Aggregated result of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, other: "LintReport") -> None:
        """Merge ``other`` into this report."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked

    def finalize(self) -> "LintReport":
        """Sort findings into stable display order."""
        self.findings.sort(key=Finding.sort_key)
        self.suppressed.sort(key=Finding.sort_key)
        return self

    @property
    def exit_code(self) -> int:
        """0 when no unsuppressed findings remain, 1 otherwise."""
        return 1 if self.findings else 0


def iter_python_files(paths: list[Path], config: LintConfig) -> list[Path]:
    """Expand files/directories into the sorted list of modules to lint."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return [f for f in files if not config.is_path_excluded(f)]


def _active_rules(config: LintConfig):
    rules = []
    for rule_id, cls in sorted(all_rules().items()):
        if config.is_rule_enabled(rule_id):
            rules.append(cls(config.options_for(rule_id, cls.default_options)))
    return rules


def lint_file(path: Path, config: LintConfig, display_path: str | None = None) -> LintReport:
    """Lint a single module and partition findings by suppression."""
    report = LintReport(files_checked=1)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                path=display_path or str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="PARSE",
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
        )
        return report
    ctx = ModuleContext(
        path=path,
        display_path=display_path or str(path),
        source=source,
        tree=tree,
        config=config,
        suppressions=collect_suppressions(source),
    )
    rules = _active_rules(config)
    walk_module(ctx, rules)
    for rule in rules:
        for finding in rule.findings:
            if ctx.suppressions.is_suppressed(finding.rule, finding.line):
                report.suppressed.append(
                    Finding(
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        rule=finding.rule,
                        message=finding.message,
                        severity=finding.severity,
                        suppressed=True,
                    )
                )
            else:
                report.findings.append(finding)
    return report


def lint_paths(paths: list[str | Path], config: LintConfig | None = None) -> LintReport:
    """Lint every module under ``paths`` with ``config`` (or defaults)."""
    config = config or LintConfig()
    resolved = [Path(p) for p in paths]
    report = LintReport()
    for path in iter_python_files(resolved, config):
        report.extend(lint_file(path, config, display_path=path.as_posix()))
    return report.finalize()
