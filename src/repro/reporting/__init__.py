"""Experiment result containers, rendering and export.

Every experiment in :mod:`repro.experiments` returns an
:class:`ExperimentResult` — a set of named series over a shared x-axis
plus free-form notes — which renders as an ASCII table (what the
benches print) and exports to CSV.  The registry maps experiment ids
(``fig5``, ``table3``, ...) to their runners.
"""

from repro.reporting.result import Series, ExperimentResult
from repro.reporting.tables import render_table, render_kv
from repro.reporting.registry import register, get_experiment, all_experiments

__all__ = [
    "Series",
    "ExperimentResult",
    "render_table",
    "render_kv",
    "register",
    "get_experiment",
    "all_experiments",
]
