"""Experiment result containers."""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError

__all__ = ["Series", "ExperimentResult"]


@dataclass(frozen=True)
class Series:
    """One named data series over the experiment's x-axis."""

    label: str
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        object.__setattr__(self, "values", values)
        if values.ndim != 1:
            raise ExperimentError(f"series {self.label!r} must be 1-D")


@dataclass
class ExperimentResult:
    """Series-over-axis result of one reproduced table or figure.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"fig5"``.
    title:
        Human-readable description (matches the paper caption).
    x_label, x_values:
        The shared x-axis (e.g. number of virtual networks).
    series:
        The plotted lines / table columns.
    notes:
        Free-form annotations: paper reference values, claim checks.
    """

    experiment_id: str
    title: str
    x_label: str
    x_values: np.ndarray
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.x_values = np.asarray(self.x_values, dtype=float)
        for series in self.series:
            self._check(series)

    def _check(self, series: Series) -> None:
        if len(series.values) != len(self.x_values):
            raise ExperimentError(
                f"series {series.label!r} has {len(series.values)} points, "
                f"x-axis has {len(self.x_values)}"
            )

    def add_series(self, label: str, values) -> None:
        """Append a series, validating its length against the axis."""
        series = Series(label=label, values=np.asarray(values, dtype=float))
        self._check(series)
        self.series.append(series)

    def add_note(self, note: str) -> None:
        """Append an annotation line."""
        self.notes.append(note)

    def get(self, label: str) -> np.ndarray:
        """Fetch a series' values by label."""
        for series in self.series:
            if series.label == label:
                return series.values
        known = ", ".join(s.label for s in self.series)
        raise ExperimentError(f"no series {label!r}; have: {known}")

    def labels(self) -> list[str]:
        """Labels of all series, in insertion order."""
        return [s.label for s in self.series]

    # -- rendering ------------------------------------------------------------

    def to_rows(self) -> list[list[str]]:
        """Header + data rows for table rendering."""
        header = [self.x_label] + self.labels()
        rows = [header]
        for i, x in enumerate(self.x_values):
            x_text = f"{int(x)}" if float(x).is_integer() else f"{x:g}"
            row = [x_text]
            for series in self.series:
                row.append(f"{series.values[i]:.4g}")
            rows.append(row)
        return rows

    def render(self) -> str:
        """ASCII rendering: title, table, notes."""
        from repro.reporting.tables import render_table

        out = io.StringIO()
        out.write(f"== {self.experiment_id}: {self.title} ==\n")
        out.write(render_table(self.to_rows()))
        for note in self.notes:
            out.write(f"  note: {note}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """CSV export (header row + one row per x value)."""
        rows = self.to_rows()
        return "\n".join(",".join(cell for cell in row) for row in rows) + "\n"

    def write_csv(self, path: str) -> None:
        """Write the CSV export to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_csv())
