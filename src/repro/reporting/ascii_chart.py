"""ASCII line charts for experiment results.

The experiment runner reproduces the paper's *figures* — a text table
is faithful but hard to eyeball.  This renderer draws each series as a
small character plot (one glyph per series, shared canvas) so the
Fig. 5/8 shapes — NV's linear climb, VS's flat line, the merged
curves' divergence — are visible directly in the terminal:

    repro-experiments fig8 --chart
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError
from repro.reporting.result import ExperimentResult

__all__ = ["render_chart"]

#: series glyphs, assigned in order
_GLYPHS = "*o+x#@%&"


def render_chart(
    result: ExperimentResult,
    *,
    width: int = 64,
    height: int = 16,
    indent: str = "  ",
) -> str:
    """Render every series of ``result`` onto one ASCII canvas.

    The x axis spans the result's x values; the y axis spans the
    finite data range across all series.  Overlapping points show the
    later series' glyph.
    """
    if width < 16 or height < 4:
        raise ExperimentError("chart needs at least 16x4 characters")
    if not result.series:
        raise ExperimentError("nothing to chart: result has no series")
    x = np.asarray(result.x_values, dtype=float)
    if len(x) == 0:
        raise ExperimentError("nothing to chart: empty x axis")

    all_values = np.concatenate([s.values for s in result.series])
    finite = all_values[np.isfinite(all_values)]
    if len(finite) == 0:
        raise ExperimentError("nothing to chart: no finite values")
    y_lo, y_hi = float(finite.min()), float(finite.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]

    def place(xv: float, yv: float, glyph: str) -> None:
        column = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
        canvas[height - 1 - row][column] = glyph

    for series, glyph in zip(result.series, _GLYPHS):
        values = series.values
        for xv, yv in zip(x, values):
            if np.isfinite(yv):
                place(float(xv), float(yv), glyph)

    lines = [f"{indent}{result.title}"]
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for i, row in enumerate(canvas):
        if i == 0:
            label = top_label.rjust(gutter)
        elif i == height - 1:
            label = bottom_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{indent}{label}|{''.join(row)}")
    axis = f"{indent}{' ' * gutter}+{'-' * width}"
    lines.append(axis)
    x_left = f"{x_lo:.4g}"
    x_right = f"{x_hi:.4g}"
    pad = width - len(x_left) - len(x_right)
    lines.append(f"{indent}{' ' * gutter} {x_left}{' ' * max(1, pad)}{x_right}")
    legend = "  ".join(
        f"{glyph}={series.label}" for series, glyph in zip(result.series, _GLYPHS)
    )
    lines.append(f"{indent}{legend}")
    return "\n".join(lines) + "\n"
