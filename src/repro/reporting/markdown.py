"""Markdown rendering for experiment results."""

from __future__ import annotations

from repro.reporting.result import ExperimentResult

__all__ = ["to_markdown_table", "to_markdown_section"]


def to_markdown_table(result: ExperimentResult) -> str:
    """Render the result's rows as a GitHub-flavored markdown table."""
    rows = result.to_rows()
    if not rows:
        return ""
    header = "| " + " | ".join(rows[0]) + " |"
    rule = "|" + "|".join("---" for _ in rows[0]) + "|"
    body = ["| " + " | ".join(row) + " |" for row in rows[1:]]
    return "\n".join([header, rule, *body]) + "\n"


def to_markdown_section(result: ExperimentResult, heading_level: int = 3) -> str:
    """Render a full markdown section: heading, table, notes."""
    heading = "#" * heading_level
    parts = [f"{heading} {result.experiment_id}: {result.title}", ""]
    parts.append(to_markdown_table(result))
    if result.notes:
        parts.append("")
        parts.extend(f"* {note}" for note in result.notes)
    return "\n".join(parts) + "\n"
