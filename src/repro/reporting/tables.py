"""ASCII table rendering for experiment output."""

from __future__ import annotations

__all__ = ["render_table", "render_kv"]


def render_table(rows: list[list[str]], indent: str = "  ") -> str:
    """Render rows (first row = header) as an aligned ASCII table."""
    if not rows:
        return ""
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for idx, row in enumerate(rows):
        padded = [cell.rjust(widths[i]) if i else cell.ljust(widths[i]) for i, cell in enumerate(row)]
        lines.append(indent + "  ".join(padded).rstrip())
        if idx == 0:
            lines.append(indent + "  ".join("-" * w for w in widths))
    return "\n".join(lines) + "\n"


def render_kv(pairs: list[tuple[str, str]], indent: str = "  ") -> str:
    """Render key/value pairs as aligned lines."""
    if not pairs:
        return ""
    width = max(len(key) for key, _ in pairs)
    return "\n".join(f"{indent}{key.ljust(width)} : {value}" for key, value in pairs) + "\n"
