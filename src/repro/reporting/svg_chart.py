"""Dependency-free SVG line charts for experiment results.

``repro-experiments fig8 --svg out/`` writes each reproduced figure
as a standalone SVG viewable in any browser — the closest thing to
the paper's plots this offline environment can produce.  The renderer
is deliberately small: polyline per series, ticked axes, a legend,
categorical colors.
"""

from __future__ import annotations

import html

import numpy as np

from repro.errors import ExperimentError
from repro.reporting.result import ExperimentResult

__all__ = ["render_svg", "write_svg"]

#: categorical series palette (colorblind-safe-ish hexes)
_COLORS = (
    "#4477aa",
    "#ee6677",
    "#228833",
    "#ccbb44",
    "#66ccee",
    "#aa3377",
    "#bbbbbb",
    "#222255",
)

_MARGIN_L = 64
_MARGIN_R = 16
_MARGIN_T = 36
_MARGIN_B = 44


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round-ish tick positions covering [lo, hi]."""
    if hi == lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(1, n - 1)
    magnitude = 10 ** np.floor(np.log10(raw))
    for factor in (1, 2, 2.5, 5, 10):
        step = factor * magnitude
        if step >= raw:
            break
    start = np.ceil(lo / step) * step
    ticks = list(np.arange(start, hi + step / 2, step))
    return [float(t) for t in ticks] or [lo, hi]


def render_svg(
    result: ExperimentResult,
    *,
    width: int = 640,
    height: int = 400,
) -> str:
    """Render every series of ``result`` as one SVG document."""
    if not result.series:
        raise ExperimentError("nothing to render: result has no series")
    x = np.asarray(result.x_values, dtype=float)
    if len(x) == 0:
        raise ExperimentError("nothing to render: empty x axis")
    all_values = np.concatenate([s.values for s in result.series])
    finite = all_values[np.isfinite(all_values)]
    if len(finite) == 0:
        raise ExperimentError("nothing to render: no finite values")

    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(finite.min()), float(finite.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    # pad the y range slightly so lines don't hug the frame
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    def sx(value: float) -> float:
        return _MARGIN_L + (value - x_lo) / (x_hi - x_lo) * plot_w

    def sy(value: float) -> float:
        return _MARGIN_T + plot_h - (value - y_lo) / (y_hi - y_lo) * plot_h

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">'
    )
    parts.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    title = html.escape(f"{result.experiment_id}: {result.title}")
    parts.append(
        f'<text x="{width / 2:.0f}" y="18" text-anchor="middle" font-size="13">{title}</text>'
    )
    # frame
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>'
    )
    # y grid + labels
    for tick in _ticks(y_lo, y_hi):
        yy = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{yy:.1f}" x2="{_MARGIN_L + plot_w}" '
            f'y2="{yy:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{yy + 4:.1f}" text-anchor="end">{tick:g}</text>'
        )
    # x ticks + labels
    for tick in _ticks(x_lo, x_hi, 6):
        xx = sx(tick)
        parts.append(
            f'<line x1="{xx:.1f}" y1="{_MARGIN_T + plot_h}" x2="{xx:.1f}" '
            f'y2="{_MARGIN_T + plot_h + 4}" stroke="#888"/>'
        )
        parts.append(
            f'<text x="{xx:.1f}" y="{_MARGIN_T + plot_h + 16}" text-anchor="middle">{tick:g}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.0f}" y="{height - 8}" '
        f'text-anchor="middle">{html.escape(result.x_label)}</text>'
    )
    # series polylines + legend
    legend_y = _MARGIN_T + 10
    for series, color in zip(result.series, _COLORS):
        points = [
            f"{sx(float(xv)):.1f},{sy(float(yv)):.1f}"
            for xv, yv in zip(x, series.values)
            if np.isfinite(yv)
        ]
        if points:
            parts.append(
                f'<polyline points="{" ".join(points)}" fill="none" '
                f'stroke="{color}" stroke-width="1.8"/>'
            )
            for point in points:
                px, py = point.split(",")
                parts.append(f'<circle cx="{px}" cy="{py}" r="2.4" fill="{color}"/>')
        parts.append(
            f'<rect x="{_MARGIN_L + 8}" y="{legend_y - 8}" width="10" height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L + 22}" y="{legend_y + 1}">{html.escape(series.label)}</text>'
        )
        legend_y += 14
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def write_svg(result: ExperimentResult, path: str, **kwargs: object) -> None:
    """Write the SVG rendering of ``result`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(result, **kwargs))
