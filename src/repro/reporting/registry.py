"""Experiment registry: id → runner.

Experiments register themselves at import time via the
:func:`register` decorator; the benchmark harness and the
``repro-experiments`` CLI look them up by id.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.reporting.result import ExperimentResult

__all__ = ["register", "get_experiment", "all_experiments"]

_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Class/function decorator registering an experiment runner.

    The decorated callable must return an :class:`ExperimentResult`.
    """

    def deco(func: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = func
        func.experiment_id = experiment_id
        return func

    return deco


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment runner by id."""
    _ensure_loaded()
    if experiment_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[experiment_id]


def all_experiments() -> dict[str, Callable[..., ExperimentResult]]:
    """All registered experiments, keyed by id."""
    _ensure_loaded()
    return dict(_REGISTRY)


def _ensure_loaded() -> None:
    """Import the experiments package so registrations run."""
    import repro.experiments  # noqa: F401  (import for side effects)
