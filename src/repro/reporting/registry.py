"""Experiment registry: declarative specs, id → runner.

Experiments register themselves at import time via the
:func:`register` decorator.  A registration produces an
:class:`ExperimentSpec` — id, runner, parameter *axes* (e.g. the speed
grade the paper sweeps across panels), free-form *tags* used by the
CLI's ``--tag`` filter, and a description.  The experiment engine
(:mod:`repro.experiments.engine`) expands the axes into concrete runs;
the legacy accessors (:func:`get_experiment`, :func:`all_experiments`)
keep returning plain runners for callers that predate the engine.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ExperimentError
from repro.reporting.result import ExperimentResult

__all__ = [
    "Axis",
    "ExperimentSpec",
    "register",
    "get_experiment",
    "get_spec",
    "all_experiments",
    "all_specs",
    "specs_with_tag",
]


@dataclass(frozen=True)
class Axis:
    """One swept parameter of an experiment (name + values)."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ExperimentError(f"axis {self.name!r} must have at least one value")


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one registered experiment.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"fig5"``.
    runner:
        Callable returning an :class:`ExperimentResult`; axis values
        are passed as keyword arguments.
    axes:
        Swept parameters.  The engine runs the cartesian product; an
        experiment with no axes runs exactly once.
    tags:
        Grouping labels (``figures``, ``tables``, ``ablation``, ...)
        used by CLI/tag filtering.
    description:
        One-line summary (defaults to the runner's docstring headline).
    """

    experiment_id: str
    runner: Callable[..., ExperimentResult]
    axes: tuple[Axis, ...] = ()
    tags: frozenset[str] = field(default_factory=frozenset)
    description: str = ""

    def n_runs(self) -> int:
        """Number of concrete runs the axes expand into."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(
    experiment_id: str,
    *,
    axes: Mapping[str, Sequence] | None = None,
    tags: Sequence[str] = (),
    description: str | None = None,
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Function decorator registering an experiment spec.

    The decorated callable must return an :class:`ExperimentResult`
    and accept every axis name as a keyword argument.
    """

    def deco(func: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        doc = description
        if doc is None:
            doc = (func.__doc__ or "").strip().splitlines()[0] if func.__doc__ else ""
        spec = ExperimentSpec(
            experiment_id=experiment_id,
            runner=func,
            axes=tuple(Axis(name, tuple(values)) for name, values in (axes or {}).items()),
            tags=frozenset(tags),
            description=doc,
        )
        _REGISTRY[experiment_id] = spec
        func.experiment_id = experiment_id
        return func

    return deco


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment spec by id."""
    _ensure_loaded()
    if experiment_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[experiment_id]


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment runner by id (legacy accessor)."""
    return get_spec(experiment_id).runner


def all_specs() -> dict[str, ExperimentSpec]:
    """All registered experiment specs, keyed by id."""
    _ensure_loaded()
    return dict(_REGISTRY)


def all_experiments() -> dict[str, Callable[..., ExperimentResult]]:
    """All registered experiment runners, keyed by id (legacy accessor)."""
    return {eid: spec.runner for eid, spec in all_specs().items()}


def specs_with_tag(tag: str) -> dict[str, ExperimentSpec]:
    """Specs carrying ``tag``, keyed by id."""
    return {eid: spec for eid, spec in all_specs().items() if tag in spec.tags}


def _ensure_loaded() -> None:
    """Import the experiments package so registrations run."""
    import repro.experiments  # noqa: F401  (import for side effects)
