"""FPGA substrate: device, power, timing, place-and-route simulation.

This package stands in for the hardware side of the paper's
experiments — a Xilinx Virtex-6 XC6VLX760 at speed grades -2 and -1L,
characterized with the XPower Estimator (XPE) and validated post
place-and-route with the XPower Analyzer (XPA).  See DESIGN.md §2 for
the substitution rationale: the published component coefficients are
reproduced by construction, and the P&R simulator implements the
hardware-optimization effects the paper credits for its ±3 % model
error.
"""

from repro.fpga.device import DeviceSpec, ResourceUsage
from repro.fpga.catalog import DEVICE_CATALOG, get_device, XC6VLX760
from repro.fpga.speedgrade import SpeedGrade, grade_data
from repro.fpga.bram import BramKind, BramPacking, pack_stage_memory, bram_dynamic_power_uw
from repro.fpga.logic import PeFootprint, PAPER_PE_FOOTPRINT, stage_logic_power_uw
from repro.fpga.static_power import static_power_w
from repro.fpga.timing import achievable_fmax_mhz
from repro.fpga.clocking import ClockGating
from repro.fpga.floorplan import Floorplan, Region
from repro.fpga.placer import EngineNetlist, PlacedDesign, PlaceAndRoute
from repro.fpga.power_report import PowerReport, XPowerAnalyzer
from repro.fpga.xpe import XPowerEstimator

__all__ = [
    "DeviceSpec",
    "ResourceUsage",
    "DEVICE_CATALOG",
    "get_device",
    "XC6VLX760",
    "SpeedGrade",
    "grade_data",
    "BramKind",
    "BramPacking",
    "pack_stage_memory",
    "bram_dynamic_power_uw",
    "PeFootprint",
    "PAPER_PE_FOOTPRINT",
    "stage_logic_power_uw",
    "static_power_w",
    "achievable_fmax_mhz",
    "ClockGating",
    "Floorplan",
    "Region",
    "EngineNetlist",
    "PlacedDesign",
    "PlaceAndRoute",
    "PowerReport",
    "XPowerAnalyzer",
    "XPowerEstimator",
]
