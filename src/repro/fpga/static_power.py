"""Static (leakage) power model (paper Section V-A).

Static power keeps the device "powered up" independent of switching.
The paper measures 4.5 W (-2) and 3.1 W (-1L) on the XC6VLX760 with a
±5 % variation attributed to the die area covered by used resources.
This module reproduces that envelope: a base value per grade scaled by
an area factor in [0.95, 1.05], plus an optional junction-temperature
derating (leakage grows with temperature; the paper holds temperature
fixed, so the default adds nothing).
"""

from __future__ import annotations

from repro.core.invariants import monotone_in
from repro.errors import ConfigurationError
from repro.fpga.device import DeviceSpec, ResourceUsage
from repro.fpga.catalog import XC6VLX760
from repro.fpga.speedgrade import SpeedGrade, grade_data

__all__ = ["static_power_w", "area_factor", "STATIC_VARIATION"]

#: the paper's observed maximum deviation with resource usage
STATIC_VARIATION = 0.05

#: nominal junction temperature for the published values (°C)
NOMINAL_TEMPERATURE_C = 50.0

#: leakage growth per °C above nominal (typical 40 nm characteristic)
_TEMPERATURE_SLOPE = 0.006


def area_factor(used_area_fraction: float) -> float:
    """Map used-area fraction to the ±5 % static power factor.

    0 → 0.95 (minimal configured area), 1 → 1.05 (fully covered die),
    0.5 → exactly the published nominal value.
    """
    if not 0.0 <= used_area_fraction <= 1.0:
        raise ConfigurationError(
            f"used_area_fraction must be in [0, 1], got {used_area_fraction}"
        )
    return 1.0 - STATIC_VARIATION + 2 * STATIC_VARIATION * used_area_fraction


@monotone_in("temperature_c")
def static_power_w(
    grade: SpeedGrade,
    usage: ResourceUsage | None = None,
    device: DeviceSpec = XC6VLX760,
    *,
    temperature_c: float = NOMINAL_TEMPERATURE_C,
) -> float:
    """Static power in watts for one device.

    Parameters
    ----------
    grade:
        Speed grade selecting the base leakage (4.5 W / 3.1 W).
    usage:
        Resources configured on the device; drives the ±5 % area
        factor.  ``None`` means nominal (factor 1).
    device:
        The part; scales leakage linearly for the non-LX760 parts in
        the catalog (leakage tracks die size to first order).
    temperature_c:
        Junction temperature; leakage grows ~0.6 %/°C above nominal.
    """
    if temperature_c < -40 or temperature_c > 125:
        raise ConfigurationError(
            f"temperature out of industrial range: {temperature_c} °C"
        )
    base = grade_data(grade).static_power_w
    scale = device.logic_cells / XC6VLX760.logic_cells
    factor = area_factor(usage.area_fraction(device)) if usage is not None else 1.0
    thermal = 1.0 + _TEMPERATURE_SLOPE * (temperature_c - NOMINAL_TEMPERATURE_C)
    return base * scale * factor * thermal
