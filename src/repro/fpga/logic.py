"""Logic and signal power per pipeline stage (paper Section V-C).

The paper measures one processing element (PE) — the stage registers
plus the comparison/addressing logic of one pipeline stage of the
uni-bit trie engine — at:

* 1689 slice registers (flip-flops)
* 336  slice LUTs as logic
* 126  slice LUTs as memory (LUT RAM / shift registers)
* 376  slice LUTs as routing

and finds total per-stage logic + signal power of ``5.180 × f`` µW at
grade -2 and ``3.937 × f`` µW at -1L, linear in the number of stages.

This module distributes the published per-stage totals across the PE's
resource classes with fixed shares (registers and clocking dominate a
register-heavy PE; routing carries the signal power), so power scales
sensibly when a different footprint is supplied, while the default
footprint reproduces the published lines exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.invariants import monotone_in
from repro.errors import ConfigurationError
from repro.fpga.device import ResourceUsage
from repro.fpga.speedgrade import SpeedGrade, grade_data

__all__ = [
    "PeFootprint",
    "PAPER_PE_FOOTPRINT",
    "stage_logic_power_uw",
    "stage_power_components_uw",
]


@dataclass(frozen=True, slots=True)
class PeFootprint:
    """Per-stage processing-element resource counts (Section V-C)."""

    registers: int = 1689
    luts_logic: int = 336
    luts_memory: int = 126
    luts_routing: int = 376

    def __post_init__(self) -> None:
        for name in ("registers", "luts_logic", "luts_memory", "luts_routing"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.total() == 0:
            raise ConfigurationError("PE footprint must use at least one resource")

    def total(self) -> int:
        """All resources (registers + LUTs of every role)."""
        return self.registers + self.luts_logic + self.luts_memory + self.luts_routing

    def usage(self, n_stages: int = 1, io_pins: int = 0) -> ResourceUsage:
        """Resource usage of ``n_stages`` PEs as a :class:`ResourceUsage`."""
        if n_stages < 0:
            raise ConfigurationError("n_stages must be non-negative")
        return ResourceUsage(
            registers=self.registers * n_stages,
            luts_logic=self.luts_logic * n_stages,
            luts_memory=self.luts_memory * n_stages,
            luts_routing=self.luts_routing * n_stages,
            io_pins=io_pins,
        )


#: the uni-bit trie PE measured in the paper
PAPER_PE_FOOTPRINT = PeFootprint()

#: share of per-stage power attributed to each resource class.  The
#: register/clock share dominates (the PE is register-heavy), routing
#: carries the signal power; shares sum to 1 so the paper footprint
#: reproduces the published per-stage totals exactly.
_POWER_SHARES = {
    "registers": 0.42,
    "luts_logic": 0.22,
    "luts_memory": 0.10,
    "luts_routing": 0.26,
}


def _per_resource_coefficients(grade: SpeedGrade) -> dict[str, float]:
    """µW/MHz per single resource of each class, calibrated so the
    paper's footprint sums to the published per-stage coefficient."""
    total = grade_data(grade).logic_stage_uw_per_mhz
    paper = PAPER_PE_FOOTPRINT
    counts = {
        "registers": paper.registers,
        "luts_logic": paper.luts_logic,
        "luts_memory": paper.luts_memory,
        "luts_routing": paper.luts_routing,
    }
    return {name: _POWER_SHARES[name] * total / counts[name] for name in counts}


def stage_power_components_uw(
    frequency_mhz: float,
    grade: SpeedGrade,
    footprint: PeFootprint = PAPER_PE_FOOTPRINT,
    activity: float = 1.0,
) -> dict[str, float]:
    """Per-resource-class power of one stage, in µW.

    ``activity`` scales dynamic power for duty cycles below 100 %
    (flag-based logic shutdown, Section IV).
    """
    if frequency_mhz < 0:
        raise ConfigurationError("frequency must be non-negative")
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError("activity must be in [0, 1]")
    coefficients = _per_resource_coefficients(grade)
    counts = {
        "registers": footprint.registers,
        "luts_logic": footprint.luts_logic,
        "luts_memory": footprint.luts_memory,
        "luts_routing": footprint.luts_routing,
    }
    return {
        name: coefficients[name] * counts[name] * frequency_mhz * activity
        for name in counts
    }


@monotone_in("frequency_mhz", "activity")
def stage_logic_power_uw(
    frequency_mhz: float,
    grade: SpeedGrade,
    footprint: PeFootprint = PAPER_PE_FOOTPRINT,
    activity: float = 1.0,
) -> float:
    """Total logic + signal power of one pipeline stage, in µW.

    With the paper's footprint this is exactly ``5.180 × f`` (-2) or
    ``3.937 × f`` (-1L) at full activity — the published Section V-C
    lines and the Fig. 3 series.
    """
    return sum(stage_power_components_uw(frequency_mhz, grade, footprint, activity).values())


def signal_power_fraction() -> float:
    """Fraction of per-stage power carried by routing (signal power)."""
    return _POWER_SHARES["luts_routing"]
