"""Achievable clock frequency model.

The paper's Section VI-B observation that drives the merged scheme's
poor mW/Gbps is a *timing* effect: "due to the higher resource
consumption, the operating frequency decreases significantly".  Two
mechanisms are modeled, both standard FPGA timing behaviour:

1. **Stage fan-in** — a stage memory spanning ``b`` BRAM blocks needs
   a ``b``-to-1 output multiplexer; each doubling adds a mux level to
   the critical path.
2. **Congestion** — as device utilization grows, routing detours
   lengthen nets; the penalty is superlinear in utilization.

A single replicated engine (NV, VS at small K) sees neither effect and
runs at the grade's base frequency (350 MHz for -2, 245 MHz for -1L —
the ~30 % throughput gap the paper reports between grades).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError, TimingError
from repro.fpga.speedgrade import SpeedGrade, grade_data

__all__ = ["achievable_fmax_mhz", "mux_derate", "congestion_derate"]

#: critical-path penalty per BRAM output-mux level
_MUX_LEVEL_PENALTY = 0.055

#: congestion penalty coefficient (quadratic in utilization)
_CONGESTION_PENALTY = 0.28

#: no design routes below this fraction of base fmax; past that the
#: tools fail timing outright, which we surface as an error
_MIN_FMAX_FRACTION = 0.25


def mux_derate(widest_stage_blocks: int) -> float:
    """Frequency derating from the widest stage's BRAM output mux.

    One block (or none) needs no mux; ``b`` blocks add ``log2(b)``
    mux levels to the stage critical path.
    """
    if widest_stage_blocks < 0:
        raise ConfigurationError("widest_stage_blocks must be non-negative")
    if widest_stage_blocks <= 1:
        return 1.0
    levels = math.log2(widest_stage_blocks)
    return 1.0 / (1.0 + _MUX_LEVEL_PENALTY * levels)


def congestion_derate(utilization: float) -> float:
    """Frequency derating from routing congestion at ``utilization``."""
    if utilization < 0:
        raise ConfigurationError("utilization must be non-negative")
    util = min(utilization, 1.0)
    return 1.0 - _CONGESTION_PENALTY * util * util


def achievable_fmax_mhz(
    grade: SpeedGrade,
    widest_stage_blocks: int = 1,
    utilization: float = 0.0,
) -> float:
    """Post-route clock frequency for a lookup-engine design, in MHz.

    Parameters
    ----------
    grade:
        Speed grade (sets the base frequency).
    widest_stage_blocks:
        18 Kb-equivalent BRAM blocks behind the largest single stage
        memory (the critical stage).
    utilization:
        Overall device utilization fraction.

    Raises
    ------
    TimingError
        If the derated frequency falls below the routable floor —
        the design has effectively failed timing closure.
    """
    base = grade_data(grade).base_fmax_mhz
    fmax = base * mux_derate(widest_stage_blocks) * congestion_derate(utilization)
    if fmax < base * _MIN_FMAX_FRACTION:
        raise TimingError(
            f"design fails timing: derated fmax {fmax:.1f} MHz is below "
            f"{_MIN_FMAX_FRACTION:.0%} of the {base:.0f} MHz base for grade {grade}"
        )
    return fmax
