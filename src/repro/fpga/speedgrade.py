"""Speed grades: -2 (high performance) and -1L (low power).

The paper characterizes both grades on the XC6VLX760 (Sections V-A to
V-C) and finds the -1L grade dissipates ~30 % less power at ~30 % lower
achievable frequency, leaving mW/Gbps roughly unchanged (Section VI-B).
The per-grade constants here are the paper's published values; every
power and timing model keys off this table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SpeedGrade", "GradeData", "grade_data"]


class SpeedGrade(enum.Enum):
    """Virtex-6 speed grade variants studied by the paper."""

    #: speed grade -2: high performance
    G2 = "-2"
    #: speed grade -1L: low power (lower core voltage / supply current)
    G1L = "-1L"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def parse(cls, text: str) -> "SpeedGrade":
        """Parse ``"-2"`` / ``"-1L"`` (case-insensitive)."""
        normalized = text.strip().upper()
        for grade in cls:
            if grade.value.upper() == normalized:
                return grade
        raise ConfigurationError(f"unknown speed grade {text!r}; expected '-2' or '-1L'")


@dataclass(frozen=True, slots=True)
class GradeData:
    """Published per-grade characterization constants.

    Attributes
    ----------
    static_power_w:
        Device static power (Section V-A; ±5 % with area, handled by
        :func:`repro.fpga.static_power.static_power_w`).
    bram18_uw_per_mhz:
        Table III: dynamic power of one 18 Kb block per MHz.
    bram36_uw_per_mhz:
        Table III: dynamic power of one 36 Kb block per MHz.
    logic_stage_uw_per_mhz:
        Section V-C: per-pipeline-stage logic + signal power per MHz.
    base_fmax_mhz:
        Achievable clock for a single unconstrained lookup engine.
        The paper sweeps characterization plots to 500 MHz (XPE level)
        while routed designs land lower; the -1L value encodes the
        ~30 % throughput cost the paper reports for the low-power
        grade.
    """

    static_power_w: float
    bram18_uw_per_mhz: float
    bram36_uw_per_mhz: float
    logic_stage_uw_per_mhz: float
    base_fmax_mhz: float

    def __post_init__(self) -> None:
        for name in (
            "static_power_w",
            "bram18_uw_per_mhz",
            "bram36_uw_per_mhz",
            "logic_stage_uw_per_mhz",
            "base_fmax_mhz",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


_GRADE_DATA: dict[SpeedGrade, GradeData] = {
    SpeedGrade.G2: GradeData(
        static_power_w=4.5,
        bram18_uw_per_mhz=13.65,
        bram36_uw_per_mhz=24.60,
        logic_stage_uw_per_mhz=5.180,
        base_fmax_mhz=350.0,
    ),
    SpeedGrade.G1L: GradeData(
        static_power_w=3.1,
        bram18_uw_per_mhz=11.00,
        bram36_uw_per_mhz=19.70,
        logic_stage_uw_per_mhz=3.937,
        base_fmax_mhz=245.0,
    ),
}


def grade_data(grade: SpeedGrade) -> GradeData:
    """The published characterization constants for ``grade``."""
    return _GRADE_DATA[grade]
