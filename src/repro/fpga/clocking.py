"""Clock gating and duty-cycle modeling (paper Section IV).

"When the router is not serving any packets, the logic or memory
resources can be sent to an idle mode. [...] during the off period of
the duty cycle, the dynamic power can be assumed to be zero, but the
static power is dissipated constantly."  Logic is idled with enable
flags; memories with clock gating.

:class:`ClockGating` converts an offered duty cycle into the effective
activity factors the dynamic-power models consume.  With gating
disabled, idle cycles still clock the pipeline (registers toggle their
clock nets, memories stay enabled), so a residual activity remains —
the ablation benches quantify the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ClockGating"]


@dataclass(frozen=True, slots=True)
class ClockGating:
    """Clock-gating policy for one lookup engine.

    Attributes
    ----------
    gate_logic:
        Idle PEs stop toggling (enable-flag shutdown).
    gate_memory:
        Idle stage memories are clock-gated (enable deasserted).
    ungated_idle_activity:
        Residual activity of an idle-but-ungated resource: the clock
        tree and enables still toggle even when data holds steady.
    """

    gate_logic: bool = True
    gate_memory: bool = True
    ungated_idle_activity: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.ungated_idle_activity <= 1.0:
            raise ConfigurationError("ungated_idle_activity must be in [0, 1]")

    def _effective(self, duty_cycle: float, gated: bool) -> float:
        if not 0.0 <= duty_cycle <= 1.0:
            raise ConfigurationError(f"duty_cycle must be in [0, 1], got {duty_cycle}")
        if gated:
            return duty_cycle
        idle = 1.0 - duty_cycle
        return duty_cycle + idle * self.ungated_idle_activity

    def logic_activity(self, duty_cycle: float) -> float:
        """Effective logic activity factor for a given duty cycle."""
        return self._effective(duty_cycle, self.gate_logic)

    def memory_activity(self, duty_cycle: float) -> float:
        """Effective memory enable rate for a given duty cycle."""
        return self._effective(duty_cycle, self.gate_memory)


#: the paper's assumed policy: both gated, idle dynamic power is zero
PAPER_CLOCK_GATING = ClockGating()
