"""FPGA device specifications and resource-usage algebra.

A :class:`DeviceSpec` is the static inventory of one part (Table II of
the paper for the XC6VLX760).  A :class:`ResourceUsage` is the amount
of each resource a design consumes; usages add, scale and compare
against a device, raising :class:`ResourceExhaustedError` with the
gating resource — which is how the library reproduces the paper's
scalability observations (I/O pins capping virtualized-separate at
K = 15, BRAM capping merged at low α).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.units import BRAM18K_BITS, KIB

__all__ = ["DeviceSpec", "ResourceUsage"]


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """Inventory of one FPGA part.

    Attributes
    ----------
    name:
        Part number, e.g. ``"XC6VLX760"``.
    logic_cells:
        Marketing logic-cell count (Table II reports 758 K).
    slice_registers:
        Flip-flops available.
    slice_luts:
        6-input LUTs available.
    bram18_blocks:
        Number of independent 18 Kb block RAM primitives.  Xilinx
        packages them two-per-36 Kb block; ``bram36_blocks`` is the
        derived pair count.
    max_io_pins:
        User I/O pins (Table II: 1200).
    distributed_ram_kbits:
        Maximum LUT RAM (Table II: 8 Mb).
    """

    name: str
    logic_cells: int
    slice_registers: int
    slice_luts: int
    bram18_blocks: int
    max_io_pins: int
    distributed_ram_kbits: int

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name == "name":
                continue
            if getattr(self, f.name) <= 0:
                raise ConfigurationError(f"{f.name} must be positive")

    @property
    def bram36_blocks(self) -> int:
        """36 Kb block count (two 18 Kb primitives each)."""
        return self.bram18_blocks // 2

    @property
    def bram_bits(self) -> int:
        """Total block RAM capacity in bits."""
        return self.bram18_blocks * BRAM18K_BITS

    @property
    def bram_kbits(self) -> int:
        """Total block RAM capacity in (binary) kilobits."""
        return self.bram_bits // KIB

    def check_fits(self, usage: "ResourceUsage") -> None:
        """Raise :class:`ResourceExhaustedError` if ``usage`` overflows."""
        checks = (
            ("slice registers", usage.registers, self.slice_registers),
            ("slice LUTs", usage.total_luts, self.slice_luts),
            ("BRAM 18Kb blocks", usage.bram18_equivalent, self.bram18_blocks),
            ("I/O pins", usage.io_pins, self.max_io_pins),
        )
        for resource, requested, available in checks:
            if requested > available:
                raise ResourceExhaustedError(resource, requested, available)

    def fits(self, usage: "ResourceUsage") -> bool:
        """True if ``usage`` fits on this device."""
        try:
            self.check_fits(usage)
        except ResourceExhaustedError:
            return False
        return True


@dataclass(frozen=True, slots=True)
class ResourceUsage:
    """Resources consumed by a design (Eqs. 1, 3, 5 operands).

    LUTs are split the way the paper reports them (Section V-C):
    logic, memory (LUT RAM / shift registers) and routing.
    """

    registers: int = 0
    luts_logic: int = 0
    luts_memory: int = 0
    luts_routing: int = 0
    bram18: int = 0
    bram36: int = 0
    io_pins: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigurationError(f"{f.name} must be non-negative")

    @property
    def total_luts(self) -> int:
        """All LUTs regardless of role."""
        return self.luts_logic + self.luts_memory + self.luts_routing

    @property
    def bram18_equivalent(self) -> int:
        """Capacity in 18 Kb primitive units (36 Kb block = two)."""
        return self.bram18 + 2 * self.bram36

    @property
    def bram_bits(self) -> int:
        """Allocated BRAM capacity in bits."""
        return self.bram18_equivalent * BRAM18K_BITS

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        if not isinstance(other, ResourceUsage):
            return NotImplemented
        return ResourceUsage(
            registers=self.registers + other.registers,
            luts_logic=self.luts_logic + other.luts_logic,
            luts_memory=self.luts_memory + other.luts_memory,
            luts_routing=self.luts_routing + other.luts_routing,
            bram18=self.bram18 + other.bram18,
            bram36=self.bram36 + other.bram36,
            io_pins=self.io_pins + other.io_pins,
        )

    def scaled(self, factor: int) -> "ResourceUsage":
        """Usage of ``factor`` identical copies (replicated engines)."""
        if factor < 0:
            raise ConfigurationError(f"factor must be non-negative, got {factor}")
        return ResourceUsage(
            registers=self.registers * factor,
            luts_logic=self.luts_logic * factor,
            luts_memory=self.luts_memory * factor,
            luts_routing=self.luts_routing * factor,
            bram18=self.bram18 * factor,
            bram36=self.bram36 * factor,
            io_pins=self.io_pins * factor,
        )

    def utilization(self, device: DeviceSpec) -> float:
        """Overall device utilization: worst of logic/register/BRAM.

        The static-power area factor and the timing congestion model
        both key off this scalar (Sections V-A and VI-B discussion).
        """
        fractions = (
            self.registers / device.slice_registers,
            self.total_luts / device.slice_luts,
            self.bram18_equivalent / device.bram18_blocks,
        )
        return max(fractions)

    def area_fraction(self, device: DeviceSpec) -> float:
        """Approximate die-area fraction covered by this usage.

        Averages the resource fractions weighted by typical Virtex-6
        column area shares (slices dominate the fabric, BRAM columns
        are a minority of die area).
        """
        slice_frac = max(
            self.registers / device.slice_registers,
            self.total_luts / device.slice_luts,
        )
        bram_frac = self.bram18_equivalent / device.bram18_blocks
        return min(1.0, 0.8 * slice_frac + 0.2 * bram_frac)
