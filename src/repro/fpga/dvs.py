"""Voltage scaling: a continuous model behind the two speed grades.

The paper treats -2 and -1L as two discrete platforms and notes "the
main distinction in a high-performance and low power variants is the
supply current, which is significantly lower ... in the low power
FPGAs" (Section V-A).  Physically, the -1L grade is the same silicon
at reduced core voltage, and the standard CMOS scaling laws predict
how each power component moves:

* dynamic power   ∝ V²           (CV²f switching energy)
* static power    ∝ V³ (approx.) (leakage current itself drops with V)
* max frequency   ∝ (V − V_t)/V  (alpha-power delay model, α≈1)

:func:`synthetic_grade` evaluates those laws against the -2 baseline;
:func:`fit_voltage` inverts them to find the effective -1L voltage —
the "voltage that explains the low-power grade" analysis of the
``voltage`` experiment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.speedgrade import GradeData, SpeedGrade, grade_data

__all__ = ["NOMINAL_VOLTAGE", "THRESHOLD_VOLTAGE", "synthetic_grade", "fit_voltage"]

#: Virtex-6 nominal Vccint for speed grade -2
NOMINAL_VOLTAGE = 1.0

#: effective threshold voltage of the delay model
THRESHOLD_VOLTAGE = 0.35

#: V range a -1L-class derate could plausibly occupy
_V_MIN, _V_MAX = 0.7, 1.0


def _check_voltage(voltage: float) -> None:
    if not 0.5 <= voltage <= 1.1:
        raise ConfigurationError(f"voltage out of plausible range: {voltage} V")


def dynamic_scale(voltage: float) -> float:
    """Dynamic-power factor vs the -2 baseline (CV²f)."""
    _check_voltage(voltage)
    return (voltage / NOMINAL_VOLTAGE) ** 2


def static_scale(voltage: float) -> float:
    """Static-power factor vs the -2 baseline (V × leakage(V) ≈ V³)."""
    _check_voltage(voltage)
    return (voltage / NOMINAL_VOLTAGE) ** 3


def frequency_scale(voltage: float) -> float:
    """fmax factor vs the -2 baseline (alpha-power delay, α = 1)."""
    _check_voltage(voltage)
    nominal_drive = (NOMINAL_VOLTAGE - THRESHOLD_VOLTAGE) / NOMINAL_VOLTAGE
    drive = (voltage - THRESHOLD_VOLTAGE) / voltage
    return drive / nominal_drive


def synthetic_grade(voltage: float) -> GradeData:
    """A continuous-voltage grade derived from the -2 baseline."""
    base = grade_data(SpeedGrade.G2)
    dyn = dynamic_scale(voltage)
    return GradeData(
        static_power_w=base.static_power_w * static_scale(voltage),
        bram18_uw_per_mhz=base.bram18_uw_per_mhz * dyn,
        bram36_uw_per_mhz=base.bram36_uw_per_mhz * dyn,
        logic_stage_uw_per_mhz=base.logic_stage_uw_per_mhz * dyn,
        base_fmax_mhz=base.base_fmax_mhz * frequency_scale(voltage),
    )


def fit_voltage(target: GradeData | None = None, steps: int = 601) -> tuple[float, float]:
    """Voltage whose scaling laws best reproduce a grade's constants.

    Returns ``(voltage, rms_relative_error)`` minimizing the RMS
    relative distance between the synthetic grade and ``target``
    (default: the published -1L constants) across all five published
    quantities.
    """
    target = target or grade_data(SpeedGrade.G1L)
    base = grade_data(SpeedGrade.G2)
    targets = np.array(
        [
            target.static_power_w / base.static_power_w,
            target.bram18_uw_per_mhz / base.bram18_uw_per_mhz,
            target.bram36_uw_per_mhz / base.bram36_uw_per_mhz,
            target.logic_stage_uw_per_mhz / base.logic_stage_uw_per_mhz,
            target.base_fmax_mhz / base.base_fmax_mhz,
        ]
    )
    best_v, best_err = NOMINAL_VOLTAGE, float("inf")
    for voltage in np.linspace(_V_MIN, _V_MAX, steps):
        v = float(voltage)
        dyn = dynamic_scale(v)
        predicted = np.array(
            [static_scale(v), dyn, dyn, dyn, frequency_scale(v)]
        )
        err = float(np.sqrt(np.mean(((predicted - targets) / targets) ** 2)))
        if err < best_err:
            best_v, best_err = v, err
    return best_v, best_err
