"""Voltage scaling: a continuous model behind the two speed grades.

The paper treats -2 and -1L as two discrete platforms and notes "the
main distinction in a high-performance and low power variants is the
supply current, which is significantly lower ... in the low power
FPGAs" (Section V-A).  Physically, the -1L grade is the same silicon
at reduced core voltage, and the standard CMOS scaling laws predict
how each power component moves:

* dynamic power   ∝ V²           (CV²f switching energy)
* static power    ∝ V³ (approx.) (leakage current itself drops with V)
* max frequency   ∝ (V − V_t)/V  (alpha-power delay model, α≈1)

:func:`synthetic_grade` evaluates those laws against the -2 baseline;
:func:`fit_voltage` inverts them to find the effective -1L voltage —
the "voltage that explains the low-power grade" analysis of the
``voltage`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.speedgrade import GradeData, SpeedGrade, grade_data

__all__ = [
    "NOMINAL_VOLTAGE",
    "THRESHOLD_VOLTAGE",
    "PLAUSIBLE_V_MIN",
    "PLAUSIBLE_V_MAX",
    "OperatingPoint",
    "NOMINAL_POINT",
    "dynamic_scale",
    "static_scale",
    "frequency_scale",
    "voltage_for_frequency_scale",
    "synthetic_grade",
    "fit_voltage",
]

#: Virtex-6 nominal Vccint for speed grade -2
NOMINAL_VOLTAGE = 1.0

#: effective threshold voltage of the delay model
THRESHOLD_VOLTAGE = 0.35

#: full Vccint range the scaling laws stay physically plausible over
PLAUSIBLE_V_MIN, PLAUSIBLE_V_MAX = 0.5, 1.1

#: V range a -1L-class derate could plausibly occupy
_V_MIN, _V_MAX = 0.7, 1.0


def _check_voltage(voltage: float) -> None:
    if not PLAUSIBLE_V_MIN <= voltage <= PLAUSIBLE_V_MAX:
        raise ConfigurationError(f"voltage out of plausible range: {voltage} V")


def dynamic_scale(voltage: float) -> float:
    """Dynamic-power factor vs the -2 baseline (CV²f)."""
    _check_voltage(voltage)
    return (voltage / NOMINAL_VOLTAGE) ** 2


def static_scale(voltage: float) -> float:
    """Static-power factor vs the -2 baseline (V × leakage(V) ≈ V³)."""
    _check_voltage(voltage)
    return (voltage / NOMINAL_VOLTAGE) ** 3


def frequency_scale(voltage: float) -> float:
    """fmax factor vs the -2 baseline (alpha-power delay, α = 1)."""
    _check_voltage(voltage)
    nominal_drive = (NOMINAL_VOLTAGE - THRESHOLD_VOLTAGE) / NOMINAL_VOLTAGE
    drive = (voltage - THRESHOLD_VOLTAGE) / voltage
    return drive / nominal_drive


def voltage_for_frequency_scale(scale: float) -> float:
    """Minimum Vccint sustaining an fmax factor of ``scale``.

    Closed-form inverse of :func:`frequency_scale`: solving
    ``(V - V_t)/V = scale * (1 - V_t)`` for ``V`` gives
    ``V = V_t / (1 - scale*(1 - V_t))``.  Raises
    :class:`~repro.errors.ConfigurationError` when no plausible
    voltage achieves the target (caller clamps demand to the
    achievable band first — see :class:`repro.power.DvsGovernor`).
    """
    nominal_drive = (NOMINAL_VOLTAGE - THRESHOLD_VOLTAGE) / NOMINAL_VOLTAGE
    denominator = 1.0 - scale * nominal_drive
    if denominator <= 0.0:
        raise ConfigurationError(
            f"frequency scale {scale} unreachable at any finite voltage"
        )
    voltage = THRESHOLD_VOLTAGE / denominator
    _check_voltage(voltage)
    return voltage


@dataclass(frozen=True)
class OperatingPoint:
    """One DVS operating point: a core voltage and its derived scales.

    The serving tier and the power sampler exchange this rather than a
    bare float so the scale factors are computed once, consistently,
    from the same CMOS laws that built the synthetic grades.
    """

    voltage: float = NOMINAL_VOLTAGE

    def __post_init__(self) -> None:
        _check_voltage(self.voltage)

    @property
    def frequency_scale(self) -> float:
        """fmax factor vs the -2 baseline at this voltage."""
        return frequency_scale(self.voltage)

    @property
    def dynamic_scale(self) -> float:
        """Dynamic-power factor vs the -2 baseline at this voltage."""
        return dynamic_scale(self.voltage)

    @property
    def static_scale(self) -> float:
        """Static-power factor vs the -2 baseline at this voltage."""
        return static_scale(self.voltage)

    @property
    def is_nominal(self) -> bool:
        return self.voltage == NOMINAL_VOLTAGE


#: the identity operating point (speed grade -2 at published Vccint)
NOMINAL_POINT = OperatingPoint()


def synthetic_grade(voltage: float) -> GradeData:
    """A continuous-voltage grade derived from the -2 baseline."""
    base = grade_data(SpeedGrade.G2)
    dyn = dynamic_scale(voltage)
    return GradeData(
        static_power_w=base.static_power_w * static_scale(voltage),
        bram18_uw_per_mhz=base.bram18_uw_per_mhz * dyn,
        bram36_uw_per_mhz=base.bram36_uw_per_mhz * dyn,
        logic_stage_uw_per_mhz=base.logic_stage_uw_per_mhz * dyn,
        base_fmax_mhz=base.base_fmax_mhz * frequency_scale(voltage),
    )


def _fit_error(voltage: float, targets: np.ndarray) -> float:
    dyn = dynamic_scale(voltage)
    predicted = np.array(
        [static_scale(voltage), dyn, dyn, dyn, frequency_scale(voltage)]
    )
    return float(np.sqrt(np.mean(((predicted - targets) / targets) ** 2)))


def _grid_minimum(
    lo: float, hi: float, steps: int, targets: np.ndarray
) -> tuple[float, float]:
    best_v, best_err = lo, float("inf")
    for voltage in np.linspace(lo, hi, steps):
        err = _fit_error(float(voltage), targets)
        if err < best_err:
            best_v, best_err = float(voltage), err
    return best_v, best_err


def fit_voltage(target: GradeData | None = None, steps: int = 601) -> tuple[float, float]:
    """Voltage whose scaling laws best reproduce a grade's constants.

    Returns ``(voltage, rms_relative_error)`` minimizing the RMS
    relative distance between the synthetic grade and ``target``
    (default: the published -1L constants) across all five published
    quantities.

    The search starts on the -1L-plausible ``0.7..1.0`` bracket; when
    the minimum converges onto a bracket edge (historically it was
    silently clamped there) the search widens to the full plausible
    ``0.5..1.1`` range and refines locally, so
    ``fit_voltage(synthetic_grade(v))`` round-trips to ``v`` anywhere
    in the plausible band.  A target whose best explanation still sits
    on the plausible edge with material residual error is outside the
    model and raises :class:`~repro.errors.ConfigurationError`.
    """
    target = target or grade_data(SpeedGrade.G1L)
    base = grade_data(SpeedGrade.G2)
    targets = np.array(
        [
            target.static_power_w / base.static_power_w,
            target.bram18_uw_per_mhz / base.bram18_uw_per_mhz,
            target.bram36_uw_per_mhz / base.bram36_uw_per_mhz,
            target.logic_stage_uw_per_mhz / base.logic_stage_uw_per_mhz,
            target.base_fmax_mhz / base.base_fmax_mhz,
        ]
    )
    lo, hi = _V_MIN, _V_MAX
    step = (hi - lo) / (steps - 1)
    best_v, best_err = _grid_minimum(lo, hi, steps, targets)
    if best_v - lo < step / 2 or hi - best_v < step / 2:
        # boundary convergence: the true minimum may lie outside the
        # -1L bracket — widen to the full plausible range and re-search
        lo, hi = PLAUSIBLE_V_MIN, PLAUSIBLE_V_MAX
        step = (hi - lo) / (steps - 1)
        best_v, best_err = _grid_minimum(lo, hi, steps, targets)
    # local refinement so the round-trip lands on the exact voltage
    span = step
    while span > 1e-12:
        fine_lo = max(lo, best_v - span)
        fine_hi = min(hi, best_v + span)
        best_v, best_err = _grid_minimum(fine_lo, fine_hi, 33, targets)
        span = (fine_hi - fine_lo) / 16.0
    at_plausible_edge = (
        best_v - PLAUSIBLE_V_MIN < 1e-9 or PLAUSIBLE_V_MAX - best_v < 1e-9
    )
    if at_plausible_edge and best_err > 1e-6:
        raise ConfigurationError(
            f"no plausible voltage explains the target grade "
            f"(best fit {best_v:.4f} V at the {PLAUSIBLE_V_MIN}..{PLAUSIBLE_V_MAX} "
            f"edge, rms error {best_err:.3g})"
        )
    return best_v, best_err
