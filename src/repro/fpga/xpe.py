"""XPower-Estimator-like component characterization.

The paper uses Xilinx XPE to characterize single components before any
implementation exists: one BRAM block swept over frequency (Fig. 2)
and one pipeline stage's logic (Fig. 3), from which it derives the
Table III per-block linear model.  This module is that spreadsheet:
sweep helpers over the component power models plus a least-squares fit
that regenerates the Table III coefficients from the sweep data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.bram import (
    PAPER_READ_WIDTH,
    PAPER_WRITE_RATE,
    BramKind,
    bram_dynamic_power_uw,
)
from repro.fpga.logic import PAPER_PE_FOOTPRINT, PeFootprint, stage_logic_power_uw
from repro.fpga.speedgrade import SpeedGrade

__all__ = ["FrequencySweep", "XPowerEstimator"]

#: the frequency grid used by the paper's characterization plots (MHz)
DEFAULT_FREQUENCIES_MHZ = (100.0, 200.0, 300.0, 400.0, 500.0)


@dataclass(frozen=True)
class FrequencySweep:
    """One characterization series: power (µW) over frequency (MHz)."""

    label: str
    frequencies_mhz: np.ndarray
    power_uw: np.ndarray

    def __post_init__(self) -> None:
        if self.frequencies_mhz.shape != self.power_uw.shape:
            raise ConfigurationError("frequency and power arrays must align")

    def fit_uw_per_mhz(self) -> float:
        """Least-squares slope through the origin, in µW/MHz.

        This is how Table III is produced from Fig. 2 data: the
        component models are linear in frequency, so the fit recovers
        the per-block coefficient exactly (tests assert the residual
        is numerically zero).
        """
        f = self.frequencies_mhz
        p = self.power_uw
        denom = float(f @ f)
        if denom == 0.0:  # repro-lint: disable=FLT001 (exact all-zero sentinel)
            raise ConfigurationError("cannot fit a sweep with all-zero frequencies")
        return float(f @ p) / denom

    def max_residual_uw(self) -> float:
        """Largest |power − fit×f| over the sweep."""
        slope = self.fit_uw_per_mhz()
        return float(np.abs(self.power_uw - slope * self.frequencies_mhz).max())


class XPowerEstimator:
    """Spreadsheet-style early power estimation for single components."""

    def __init__(self, frequencies_mhz=DEFAULT_FREQUENCIES_MHZ):
        freqs = np.asarray(frequencies_mhz, dtype=float)
        if freqs.ndim != 1 or len(freqs) == 0:
            raise ConfigurationError("frequencies must be a non-empty 1-D sequence")
        if (freqs < 0).any():
            raise ConfigurationError("frequencies must be non-negative")
        self.frequencies_mhz = freqs

    def bram_sweep(
        self,
        kind: BramKind,
        grade: SpeedGrade,
        *,
        write_rate: float = PAPER_WRITE_RATE,
        read_width: int = PAPER_READ_WIDTH,
    ) -> FrequencySweep:
        """Power of a single BRAM block over frequency (a Fig. 2 series)."""
        power = np.array(
            [
                bram_dynamic_power_uw(
                    f, grade, kind, 1, write_rate=write_rate, read_width=read_width
                )
                for f in self.frequencies_mhz
            ]
        )
        return FrequencySweep(
            label=f"{kind.value}Kb ({grade})",
            frequencies_mhz=self.frequencies_mhz.copy(),
            power_uw=power,
        )

    def logic_stage_sweep(
        self,
        grade: SpeedGrade,
        footprint: PeFootprint = PAPER_PE_FOOTPRINT,
    ) -> FrequencySweep:
        """Per-stage logic+signal power over frequency (a Fig. 3 series)."""
        power = np.array(
            [stage_logic_power_uw(f, grade, footprint) for f in self.frequencies_mhz]
        )
        return FrequencySweep(
            label=f"logic/stage ({grade})",
            frequencies_mhz=self.frequencies_mhz.copy(),
            power_uw=power,
        )

    def table3(self) -> dict[tuple[BramKind, SpeedGrade], float]:
        """Regenerate Table III: fitted µW/MHz per (kind, grade)."""
        return {
            (kind, grade): self.bram_sweep(kind, grade).fit_uw_per_mhz()
            for kind in BramKind
            for grade in SpeedGrade
        }
