"""FPGA (partial) reconfiguration time model.

Router virtualization's management story — the paper's primary
motivation — includes adding and removing virtual networks on a live
platform.  On FPGA that is a reconfiguration: full-device for the
merged engine (its single pipeline is monolithic), partial for the
separate scheme (each engine sits in its own floorplan region, the
"fine grained control over the resources" of Section IV-B).

Reconfiguration time = bitstream bytes / configuration bandwidth.
Bitstream size scales with the configured region's share of the die;
the ICAP port moves 32 bits at 100 MHz (400 MB/s, Virtex-6 UG360).
Stage memories reload through the update port at one word per cycle.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fpga.catalog import XC6VLX760
from repro.fpga.device import DeviceSpec
from repro.units import BITS_PER_BYTE, mhz_to_hz, s_to_ms

__all__ = [
    "full_bitstream_bytes",
    "partial_reconfig_time_ms",
    "full_reconfig_time_ms",
    "memory_load_time_ms",
    "ICAP_BYTES_PER_SECOND",
]

#: ICAP configuration bandwidth: 32 bit @ 100 MHz (Virtex-6 UG360)
ICAP_BYTES_PER_SECOND = 400e6

#: configuration bits per logic cell — calibrated so the LX760's full
#: bitstream lands at its documented ~184 Mb
_CONFIG_BITS_PER_LOGIC_CELL = 243.0


def full_bitstream_bytes(device: DeviceSpec = XC6VLX760) -> int:
    """Full-device configuration bitstream size in bytes."""
    return int(device.logic_cells * _CONFIG_BITS_PER_LOGIC_CELL / BITS_PER_BYTE)


def full_reconfig_time_ms(device: DeviceSpec = XC6VLX760) -> float:
    """Time to reconfigure the whole device through ICAP."""
    return s_to_ms(full_bitstream_bytes(device) / ICAP_BYTES_PER_SECOND)


def partial_reconfig_time_ms(
    region_area_fraction: float, device: DeviceSpec = XC6VLX760
) -> float:
    """Time to reconfigure one floorplan region through ICAP.

    ``region_area_fraction`` is the share of the die the region
    covers (a :class:`repro.fpga.floorplan.Region`'s
    ``area_fraction``); partial bitstreams scale with it.
    """
    if not 0.0 < region_area_fraction <= 1.0:
        raise ConfigurationError(
            f"region_area_fraction must be in (0, 1], got {region_area_fraction}"
        )
    return full_reconfig_time_ms(device) * region_area_fraction


def memory_load_time_ms(total_bits: int, frequency_mhz: float, word_bits: int = 18) -> float:
    """Time to (re)load stage memories through the update port.

    One ``word_bits``-wide write per cycle at the engine clock — the
    path used when a merged engine's tables are rebuilt without
    touching the fabric.
    """
    if total_bits < 0:
        raise ConfigurationError("total_bits must be non-negative")
    if frequency_mhz <= 0 or word_bits <= 0:
        raise ConfigurationError("frequency and word width must be positive")
    words = -(-total_bits // word_bits)
    return s_to_ms(words / mhz_to_hz(frequency_mhz))
