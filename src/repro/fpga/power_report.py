"""XPower-Analyzer-like power reporting over a placed design.

This is the "experimental" measurement path of the reproduction: a
bottom-up power computation from the *placed* netlist — actual BRAM
block mixes per stage, implemented logic after cross-engine control
sharing, static power of the configured die area — as opposed to the
closed-form analytical model in :mod:`repro.core.power`.  The two
paths share the published per-resource coefficients (they describe the
same silicon) but differ in structure, which is what produces the
paper's small, design-dependent model error (Fig. 7, ±3 % max).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.bram import PAPER_WRITE_RATE, BramKind, bram_dynamic_power_uw
from repro.fpga.logic import signal_power_fraction, stage_logic_power_uw
from repro.fpga.placer import PlacedDesign
from repro.fpga.speedgrade import grade_data
from repro.units import uw_to_w

__all__ = ["PowerReport", "EnginePower", "XPowerAnalyzer"]

#: sensitivity of implemented static power to configured die area.
#: Gentler than the ±5 % catalog envelope: the analyzer reports the
#: actual design, whose area never swings across the full range.
_STATIC_AREA_SLOPE = 0.01
_STATIC_AREA_PIVOT = 0.25


@dataclass(frozen=True)
class EnginePower:
    """Per-engine dynamic power breakdown, in watts."""

    label: str
    logic_w: float
    signal_w: float
    bram_w: float

    @property
    def dynamic_w(self) -> float:
        return self.logic_w + self.signal_w + self.bram_w


@dataclass(frozen=True)
class PowerReport:
    """Full-design power report (the XPA output equivalent)."""

    design_name: str
    frequency_mhz: float
    static_w: float
    engines: tuple[EnginePower, ...]

    @property
    def logic_w(self) -> float:
        """Implemented logic power (all engines)."""
        return sum(e.logic_w for e in self.engines)

    @property
    def signal_w(self) -> float:
        """Implemented signal (routing) power (all engines)."""
        return sum(e.signal_w for e in self.engines)

    @property
    def bram_w(self) -> float:
        """Implemented BRAM power (all engines)."""
        return sum(e.bram_w for e in self.engines)

    @property
    def dynamic_w(self) -> float:
        """Total dynamic power."""
        return self.logic_w + self.signal_w + self.bram_w

    @property
    def total_w(self) -> float:
        """Total device power (static + dynamic)."""
        return self.static_w + self.dynamic_w


class XPowerAnalyzer:
    """Compute a :class:`PowerReport` for a :class:`PlacedDesign`."""

    def report(
        self,
        placed: PlacedDesign,
        frequency_mhz: float | None = None,
        engine_activities: np.ndarray | None = None,
        *,
        write_rate: float = PAPER_WRITE_RATE,
    ) -> PowerReport:
        """Measure power of ``placed`` at an operating point.

        Parameters
        ----------
        placed:
            The implemented design.
        frequency_mhz:
            Operating clock; defaults to the design's achieved fmax.
        engine_activities:
            Per-engine duty cycle in [0, 1] — the utilization µ_i of
            the virtual router each engine serves (Assumption 1 makes
            these 1/K in the paper).  Defaults to all-1 (full load).
        write_rate:
            Table-update rate applied to every stage memory.
        """
        f = placed.fmax_mhz if frequency_mhz is None else frequency_mhz
        if f < 0:
            raise ConfigurationError("frequency must be non-negative")
        n = placed.n_engines
        if engine_activities is None:
            activities = np.ones(n)
        else:
            activities = np.asarray(engine_activities, dtype=float)
            if activities.shape != (n,):
                raise ConfigurationError(
                    f"engine_activities must have shape ({n},), got {activities.shape}"
                )
            if ((activities < 0) | (activities > 1)).any():
                raise ConfigurationError("engine activities must be in [0, 1]")

        grade = placed.grade
        signal_share = signal_power_fraction()
        engines: list[EnginePower] = []
        for engine, activity in zip(placed.engines, activities):
            netlist = engine.netlist
            logic_total_uw = (
                netlist.n_stages
                * stage_logic_power_uw(f, grade, netlist.footprint, float(activity))
                * placed.logic_opt_factor
                * placed.jitter_factor
            )
            bram_uw = 0.0
            for packing in engine.stage_packings:
                bram_uw += bram_dynamic_power_uw(
                    f,
                    grade,
                    BramKind.B36,
                    packing.blocks36,
                    write_rate=write_rate,
                    read_width=netlist.word_width,
                    enable_rate=float(activity),
                )
                bram_uw += bram_dynamic_power_uw(
                    f,
                    grade,
                    BramKind.B18,
                    packing.blocks18,
                    write_rate=write_rate,
                    read_width=netlist.word_width,
                    enable_rate=float(activity),
                )
            bram_uw *= placed.bram_opt_factor * placed.jitter_factor
            engines.append(
                EnginePower(
                    label=netlist.label,
                    logic_w=uw_to_w(logic_total_uw * (1.0 - signal_share)),
                    signal_w=uw_to_w(logic_total_uw * signal_share),
                    bram_w=uw_to_w(bram_uw),
                )
            )

        static = self._implemented_static_w(placed)
        return PowerReport(
            design_name=placed.name,
            frequency_mhz=f,
            static_w=static,
            engines=tuple(engines),
        )

    @staticmethod
    def _implemented_static_w(placed: PlacedDesign) -> float:
        """Static power of the configured design.

        The catalog value (4.5 W / 3.1 W) is the representative
        number; the implemented value tracks the configured die area
        with a gentle slope and benefits from cross-engine clock and
        control-set sharing, both bounded well inside the paper's
        ±5 % observation.  The sharing term is what makes measured
        total power *decrease* as more parallel engines are
        implemented (paper Section VI-A discussion of Fig. 6).
        """
        base = grade_data(placed.grade).static_power_w
        base *= placed.device.logic_cells / 758_784  # scale for non-LX760 parts
        factor = 1.0 + _STATIC_AREA_SLOPE * (placed.used_area_fraction - _STATIC_AREA_PIVOT)
        factor = min(1.05, max(0.95, factor))
        return base * factor * placed.static_opt_factor
