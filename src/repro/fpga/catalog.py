"""Device catalog: the Virtex-6 parts used and explored by the paper.

The paper's platform is the XC6VLX760 (Table II).  A few siblings are
included so the analysis package can explore device choice (smaller
parts gate virtualized-separate earlier; the figures all use the
LX760).  Counts follow Xilinx DS150; the Table II figures (758 K logic
cells, 26 Mb BRAM, 8 Mb distributed RAM, 1200 I/O) are reproduced by
the LX760 entry and asserted in tests.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fpga.device import DeviceSpec

__all__ = ["XC6VLX760", "DEVICE_CATALOG", "get_device"]

#: the paper's device (Table II)
XC6VLX760 = DeviceSpec(
    name="XC6VLX760",
    logic_cells=758_784,
    slice_registers=948_480,
    slice_luts=474_240,
    bram18_blocks=1440,  # 720 × 36 Kb = 26 Mb
    max_io_pins=1200,
    distributed_ram_kbits=8192,  # 8 Mb max distributed RAM
)

XC6VLX240T = DeviceSpec(
    name="XC6VLX240T",
    logic_cells=241_152,
    slice_registers=301_440,
    slice_luts=150_720,
    bram18_blocks=832,  # 416 × 36 Kb ≈ 15 Mb
    max_io_pins=720,
    distributed_ram_kbits=3650,
)

XC6VLX550T = DeviceSpec(
    name="XC6VLX550T",
    slice_registers=687_360,
    logic_cells=549_888,
    slice_luts=343_680,
    bram18_blocks=1264,  # 632 × 36 Kb ≈ 22.7 Mb
    max_io_pins=1200,
    distributed_ram_kbits=6200,
)

XC6VSX475T = DeviceSpec(
    name="XC6VSX475T",
    logic_cells=476_160,
    slice_registers=595_200,
    slice_luts=297_600,
    bram18_blocks=2128,  # 1064 × 36 Kb ≈ 38.3 Mb
    max_io_pins=840,
    distributed_ram_kbits=7640,
)

DEVICE_CATALOG: dict[str, DeviceSpec] = {
    device.name: device
    for device in (XC6VLX760, XC6VLX240T, XC6VLX550T, XC6VSX475T)
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by part number (case-insensitive)."""
    key = name.upper()
    if key not in DEVICE_CATALOG:
        known = ", ".join(sorted(DEVICE_CATALOG))
        raise ConfigurationError(f"unknown device {name!r}; known parts: {known}")
    return DEVICE_CATALOG[key]
