"""Column-based floorplanner.

Virtex-6 fabric is column-organized: columns of slices interleaved
with BRAM and DSP columns, stacked in clock regions.  This simplified
floorplanner allocates each lookup engine a contiguous horizontal band
of the die, tall enough to supply its slice and BRAM needs.  Its
outputs feed two consumers:

* the **used-area fraction** drives the static-power ±5 % envelope
  (paper Section V-A: static power is proportional to covered area);
* the **aspect penalty** of an engine squeezed across many clock
  regions contributes to the P&R simulator's signal-power overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, PlacementError
from repro.fpga.device import DeviceSpec, ResourceUsage

__all__ = ["Region", "Floorplan"]

#: modeled fabric grid: rows of clock regions × resource columns.
#: Virtex-6 LX760 has 18 rows (9 per half) in the real part; the grid
#: is normalized so only *fractions* matter downstream.
_GRID_ROWS = 18


@dataclass(frozen=True, slots=True)
class Region:
    """A horizontal band of the die assigned to one engine."""

    engine_index: int
    row_start: float
    row_end: float

    def __post_init__(self) -> None:
        if self.row_end <= self.row_start:
            raise ConfigurationError("region must have positive height")

    @property
    def height_rows(self) -> float:
        return self.row_end - self.row_start

    @property
    def area_fraction(self) -> float:
        """Fraction of the die this region covers."""
        return self.height_rows / _GRID_ROWS

    @property
    def clock_regions_spanned(self) -> int:
        """Number of clock-region rows the band crosses."""
        import math

        return max(1, math.ceil(self.row_end - 1e-9) - math.floor(self.row_start + 1e-9))


@dataclass
class Floorplan:
    """Sequential band allocator over one device."""

    device: DeviceSpec
    regions: list[Region] = field(default_factory=list)
    _next_row: float = 0.0

    def allocate(self, usage: ResourceUsage) -> Region:
        """Allocate a band tall enough for ``usage``.

        The band height is set by the scarcer of the engine's slice
        and BRAM column needs.  Raises :class:`PlacementError` when
        the die is full — the physical counterpart of
        :class:`ResourceExhaustedError`.
        """
        slice_frac = max(
            usage.registers / self.device.slice_registers,
            usage.total_luts / self.device.slice_luts,
        )
        bram_frac = usage.bram18_equivalent / self.device.bram18_blocks
        height = max(slice_frac, bram_frac) * _GRID_ROWS
        # minimum placeable band: a sliver of one clock region
        height = max(height, 0.05)
        if self._next_row + height > _GRID_ROWS + 1e-9:
            raise PlacementError(
                f"floorplan full: engine {len(self.regions)} needs {height:.2f} rows, "
                f"only {_GRID_ROWS - self._next_row:.2f} remain"
            )
        region = Region(
            engine_index=len(self.regions),
            row_start=self._next_row,
            row_end=self._next_row + height,
        )
        self.regions.append(region)
        self._next_row += height
        return region

    def used_area_fraction(self) -> float:
        """Fraction of the die covered by allocated regions."""
        return min(1.0, self._next_row / _GRID_ROWS)

    def remaining_area_fraction(self) -> float:
        """Unallocated die fraction."""
        return 1.0 - self.used_area_fraction()
