"""Deterministic place-and-route simulator.

This is the stand-in for Xilinx ISE's implementation flow: it takes
one or more lookup-engine netlists, packs their stage memories into
BRAM blocks, allocates floorplan regions, checks device capacity,
derives the achievable clock, and — crucially for reproducing the
paper's Fig. 6/7 — computes the *optimization factors* the synthesis
tool applies when implementing multiple parallel architectures:

* replicated engines share control logic and clock distribution, so
  the implemented logic power undercuts the per-engine model slightly,
  more so at higher K ("the experimental value decreases due to
  various hardware optimizations", Section VI-A);
* large BRAM arrays get placement/routing optimization whose benefit
  is design-dependent, which is why the paper's merged configurations
  show the largest model error (Section VI-A).

All "randomness" is a deterministic hash of the design, so a given
configuration always places identically — experiments are exactly
reproducible, as post-P&R results are for a fixed seed/tool version.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, PlacementError
from repro.fpga.bram import BramPacking, pack_stage_memory
from repro.fpga.catalog import XC6VLX760
from repro.fpga.device import DeviceSpec, ResourceUsage
from repro.fpga.floorplan import Floorplan, Region
from repro.fpga.logic import PAPER_PE_FOOTPRINT, PeFootprint
from repro.fpga.speedgrade import SpeedGrade
from repro.fpga.timing import achievable_fmax_mhz

__all__ = ["EngineNetlist", "PlacedEngine", "PlacedDesign", "PlaceAndRoute", "ENGINE_IO_PINS", "SHARED_IO_PINS"]

#: I/O pins per lookup-engine instance (input + output packet buses).
#: Chosen so a 15-engine separate design saturates the LX760's 1200
#: pins — the paper's reason for capping the sweep at K = 15.
ENGINE_IO_PINS = 76

#: pins shared by the whole design (clock, reset, management)
SHARED_IO_PINS = 60

#: maximum control/clock-sharing benefit on *logic* power across
#: replicated engines
_MAX_CONTROL_SHARING = 0.035

#: maximum clock/control-set sharing benefit on *static* power across
#: replicated engines (the Fig. 6 "experimental value decreases" effect)
_MAX_STATIC_SHARING = 0.006

#: maximum BRAM placement-optimization benefit for large arrays
#: (the merged scheme's dominant model-error channel, Fig. 7)
_MAX_BRAM_OPTIMIZATION = 0.08

#: BRAM block count (18 Kb equivalents) at which the optimization saturates
_BRAM_OPT_SCALE = 500

#: deterministic placement-jitter half-width: a small baseline plus a
#: routing-variance term that grows with the BRAM array size, making
#: merged designs the noisiest (paper Section VI-A)
_JITTER_BASE = 0.004
_JITTER_BRAM = 0.011


@dataclass(frozen=True)
class EngineNetlist:
    """Synthesizable description of one lookup pipeline.

    Attributes
    ----------
    label:
        Engine name (enters the deterministic placement hash).
    stage_memory_bits:
        Memory required by each stage, in bits.
    word_width:
        Stage read-port width in bits.
    footprint:
        Per-stage PE resource counts.
    io_pins:
        Engine-private I/O pins.
    """

    label: str
    stage_memory_bits: np.ndarray
    word_width: int = 18
    footprint: PeFootprint = PAPER_PE_FOOTPRINT
    io_pins: int = ENGINE_IO_PINS

    def __post_init__(self) -> None:
        bits = np.asarray(self.stage_memory_bits, dtype=np.int64)
        if bits.ndim != 1 or len(bits) == 0:
            raise ConfigurationError("stage_memory_bits must be a non-empty 1-D array")
        if (bits < 0).any():
            raise ConfigurationError("stage memory sizes must be non-negative")
        object.__setattr__(self, "stage_memory_bits", bits)
        if self.word_width <= 0:
            raise ConfigurationError("word_width must be positive")
        if self.io_pins < 0:
            raise ConfigurationError("io_pins must be non-negative")

    @property
    def n_stages(self) -> int:
        return len(self.stage_memory_bits)

    @property
    def total_memory_bits(self) -> int:
        return int(self.stage_memory_bits.sum())


@dataclass(frozen=True)
class PlacedEngine:
    """One engine after packing and region assignment."""

    netlist: EngineNetlist
    stage_packings: tuple[BramPacking, ...]
    logic_usage: ResourceUsage
    region: Region

    @property
    def bram18_equivalent(self) -> int:
        """Total allocated BRAM in 18 Kb primitive units."""
        return sum(p.total_blocks18_equivalent for p in self.stage_packings)

    @property
    def widest_stage_blocks(self) -> int:
        """18 Kb-equivalent blocks behind the largest stage memory."""
        return max(
            (p.total_blocks18_equivalent for p in self.stage_packings), default=0
        )

    @property
    def usage(self) -> ResourceUsage:
        blocks36 = sum(p.blocks36 for p in self.stage_packings)
        blocks18 = sum(p.blocks18 for p in self.stage_packings)
        return self.logic_usage + ResourceUsage(bram36=blocks36, bram18=blocks18)


@dataclass(frozen=True)
class PlacedDesign:
    """A fully placed-and-routed design, ready for power reporting."""

    name: str
    device: DeviceSpec
    grade: SpeedGrade
    engines: tuple[PlacedEngine, ...]
    shared_usage: ResourceUsage
    total_usage: ResourceUsage
    fmax_mhz: float
    used_area_fraction: float
    logic_opt_factor: float
    static_opt_factor: float
    bram_opt_factor: float
    jitter_factor: float

    @property
    def n_engines(self) -> int:
        return len(self.engines)

    @property
    def utilization(self) -> float:
        """Overall device utilization of the placed design."""
        return self.total_usage.utilization(self.device)


def _design_hash(name: str, device: DeviceSpec, grade: SpeedGrade, engines) -> int:
    """Deterministic 64-bit hash of the design identity."""
    h = hashlib.sha256()
    h.update(name.encode())
    h.update(device.name.encode())
    h.update(grade.value.encode())
    for engine in engines:
        h.update(engine.label.encode())
        h.update(np.asarray(engine.stage_memory_bits, dtype=np.int64).tobytes())
        h.update(engine.word_width.to_bytes(4, "little"))
    return int.from_bytes(h.digest()[:8], "little")


class PlaceAndRoute:
    """Implementation flow: netlists → :class:`PlacedDesign`."""

    def __init__(self, device: DeviceSpec = XC6VLX760, grade: SpeedGrade = SpeedGrade.G2):
        self.device = device
        self.grade = grade

    def place(
        self,
        engines: list[EngineNetlist],
        *,
        name: str = "design",
        shared_io_pins: int = SHARED_IO_PINS,
        shared_logic: ResourceUsage | None = None,
    ) -> PlacedDesign:
        """Place engines on the device.

        Raises
        ------
        ResourceExhaustedError
            If the combined usage exceeds the device inventory (the
            paper's separate-scheme scalability wall).
        PlacementError
            If the floorplan cannot host the engine regions.
        """
        if not engines:
            raise PlacementError("cannot place a design with no engines")
        shared = shared_logic or ResourceUsage()
        shared = shared + ResourceUsage(io_pins=shared_io_pins)

        # pack every engine and check global capacity first, so the
        # caller sees the gating *resource* (the paper's scalability
        # walls) rather than a floorplan failure
        packed: list[tuple[EngineNetlist, tuple[BramPacking, ...], ResourceUsage]] = []
        total = shared
        for engine in engines:
            packings = tuple(
                pack_stage_memory(int(bits), engine.word_width)
                for bits in engine.stage_memory_bits
            )
            logic_usage = engine.footprint.usage(engine.n_stages, io_pins=engine.io_pins)
            bram_usage = ResourceUsage(
                bram36=sum(p.blocks36 for p in packings),
                bram18=sum(p.blocks18 for p in packings),
            )
            packed.append((engine, packings, logic_usage))
            total = total + logic_usage + bram_usage
        self.device.check_fits(total)

        floorplan = Floorplan(self.device)
        placed: list[PlacedEngine] = []
        for engine, packings, logic_usage in packed:
            bram_usage = ResourceUsage(
                bram36=sum(p.blocks36 for p in packings),
                bram18=sum(p.blocks18 for p in packings),
            )
            region = floorplan.allocate(logic_usage + bram_usage)
            placed.append(
                PlacedEngine(
                    netlist=engine,
                    stage_packings=packings,
                    logic_usage=logic_usage,
                    region=region,
                )
            )

        utilization = total.utilization(self.device)
        widest = max(engine.widest_stage_blocks for engine in placed)
        fmax = achievable_fmax_mhz(self.grade, widest, utilization)

        # -- optimization factors (the paper's "hardware optimizations") --
        n = len(placed)
        logic_opt = 1.0 - _MAX_CONTROL_SHARING * (1.0 - 1.0 / n)
        static_opt = 1.0 - _MAX_STATIC_SHARING * (1.0 - 1.0 / n)
        total_blocks = sum(engine.bram18_equivalent for engine in placed)
        bram_scale = min(1.0, total_blocks / _BRAM_OPT_SCALE)
        bram_opt = 1.0 - _MAX_BRAM_OPTIMIZATION * bram_scale
        jitter_width = _JITTER_BASE + _JITTER_BRAM * bram_scale
        rng = np.random.default_rng(_design_hash(name, self.device, self.grade, engines))
        jitter = 1.0 + float(rng.uniform(-jitter_width, jitter_width))

        return PlacedDesign(
            name=name,
            device=self.device,
            grade=self.grade,
            engines=tuple(placed),
            shared_usage=shared,
            total_usage=total,
            fmax_mhz=fmax,
            used_area_fraction=floorplan.used_area_fraction(),
            logic_opt_factor=logic_opt,
            static_opt_factor=static_opt,
            bram_opt_factor=bram_opt,
            jitter_factor=jitter,
        )
