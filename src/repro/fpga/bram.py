"""Block RAM packing and dynamic power (paper Section V-B, Table III).

Xilinx BRAM is quantized: a 36 Kb block holds two independently usable
18 Kb primitives, and any memory, however small, occupies at least one
block — which is why the paper models BRAM power per *block* rather
than per bit (⌈M/18K⌉ × c × f in Table III).

The dynamic-power model here is XPE-like: a per-block, per-MHz base
coefficient (grade- and kind-dependent) scaled by secondary factors
for write rate, read width and enable (clock-gating) rate.  At the
paper's operating point — 1 % write rate, 18-bit reads, enabled every
cycle — the secondary factors are exactly 1, so Table III's published
coefficients fall out of a least-squares fit of this model by
construction (regenerated as the Table III experiment).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.invariants import monotone_in
from repro.errors import ConfigurationError
from repro.fpga.speedgrade import SpeedGrade, grade_data
from repro.units import BRAM18K_BITS, BRAM36K_BITS, ceil_div

__all__ = [
    "BramKind",
    "BramPacking",
    "pack_stage_memory",
    "blocks_required",
    "bram_dynamic_power_uw",
    "PAPER_WRITE_RATE",
    "PAPER_READ_WIDTH",
]

#: the paper's assumed table-update (write) rate (Section V-B)
PAPER_WRITE_RATE = 0.01
#: the paper's assumed read data width in bits (Section V-B)
PAPER_READ_WIDTH = 18

#: widest single-block read port (36 Kb block in SDP mode per UG363)
_MAX_WIDTH = {18: 36, 36: 72}


class BramKind(enum.Enum):
    """BRAM primitive kinds: independent 18 Kb and paired 36 Kb blocks."""

    B18 = 18
    B36 = 36

    @property
    def capacity_bits(self) -> int:
        """Usable capacity of one block of this kind."""
        return BRAM18K_BITS if self is BramKind.B18 else BRAM36K_BITS

    @property
    def max_width(self) -> int:
        """Maximum read-port width of one block."""
        return _MAX_WIDTH[self.value]

    def coefficient_uw_per_mhz(self, grade: SpeedGrade) -> float:
        """Table III base coefficient for this kind and grade."""
        data = grade_data(grade)
        return data.bram18_uw_per_mhz if self is BramKind.B18 else data.bram36_uw_per_mhz


def blocks_required(bits: int, kind: BramKind) -> int:
    """Paper's block count: ``⌈M / capacity⌉`` (Table III).

    Zero bits need zero blocks; any positive amount occupies at least
    one block (the quantization the paper calls out).
    """
    if bits < 0:
        raise ConfigurationError(f"bits must be non-negative, got {bits}")
    if bits == 0:
        return 0
    return ceil_div(bits, kind.capacity_bits)


@dataclass(frozen=True, slots=True)
class BramPacking:
    """Block allocation for one stage memory.

    ``blocks36`` full 36 Kb blocks plus ``blocks18`` 18 Kb primitives.
    """

    blocks36: int
    blocks18: int
    bits: int
    width: int

    def __post_init__(self) -> None:
        if self.blocks36 < 0 or self.blocks18 < 0:
            raise ConfigurationError("block counts must be non-negative")

    @property
    def total_blocks18_equivalent(self) -> int:
        """Capacity measured in 18 Kb primitive units."""
        return 2 * self.blocks36 + self.blocks18

    @property
    def capacity_bits(self) -> int:
        """Total allocated capacity."""
        return self.blocks36 * BRAM36K_BITS + self.blocks18 * BRAM18K_BITS

    @property
    def waste_bits(self) -> int:
        """Allocated-but-unused capacity (quantization loss)."""
        return self.capacity_bits - self.bits


def pack_stage_memory(bits: int, width: int = PAPER_READ_WIDTH) -> BramPacking:
    """Pack one stage memory into BRAM blocks.

    Fills with 36 Kb blocks and uses a trailing 18 Kb primitive when
    the remainder fits, subject to the port-width floor: a memory read
    ``width`` bits wide needs at least ``⌈width / max_width⌉`` blocks
    regardless of depth.
    """
    if bits < 0:
        raise ConfigurationError(f"bits must be non-negative, got {bits}")
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    if bits == 0:
        return BramPacking(blocks36=0, blocks18=0, bits=0, width=width)
    blocks36, remainder = divmod(bits, BRAM36K_BITS)
    blocks18 = 0
    if remainder > BRAM18K_BITS:
        blocks36 += 1
    elif remainder > 0:
        blocks18 = 1
    # width floor: wide shallow memories still need parallel blocks.
    # An 18 Kb primitive reads up to 36 bits, so the port needs at
    # least ⌈width/36⌉ primitives in parallel regardless of depth.
    min_primitives = ceil_div(width, BramKind.B18.max_width)
    deficit = min_primitives - (2 * blocks36 + blocks18)
    if deficit > 0:
        blocks36 += deficit // 2
        blocks18 += deficit % 2
    return BramPacking(blocks36=blocks36, blocks18=blocks18, bits=bits, width=width)


@monotone_in("frequency_mhz", "n_blocks")
def bram_dynamic_power_uw(
    frequency_mhz: float,
    grade: SpeedGrade,
    kind: BramKind,
    n_blocks: int = 1,
    *,
    write_rate: float = PAPER_WRITE_RATE,
    read_width: int = PAPER_READ_WIDTH,
    enable_rate: float = 1.0,
) -> float:
    """Dynamic power of ``n_blocks`` BRAM blocks, in µW.

    Parameters
    ----------
    frequency_mhz:
        Operating clock frequency.
    grade, kind:
        Select the Table III base coefficient.
    n_blocks:
        Number of active blocks of this kind.
    write_rate:
        Fraction of cycles performing a write.  Writes toggle more
        bit-lines than reads; the factor is normalized to 1 at the
        paper's 1 % update rate.
    read_width:
        Read-port data width in bits.  The paper found the width
        effect "negligible compared with the other parameters"; the
        model applies a correspondingly weak factor normalized to 1 at
        18 bits.
    enable_rate:
        Fraction of cycles the block is enabled — the clock-gating
        knob (Section IV: gated stages dissipate no dynamic power).
    """
    if frequency_mhz < 0:
        raise ConfigurationError("frequency must be non-negative")
    if n_blocks < 0:
        raise ConfigurationError("n_blocks must be non-negative")
    if not 0.0 <= write_rate <= 1.0:
        raise ConfigurationError("write_rate must be in [0, 1]")
    if read_width <= 0:
        raise ConfigurationError("read_width must be positive")
    if not 0.0 <= enable_rate <= 1.0:
        raise ConfigurationError("enable_rate must be in [0, 1]")
    base = kind.coefficient_uw_per_mhz(grade)
    write_factor = 1.0 + 0.35 * (write_rate - PAPER_WRITE_RATE)
    width_factor = 0.95 + 0.05 * (read_width / PAPER_READ_WIDTH)
    return base * frequency_mhz * n_blocks * write_factor * width_factor * enable_rate
