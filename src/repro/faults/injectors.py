"""Composable fault injectors for the serving layer.

Three fault species, mirroring how shared-engine deployments actually
diverge from their steady-state models (paper Section I's transparency
requirement; Chen et al.'s call to validate power models at perturbed
operating points):

* :class:`EngineStall` — an engine's effective lookup-slot rate drops
  to a fraction of nominal (``frequency_scale``), or the engine goes
  offline entirely (``frequency_scale == 0``).  NV/VS bind engine *i*
  to virtual network *i*, so a stalled engine cannot be rerouted — its
  VN's excess traffic is shed by admission control instead.
* :class:`BramWriteStorm` — a burst of table-update traffic that
  inflates every stage memory's write rate (a power input of the
  BRAM model, Table III) and steals a fraction of the lookup slots
  device-wide (updates and lookups share the stage-memory port).
* :class:`TransientWalkFailure` — the first ``n_failures`` walk
  attempts against one engine fail with
  :class:`~repro.errors.TransientEngineError` each batch, exercising
  the serving layer's retry-with-backoff path.

Injectors are frozen value objects; *when* they apply is decided by a
:class:`~repro.faults.plan.FaultPlan`.  :class:`ActiveFaults` is the
composed per-batch view the serving layer consumes: per-engine
capacity scales, the storm's write rate, and the transient-failure
schedule, reduced from however many windows overlap the batch.

Units: ``frequency_scale``, ``slot_steal_fraction`` and admission
fractions are dimensionless fractions in [0, 1]; ``write_rate`` is a
per-cycle write probability in [0, 1] like
:data:`repro.fpga.bram.PAPER_WRITE_RATE`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.errors import ConfigurationError, TransientEngineError

__all__ = [
    "FAULT_KINDS",
    "EngineStall",
    "BramWriteStorm",
    "TransientWalkFailure",
    "Fault",
    "ActiveFaults",
]

#: the fault species, as they appear in metric labels and span names
FAULT_KINDS: tuple[str, ...] = ("stall", "write_storm", "transient_walk")


@dataclass(frozen=True)
class EngineStall:
    """One engine's effective slot rate drops (0 = offline).

    Attributes
    ----------
    engine:
        Index of the stalled engine (0-based; NV/VS bind engine *i*
        to VN *i*, VM has the single engine 0).
    frequency_scale:
        Remaining fraction of the nominal lookup-slot rate in [0, 1];
        0 takes the engine offline for the window.
    """

    engine: int
    frequency_scale: float

    #: metric/span label of this fault species
    kind: ClassVar[str] = "stall"

    def __post_init__(self) -> None:
        if self.engine < 0:
            raise ConfigurationError(f"engine index must be >= 0, got {self.engine}")
        if not 0.0 <= self.frequency_scale < 1.0:
            raise ConfigurationError(
                "frequency_scale must be in [0, 1) — 1.0 would be no stall, "
                f"got {self.frequency_scale}"
            )

    def label(self) -> str:
        """Human/trace label, e.g. ``stall(engine=2, scale=0.25)``."""
        return f"stall(engine={self.engine}, scale={self.frequency_scale:g})"


@dataclass(frozen=True)
class BramWriteStorm:
    """A burst of update traffic against every stage memory.

    Attributes
    ----------
    write_rate:
        Per-cycle write probability applied to every stage memory
        while the storm is active (the BRAM power model's write-rate
        input; nominal is :data:`repro.fpga.bram.PAPER_WRITE_RATE`).
    slot_steal_fraction:
        Fraction of lookup admission slots the update traffic steals
        device-wide, in [0, 1) — updates and lookups contend for the
        same stage-memory port.
    """

    write_rate: float
    slot_steal_fraction: float = 0.0

    #: metric/span label of this fault species
    kind: ClassVar[str] = "write_storm"

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_rate <= 1.0:
            raise ConfigurationError(
                f"write_rate is a per-cycle probability, got {self.write_rate}"
            )
        if not 0.0 <= self.slot_steal_fraction < 1.0:
            raise ConfigurationError(
                "slot_steal_fraction must be in [0, 1); 1.0 would steal "
                f"every lookup slot, got {self.slot_steal_fraction}"
            )

    def label(self) -> str:
        """Human/trace label, e.g. ``write_storm(rate=0.3, steal=0.2)``."""
        return (
            f"write_storm(rate={self.write_rate:g}, "
            f"steal={self.slot_steal_fraction:g})"
        )


@dataclass(frozen=True)
class TransientWalkFailure:
    """The first ``n_failures`` walk attempts on one engine fail.

    The failure schedule is per batch and per attempt — attempt
    numbers below ``n_failures`` raise
    :class:`~repro.errors.TransientEngineError`, later attempts
    succeed — so a retry budget of at least ``n_failures`` recovers
    the batch, and a smaller budget sheds the engine's share.
    """

    engine: int
    n_failures: int = 1

    #: metric/span label of this fault species
    kind: ClassVar[str] = "transient_walk"

    def __post_init__(self) -> None:
        if self.engine < 0:
            raise ConfigurationError(f"engine index must be >= 0, got {self.engine}")
        if self.n_failures < 1:
            raise ConfigurationError(
                f"n_failures must be >= 1, got {self.n_failures}"
            )

    def label(self) -> str:
        """Human/trace label, e.g. ``transient_walk(engine=1, fails=2)``."""
        return f"transient_walk(engine={self.engine}, fails={self.n_failures})"


#: any injector accepted by a fault plan window
Fault = EngineStall | BramWriteStorm | TransientWalkFailure


class ActiveFaults:
    """The faults overlapping one served batch, composed.

    Reduction rules when windows overlap: engine capacity scales
    multiply per engine (two stalls compound), slot-steal fractions
    compose as ``1 - prod(1 - steal)``, the storm write rate is the
    maximum, and transient failure counts per engine are the maximum.
    """

    __slots__ = ("faults", "_stall_scale", "_write_rate", "_slot_steal", "_transient")

    def __init__(self, faults: tuple[Fault, ...]):
        self.faults = faults
        self._stall_scale: dict[int, float] = {}
        self._write_rate: float | None = None
        self._slot_steal = 0.0
        self._transient: dict[int, int] = {}
        for fault in faults:
            if isinstance(fault, EngineStall):
                prior = self._stall_scale.get(fault.engine, 1.0)
                self._stall_scale[fault.engine] = prior * fault.frequency_scale
            elif isinstance(fault, BramWriteStorm):
                if self._write_rate is None or fault.write_rate > self._write_rate:
                    self._write_rate = fault.write_rate
                self._slot_steal = 1.0 - (1.0 - self._slot_steal) * (
                    1.0 - fault.slot_steal_fraction
                )
            else:
                prior_fails = self._transient.get(fault.engine, 0)
                self._transient[fault.engine] = max(prior_fails, fault.n_failures)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def write_rate(self) -> float | None:
        """Active storm write rate, or None when no storm is active."""
        return self._write_rate

    def labels(self) -> tuple[str, ...]:
        """Stable labels of every active fault (for spans and traces)."""
        return tuple(fault.label() for fault in self.faults)

    def kind_counts(self) -> dict[str, int]:
        """Active fault count per species (the ``repro_fault_active`` gauge)."""
        counts = dict.fromkeys(FAULT_KINDS, 0)
        for fault in self.faults:
            counts[fault.kind] += 1
        return counts

    def capacity_scales(self, n_engines: int) -> np.ndarray:
        """Per-engine remaining capacity fraction in [0, 1].

        Combines per-engine stalls with the device-wide slot steal;
        stalls targeting engines beyond ``n_engines`` are ignored (a
        plan generated for one topology may be replayed on a smaller
        one).
        """
        scales = np.ones(n_engines)
        for engine, scale in self._stall_scale.items():
            if engine < n_engines:
                scales[engine] = scale
        return scales * (1.0 - self._slot_steal)

    def check_walk(self, engine: int, attempt: int) -> None:
        """Raise :class:`TransientEngineError` if this attempt must fail.

        ``attempt`` is 0-based; attempts below the engine's scheduled
        failure count fail, later ones succeed.
        """
        failures = self._transient.get(engine, 0)
        if attempt < failures:
            raise TransientEngineError(engine, attempt)
