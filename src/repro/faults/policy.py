"""Graceful-degradation policy knobs for the serving layer.

The paper's transparency requirement (Section I) guarantees each
virtual network its admitted throughput and latency — but only up to
the engine's capacity.  When a fault removes capacity, NV/VS cannot
reroute (engine *i* holds only VN *i*'s table by construction), so the
only transparent response is *bounded admission*: keep every admitted
lookup inside a stable M/D/1 operating point and shed (and count) the
excess.  :class:`DegradationPolicy` packages the three knobs that
behaviour needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["DegradationPolicy", "SHED_RESULT"]

#: next-hop sentinel returned for lookups shed by admission control —
#: distinguishable from every real NHI (which are >= 0) and from
#: :data:`repro.iplookup.rib.NO_ROUTE` (-1), the no-route answer the
#: tables themselves produce
SHED_RESULT: int = -2


@dataclass(frozen=True)
class DegradationPolicy:
    """How the serving layer degrades under active faults.

    Attributes
    ----------
    shed_utilization:
        Highest per-engine M/D/1 utilization admission control allows
        on a degraded engine, in (0, 1).  Offered load beyond
        ``shed_utilization × degraded capacity`` is shed per VN (the
        M/D/1 wait diverges at utilization 1, so admitting more would
        break the latency guarantee for everything already admitted).
    max_retries:
        Walk retries after a transient engine failure before the
        engine's share of the batch is shed.
    backoff_base_s:
        Base of the exponential retry backoff: retry *n* sleeps
        ``backoff_base_s * 2**n`` seconds.  0 (the default) retries
        immediately — the simulated faults are deterministic, so
        waiting buys nothing in-process; set it when fronting a real
        transient resource.
    max_queue_batches:
        Bound on each shard's dispatch queue in the sharded async
        tier (:mod:`repro.serve.frontend`), in batches.  A shard whose
        queue is full sheds the whole offered batch with
        :data:`SHED_RESULT` instead of queueing it — backpressure is
        the queue-level twin of ``shed_utilization``: both exist so a
        saturated engine degrades by *bounded* shedding rather than by
        unbounded waiting.
    """

    shed_utilization: float = 0.95
    max_retries: int = 2
    backoff_base_s: float = 0.0
    max_queue_batches: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.shed_utilization < 1.0:
            raise ConfigurationError(
                "shed_utilization must be in (0, 1) for a stable queue, "
                f"got {self.shed_utilization}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ConfigurationError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.max_queue_batches < 1:
            raise ConfigurationError(
                f"max_queue_batches must be >= 1, got {self.max_queue_batches}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based), in seconds."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        return self.backoff_base_s * (2.0**attempt)

    def wait(self, attempt: int) -> None:
        """Sleep out the backoff for retry ``attempt`` (no-op at base 0)."""
        delay = self.backoff_s(attempt)
        if delay > 0:
            time.sleep(delay)
