"""Deterministic fault schedules over a stream of served batches.

A :class:`FaultPlan` is a set of :class:`FaultWindow` entries — one
injector active over a half-open batch-index interval.  The serving
layer consults :meth:`FaultPlan.context_at` once per ``serve()`` call
and receives the composed
:class:`~repro.faults.injectors.ActiveFaults` view for that batch.

Plans are *values*: the same plan replayed over the same workload
produces the same degradation, and :meth:`FaultPlan.generate` derives
a randomized chaos schedule **deterministically** from a seed — the
property pinned by the determinism tests (same seed, same arguments →
byte-identical :meth:`trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.injectors import (
    ActiveFaults,
    BramWriteStorm,
    EngineStall,
    Fault,
    TransientWalkFailure,
)

__all__ = ["FaultWindow", "FaultPlan"]

#: empty composition handed out for batches with no overlapping window
_NO_FAULTS = ActiveFaults(())


@dataclass(frozen=True)
class FaultWindow:
    """One injector active over ``[start, start + duration)`` batches."""

    start: int
    duration: int
    fault: Fault

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"window start must be >= 0, got {self.start}")
        if self.duration < 1:
            raise ConfigurationError(
                f"window duration must be >= 1 batch, got {self.duration}"
            )

    @property
    def stop(self) -> int:
        """First batch index past the window (half-open interval)."""
        return self.start + self.duration

    def active_at(self, batch_index: int) -> bool:
        """True when ``batch_index`` falls inside the window."""
        return self.start <= batch_index < self.stop


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault windows, ordered by start.

    Build one explicitly from windows, or derive a randomized chaos
    schedule from a seed with :meth:`generate`.  Querying past the
    last window is valid and returns the empty composition, so a plan
    never constrains how many batches a service may serve.
    """

    windows: tuple[FaultWindow, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.windows, key=lambda w: (w.start, w.duration, repr(w.fault)))
        )
        object.__setattr__(self, "windows", ordered)

    @property
    def horizon(self) -> int:
        """First batch index past every window (0 for an empty plan)."""
        return max((w.stop for w in self.windows), default=0)

    def active_at(self, batch_index: int) -> tuple[Fault, ...]:
        """The injectors whose windows cover ``batch_index``."""
        if batch_index < 0:
            raise ConfigurationError(f"batch index must be >= 0, got {batch_index}")
        return tuple(w.fault for w in self.windows if w.active_at(batch_index))

    def context_at(self, batch_index: int) -> ActiveFaults:
        """The composed per-batch fault view the serving layer consumes."""
        faults = self.active_at(batch_index)
        if not faults:
            return _NO_FAULTS
        return ActiveFaults(faults)

    def trace(self, n_batches: int | None = None) -> tuple[tuple[str, ...], ...]:
        """Per-batch tuple of active fault labels over ``n_batches``.

        Defaults to the plan's :attr:`horizon`.  This is the canonical
        replayable form: two plans are behaviourally identical iff
        their traces match, which is what the determinism tests
        compare.
        """
        if n_batches is None:
            n_batches = self.horizon
        if n_batches < 0:
            raise ConfigurationError(f"n_batches must be >= 0, got {n_batches}")
        return tuple(self.context_at(i).labels() for i in range(n_batches))

    def scoped_to_engines(self, engines: tuple[int, ...]) -> "FaultPlan":
        """Project this plan onto one shard's slice of the engines.

        The sharded tier builds one service per worker process, each
        owning a contiguous slice of the global engines; a plan
        authored against the *global* topology must be re-expressed in
        each shard's local indices.  Engine-targeted faults (stalls,
        transient walk failures) aimed at ``engines[i]`` are remapped
        to local engine ``i``; faults aimed at engines owned by other
        shards are dropped; device-wide faults (BRAM write storms)
        apply to every shard — the update traffic hits all stage
        memories regardless of placement.  Windows keep their batch
        intervals: every shard sees the same schedule clock, as the
        frontend offers each batch to all shards at the same index.
        """
        local_index = {engine: i for i, engine in enumerate(engines)}
        windows = []
        for window in self.windows:
            fault = window.fault
            if isinstance(fault, BramWriteStorm):
                windows.append(window)
                continue
            local = local_index.get(fault.engine)
            if local is None:
                continue
            windows.append(replace(window, fault=replace(fault, engine=local)))
        return FaultPlan(windows=tuple(windows))

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        n_batches: int,
        n_engines: int,
        n_faults: int = 3,
        min_duration: int = 1,
        max_duration: int | None = None,
        offline_probability: float = 0.25,
    ) -> "FaultPlan":
        """Derive a randomized chaos schedule deterministically from a seed.

        Draws ``n_faults`` windows over ``[0, n_batches)``: fault
        species, target engine, stall depth, storm intensity and
        window placement all come from one
        :class:`numpy.random.default_rng` stream, so equal arguments
        always yield equal plans.

        Parameters
        ----------
        seed:
            RNG seed; the only source of randomness.
        n_batches:
            Schedule horizon in batches; windows are clipped to it.
        n_engines:
            Engines of the service the plan targets (stalls and
            transient failures pick a target uniformly from these).
        n_faults:
            Number of windows to draw.
        min_duration, max_duration:
            Window length bounds in batches (``max_duration`` defaults
            to half the horizon, at least ``min_duration``).
        offline_probability:
            Chance a drawn stall is a full outage
            (``frequency_scale = 0``) rather than a partial slowdown.
        """
        if n_batches < 1:
            raise ConfigurationError(f"n_batches must be >= 1, got {n_batches}")
        if n_engines < 1:
            raise ConfigurationError(f"n_engines must be >= 1, got {n_engines}")
        if n_faults < 0:
            raise ConfigurationError(f"n_faults must be >= 0, got {n_faults}")
        if min_duration < 1:
            raise ConfigurationError(f"min_duration must be >= 1, got {min_duration}")
        if max_duration is None:
            max_duration = max(min_duration, n_batches // 2)
        if max_duration < min_duration:
            raise ConfigurationError(
                f"max_duration {max_duration} < min_duration {min_duration}"
            )
        if not 0.0 <= offline_probability <= 1.0:
            raise ConfigurationError("offline_probability must be in [0, 1]")
        rng = np.random.default_rng(seed)
        windows = []
        for _ in range(n_faults):
            duration = int(rng.integers(min_duration, max_duration + 1))
            start = int(rng.integers(0, max(1, n_batches - duration + 1)))
            species = rng.random()
            fault: Fault
            if species < 0.5:
                engine = int(rng.integers(0, n_engines))
                if rng.random() < offline_probability:
                    fault = EngineStall(engine=engine, frequency_scale=0.0)
                else:
                    fault = EngineStall(
                        engine=engine,
                        frequency_scale=float(rng.uniform(0.1, 0.9)),
                    )
            elif species < 0.8:
                fault = BramWriteStorm(
                    write_rate=float(rng.uniform(0.05, 0.5)),
                    slot_steal_fraction=float(rng.uniform(0.0, 0.5)),
                )
            else:
                engine = int(rng.integers(0, n_engines))
                fault = TransientWalkFailure(
                    engine=engine, n_failures=int(rng.integers(1, 3))
                )
            windows.append(FaultWindow(start=start, duration=duration, fault=fault))
        return cls(windows=tuple(windows))
