"""Malformed-batch corpus: corrupt a well-formed batch on purpose.

The serving layer must *strict-reject* malformed input with typed
:class:`~repro.errors.MalformedBatchError`\\ s instead of letting
``np.asarray`` silently coerce it (a NaN address cast to ``uint32``
becomes a perfectly ordinary-looking lookup of address 0).  This
module generates the corruption corpus the tests and the chaos CLI
drive against that validation: each kind maps to the rejection
``kind`` the validator must answer with.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["MALFORMED_KINDS", "corrupt_batch"]

#: corruption kinds, keyed by the MalformedBatchError.kind they must
#: provoke: value = the expected rejection kind
MALFORMED_KINDS: dict[str, str] = {
    "float_addresses": "dtype",
    "nan_addresses": "non_finite",
    "wrong_ndim": "shape",
    "truncated": "truncated",
    "vnid_below_range": "vnid_range",
    "vnid_above_range": "vnid_range",
    "address_overflow": "address_range",
    # empty batches must hit the same dtype wall as full ones — the
    # validator once guarded every dtype check behind ``if size:``,
    # so a zero-length float64 batch (numpy's default for ``[]``)
    # sailed through "strict, never coerce" validation
    "empty_float_addresses": "dtype",
    "empty_object_vnids": "dtype",
}


def corrupt_batch(
    addresses: np.ndarray,
    vnids: np.ndarray,
    kind: str,
    rng: np.random.Generator,
    *,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Return a corrupted copy of ``(addresses, vnids)``.

    Parameters
    ----------
    addresses, vnids:
        A well-formed batch (1-D, equal length, at least one pair).
    kind:
        One of :data:`MALFORMED_KINDS`.
    rng:
        Randomness source for picking corruption positions.
    k:
        Virtual networks of the target service (bounds for the
        out-of-range vnid corruptions).
    """
    if kind not in MALFORMED_KINDS:
        raise ConfigurationError(
            f"unknown corruption kind {kind!r}; expected one of "
            f"{sorted(MALFORMED_KINDS)}"
        )
    if len(addresses) == 0:
        raise ConfigurationError("need at least one pair to corrupt")
    addresses = np.array(addresses, copy=True)
    vnids = np.array(vnids, copy=True)
    position = int(rng.integers(0, len(addresses)))
    if kind == "float_addresses":
        return addresses.astype(np.float64), vnids
    if kind == "nan_addresses":
        floats = addresses.astype(np.float64)
        floats[position] = np.nan
        return floats, vnids
    if kind == "wrong_ndim":
        return addresses.reshape(1, -1), vnids
    if kind == "truncated":
        # mid-batch truncation: the address stream lost its tail
        return addresses[: len(addresses) // 2], vnids
    if kind == "vnid_below_range":
        vnids[position] = -1
        return addresses, vnids
    if kind == "vnid_above_range":
        vnids[position] = k
        return addresses, vnids
    if kind == "empty_float_addresses":
        # what ``np.array([])`` hands a caller: zero pairs, float64
        return np.array([], dtype=np.float64), np.array([], dtype=np.int64)
    if kind == "empty_object_vnids":
        return np.array([], dtype=np.uint32), np.array([], dtype=object)
    # address_overflow: a value no uint32 address can hold
    wide = addresses.astype(np.int64)
    wide[position] = np.int64(2**32 + 7)
    return wide, vnids
