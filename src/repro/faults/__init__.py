"""Fault injection and graceful degradation for the serving layer.

The paper's transparency requirement (Section I) — virtualization must
preserve "the throughput and latency requirements guaranteed
originally" — is only meaningful if it survives contact with
non-nominal operating points.  This package supplies the perturbations
and the policy for surviving them:

* :mod:`repro.faults.injectors` — composable fault value objects:
  :class:`EngineStall`, :class:`BramWriteStorm`,
  :class:`TransientWalkFailure`, plus the per-batch
  :class:`ActiveFaults` composition.
* :mod:`repro.faults.plan` — :class:`FaultPlan`: a deterministic
  schedule of fault windows over batch indices, either hand-built or
  derived from a seed (:meth:`FaultPlan.generate`).
* :mod:`repro.faults.policy` — :class:`DegradationPolicy`: per-VN
  admission shedding bounds, walk-retry budget and backoff.
* :mod:`repro.faults.malformed` — the malformed-batch corruption
  corpus driven against the serving layer's strict validation.

:class:`repro.serve.LookupService` accepts a ``fault_plan`` and a
``policy``; under active faults it sheds excess per-VN load (counted
in ``repro_serve_shed_lookups_total``), retries transient walk
failures, and reports the degraded M/D/1 latency and power-model
activity in its :class:`~repro.serve.service.ServeTrace` — the closed
loop validated by the chaos suite.  See ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from repro.faults.injectors import (
    FAULT_KINDS,
    ActiveFaults,
    BramWriteStorm,
    EngineStall,
    Fault,
    TransientWalkFailure,
)
from repro.faults.malformed import MALFORMED_KINDS, corrupt_batch
from repro.faults.plan import FaultPlan, FaultWindow
from repro.faults.policy import SHED_RESULT, DegradationPolicy

__all__ = [
    "FAULT_KINDS",
    "ActiveFaults",
    "BramWriteStorm",
    "EngineStall",
    "Fault",
    "TransientWalkFailure",
    "MALFORMED_KINDS",
    "corrupt_batch",
    "FaultPlan",
    "FaultWindow",
    "SHED_RESULT",
    "DegradationPolicy",
]
