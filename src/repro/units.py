"""Unit conventions and conversion helpers.

The paper mixes units freely (µW for component models, W for totals,
MHz for frequency, Mb for memory, Gbps for throughput).  To keep the
library honest every public quantity states its unit in the name or
docstring, and conversions go through this module rather than ad-hoc
factors scattered through the code.

Internal conventions
--------------------
* power        — watts (W) unless the name says otherwise
* frequency    — megahertz (MHz); the paper's component models are
                 linear in MHz so we keep MHz as the native unit
* memory       — bits
* throughput   — gigabits per second (Gbps)
* packet size  — bytes
"""

from __future__ import annotations

__all__ = [
    "BITS_PER_BYTE",
    "KB",
    "MB",
    "KIB",
    "MIB",
    "BRAM18K_BITS",
    "BRAM36K_BITS",
    "MIN_PACKET_BYTES",
    "uw_to_w",
    "w_to_uw",
    "mw_to_w",
    "w_to_mw",
    "uw_to_mw",
    "mw_to_uw",
    "bits_to_mb",
    "mb_to_bits",
    "mhz_to_hz",
    "hz_to_mhz",
    "s_to_ns",
    "ns_to_s",
    "s_to_ms",
    "ms_to_s",
    "j_to_nj",
    "nj_to_j",
    "pj_to_j",
    "j_to_pj",
    "gbps",
    "ceil_div",
]

BITS_PER_BYTE = 8

#: decimal kilo/mega bits (the paper reports BRAM sizes in Kb/Mb using
#: binary 1024-multiples — "18 Kb" blocks are 18×1024 bits)
KB = 1000
MB = 1000 * 1000
KIB = 1024
MIB = 1024 * 1024

#: Xilinx BRAM block capacities (binary kilobits, per UG363)
BRAM18K_BITS = 18 * KIB
BRAM36K_BITS = 36 * KIB

#: minimum Ethernet/IP packet size used by the paper for the packet
#: handling rate metric (Section VI-B)
MIN_PACKET_BYTES = 40


def uw_to_w(microwatts: float) -> float:
    """Convert microwatts to watts."""
    return microwatts * 1e-6


def w_to_uw(watts: float) -> float:
    """Convert watts to microwatts."""
    return watts * 1e6


def mw_to_w(milliwatts: float) -> float:
    """Convert milliwatts to watts."""
    return milliwatts * 1e-3


def w_to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1e3


def uw_to_mw(microwatts: float) -> float:
    """Convert microwatts to milliwatts (the Fig. 2/3 display unit)."""
    return microwatts * 1e-3


def mw_to_uw(milliwatts: float) -> float:
    """Convert milliwatts to microwatts."""
    return milliwatts * 1e3


def bits_to_mb(bits: float) -> float:
    """Convert bits to megabits (binary Mb, matching BRAM datasheets)."""
    return bits / MIB


def mb_to_bits(mb: float) -> float:
    """Convert binary megabits to bits."""
    return mb * MIB


def mhz_to_hz(mhz: float) -> float:
    """Convert MHz to Hz."""
    return mhz * 1e6


def hz_to_mhz(hz: float) -> float:
    """Convert Hz to MHz."""
    return hz * 1e-6


def s_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds (lookup-latency display unit)."""
    return seconds * 1e9


def ns_to_s(nanoseconds: float) -> float:
    """Convert nanoseconds to seconds."""
    return nanoseconds * 1e-9


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds (reconfiguration-time unit)."""
    return seconds * 1e3


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * 1e-3


def j_to_nj(joules: float) -> float:
    """Convert joules to nanojoules (per-packet energy unit)."""
    return joules * 1e9


def nj_to_j(nanojoules: float) -> float:
    """Convert nanojoules to joules."""
    return nanojoules * 1e-9


def pj_to_j(picojoules: float) -> float:
    """Convert picojoules to joules (TCAM per-search energy unit)."""
    return picojoules * 1e-12


def j_to_pj(joules: float) -> float:
    """Convert joules to picojoules."""
    return joules * 1e12


def gbps(frequency_mhz: float, packet_bytes: int = MIN_PACKET_BYTES) -> float:
    """Line rate in Gbps for one packet per cycle at ``frequency_mhz``.

    The paper's throughput metric assumes a linear pipeline accepting
    one lookup per clock and minimum-size (40 B) packets, so the
    packet handling rate is ``f`` packets/s and the bit rate is
    ``f × packet_bytes × 8``.
    """
    if frequency_mhz < 0:
        raise ValueError(f"frequency must be non-negative, got {frequency_mhz}")
    if packet_bytes <= 0:
        raise ValueError(f"packet size must be positive, got {packet_bytes}")
    return frequency_mhz * 1e6 * packet_bytes * BITS_PER_BYTE / 1e9


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division (``⌈n/d⌉``), used for BRAM block counts."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)
