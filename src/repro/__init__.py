"""repro — reproduction of "FPGA-based Router Virtualization: A Power
Perspective" (Ganegedara & Prasanna, IEEE IPDPSW 2012).

The library models Layer-3 lookup power on FPGA under three router
deployment schemes — non-virtualized (NV), virtualized-separate (VS)
and virtualized-merged (VM) — and reproduces every table and figure of
the paper's evaluation.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart
----------
>>> from repro import ScenarioConfig, ScenarioEstimator, Scheme, SpeedGrade
>>> result = ScenarioEstimator().evaluate(
...     ScenarioConfig(scheme=Scheme.VS, k=8, grade=SpeedGrade.G2))
>>> round(result.model.total_w, 1) > 0
True
"""

from repro.core.config import ScenarioConfig
from repro.core.estimator import ExperimentalPower, ScenarioEstimator, ScenarioResult
from repro.core.metrics import energy_per_packet_nj, mw_per_gbps, throughput_gbps
from repro.core.power import AnalyticalPowerModel, PowerBreakdown
from repro.core.resources import SchemeResources, merged_multiplier, scheme_resources
from repro.core.validation import ErrorSummary, percentage_error, summarize_errors
from repro.errors import (
    CalibrationError,
    CapacityError,
    ConfigurationError,
    ExperimentError,
    MergeError,
    PlacementError,
    PrefixError,
    ReproError,
    ResourceExhaustedError,
    TimingError,
    TrieError,
)
from repro.fpga.catalog import DEVICE_CATALOG, XC6VLX760, get_device
from repro.fpga.device import DeviceSpec, ResourceUsage
from repro.fpga.speedgrade import SpeedGrade, grade_data
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.prefix import Prefix, parse_prefix
from repro.iplookup.rib import Route, RoutingTable
from repro.iplookup.synth import (
    SyntheticTableConfig,
    generate_table,
    generate_virtual_tables,
    paper_reference_table,
)
from repro.iplookup.trie import TrieStats, UnibitTrie
from repro.virt.merged import MergedTrie, merge_tries
from repro.virt.schemes import Scheme
from repro.virt.separate import SeparateVirtualRouter
from repro.virt.traffic import TrafficModel, uniform_utilization, zipf_utilization

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ScenarioConfig",
    "ScenarioEstimator",
    "ScenarioResult",
    "ExperimentalPower",
    "AnalyticalPowerModel",
    "PowerBreakdown",
    "SchemeResources",
    "scheme_resources",
    "merged_multiplier",
    "throughput_gbps",
    "mw_per_gbps",
    "energy_per_packet_nj",
    "percentage_error",
    "ErrorSummary",
    "summarize_errors",
    # fpga
    "DeviceSpec",
    "ResourceUsage",
    "DEVICE_CATALOG",
    "XC6VLX760",
    "get_device",
    "SpeedGrade",
    "grade_data",
    # iplookup
    "Prefix",
    "parse_prefix",
    "Route",
    "RoutingTable",
    "UnibitTrie",
    "TrieStats",
    "leaf_push",
    "SyntheticTableConfig",
    "generate_table",
    "generate_virtual_tables",
    "paper_reference_table",
    # virt
    "Scheme",
    "MergedTrie",
    "merge_tries",
    "SeparateVirtualRouter",
    "TrafficModel",
    "uniform_utilization",
    "zipf_utilization",
    # errors
    "ReproError",
    "ConfigurationError",
    "ResourceExhaustedError",
    "CapacityError",
    "PrefixError",
    "TrieError",
    "MergeError",
    "PlacementError",
    "TimingError",
    "CalibrationError",
    "ExperimentError",
]
