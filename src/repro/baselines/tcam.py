"""TCAM lookup-power baseline (paper related work [20], [10]).

A ternary CAM compares the search key against every stored entry in
parallel: every lookup charges the match lines of (nearly) the whole
array, which is why TCAM power scales with *table size* while the
trie pipeline's scales with *blocks touched per lookup*.  The model
here is the standard energy-per-search formulation used by the papers
the authors cite:

    P = n_entries × E_cell × f × activation + P_static(n_entries)

with an *activation fraction* knob modeling the blocked/partitioned
TCAMs of [20] (only a subset of banks triggered per lookup) and the
set-associative IPStash-style designs [10] (the paper quotes a 35 %
saving over conventional TCAM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import mhz_to_hz, pj_to_j, uw_to_w

__all__ = ["TcamConfig", "TcamModel"]

#: energy per cell per search, picojoules — 18 nm-era TCAM literature
#: values land at a few fJ/bit/search; 144-bit-wide IPv4 entries at
#: ~3 fJ/bit give ~0.4 pJ per entry per search.
_DEFAULT_CELL_ENERGY_PJ = 0.45

#: static power per entry, µW (match-line precharge keepers, etc.)
_DEFAULT_STATIC_UW_PER_ENTRY = 1.1


@dataclass(frozen=True, slots=True)
class TcamConfig:
    """TCAM array configuration.

    Attributes
    ----------
    n_entries:
        Prefix capacity of the array.
    activation_fraction:
        Fraction of the array charged per search.  1.0 = conventional
        monolithic TCAM; [20]-style blocked designs activate one bank
        (e.g. 1/8); IPStash-style set-associative designs reach ~0.65
        of conventional power (the paper quotes 35 % savings).
    entry_energy_pj:
        Energy per entry per (activated) search, picojoules.
    static_uw_per_entry:
        Always-on power per entry, microwatts.
    """

    n_entries: int
    activation_fraction: float = 1.0
    entry_energy_pj: float = _DEFAULT_CELL_ENERGY_PJ
    static_uw_per_entry: float = _DEFAULT_STATIC_UW_PER_ENTRY

    def __post_init__(self) -> None:
        if self.n_entries <= 0:
            raise ConfigurationError("n_entries must be positive")
        if not 0.0 < self.activation_fraction <= 1.0:
            raise ConfigurationError("activation_fraction must be in (0, 1]")
        if self.entry_energy_pj <= 0 or self.static_uw_per_entry < 0:
            raise ConfigurationError("energy/static parameters must be positive")


class TcamModel:
    """Power/throughput model of a TCAM lookup engine."""

    def __init__(self, config: TcamConfig):
        self.config = config

    def dynamic_power_w(self, search_rate_mhz: float) -> float:
        """Search (match-line) power at ``search_rate_mhz`` lookups/µs."""
        if search_rate_mhz < 0:
            raise ConfigurationError("search rate must be non-negative")
        cfg = self.config
        joules_per_search = pj_to_j(
            cfg.n_entries * cfg.activation_fraction * cfg.entry_energy_pj
        )
        return joules_per_search * mhz_to_hz(search_rate_mhz)

    def static_power_w(self) -> float:
        """Always-on array power."""
        cfg = self.config
        return uw_to_w(cfg.n_entries * cfg.static_uw_per_entry)

    def total_power_w(self, search_rate_mhz: float) -> float:
        """Total engine power at the given search rate."""
        return self.static_power_w() + self.dynamic_power_w(search_rate_mhz)

    def mw_per_gbps(self, search_rate_mhz: float, packet_bytes: int = 40) -> float:
        """The paper's efficiency metric for this baseline."""
        from repro.core.metrics import mw_per_gbps, throughput_gbps

        capacity = throughput_gbps(search_rate_mhz, 1, packet_bytes)
        return mw_per_gbps(self.total_power_w(search_rate_mhz), capacity)

    @classmethod
    def conventional(cls, n_entries: int) -> "TcamModel":
        """Monolithic TCAM: full-array activation."""
        return cls(TcamConfig(n_entries=n_entries, activation_fraction=1.0))

    @classmethod
    def blocked(cls, n_entries: int, n_banks: int = 8) -> "TcamModel":
        """[20]-style load-balanced multi-bank TCAM."""
        if n_banks < 1:
            raise ConfigurationError("n_banks must be >= 1")
        return cls(TcamConfig(n_entries=n_entries, activation_fraction=1.0 / n_banks))

    @classmethod
    def ipstash(cls, n_entries: int) -> "TcamModel":
        """IPStash-equivalent: ~35 % below conventional ([10])."""
        return cls(TcamConfig(n_entries=n_entries, activation_fraction=0.65))
