"""Comparison baselines from the paper's related work.

The paper positions trie-based FPGA lookup against TCAM solutions
([20] Zheng et al., [10] IPStash), which are "known to be power hungry
due to massively parallel search".  :mod:`repro.baselines.tcam` models
a TCAM lookup engine's power so the analysis benches can quantify that
comparison on the same routing tables.
"""

from repro.baselines.tcam import TcamConfig, TcamModel

__all__ = ["TcamConfig", "TcamModel"]
