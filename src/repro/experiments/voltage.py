"""Voltage analysis: what single knob explains the -1L grade?

Applies CMOS scaling laws (see :mod:`repro.fpga.dvs`) to the -2
baseline over a core-voltage sweep and compares against the published
-1L constants.  Finding: the -1L *power* constants are consistent
with ~0.87 V operation (each within a few percent), while the
published frequency drop (30 %) exceeds what voltage alone predicts —
the -1L parts are also slower-binned silicon.  This separates the
paper's "supply current" explanation into its physical components.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fpga.dvs import (
    dynamic_scale,
    fit_voltage,
    frequency_scale,
    static_scale,
)
from repro.fpga.speedgrade import SpeedGrade, grade_data
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult

__all__ = ["run"]


@register("voltage", tags=("extras",))
def run(voltages: Sequence[float] = tuple(np.linspace(0.75, 1.0, 11))) -> ExperimentResult:
    """Scaling-law sweep vs the published grade constants."""
    voltages = tuple(float(v) for v in voltages)
    base = grade_data(SpeedGrade.G2)
    low = grade_data(SpeedGrade.G1L)
    result = ExperimentResult(
        experiment_id="voltage",
        title="Voltage scaling vs the published -1L grade (ratios to -2)",
        x_label="Vccint",
        x_values=np.asarray(voltages, dtype=float),
    )
    result.add_series("dynamic_ratio", [dynamic_scale(v) for v in voltages])
    result.add_series("static_ratio", [static_scale(v) for v in voltages])
    result.add_series("fmax_ratio", [frequency_scale(v) for v in voltages])
    result.add_series(
        "published_static_ratio",
        [low.static_power_w / base.static_power_w] * len(voltages),
    )
    result.add_series(
        "published_dynamic_ratio",
        [low.logic_stage_uw_per_mhz / base.logic_stage_uw_per_mhz] * len(voltages),
    )
    best_v, err = fit_voltage()
    result.add_note(
        f"best-fit voltage for the -1L constants: {best_v:.3f} V "
        f"(rms relative error {err:.3f})"
    )
    result.add_note(
        "power constants match ~0.87 V scaling within a few percent; the "
        "extra frequency loss (published 0.70x vs predicted "
        f"{frequency_scale(best_v):.2f}x) is timing-grade binning, not voltage"
    )
    return result
