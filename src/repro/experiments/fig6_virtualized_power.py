"""Fig. 6 — total power of the virtualized schemes only.

Paper caption: "Comparison of total power consumption in different
virtualized schemes for speed grades -2 (left) and -1L (right)";
series VS, VM(α=80 %), VM(α=20 %).

Expected shape (paper Section VI-A): VS's *experimental* power
decreases slightly with K — "the experimental value decreases due to
various hardware optimizations applied when implementing multiple
parallel architectures" — while the model (Eq. 4) predicts a constant;
the merged series grow with K as merged memory accumulates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.experiments.common import PAPER_KS, sweep_grid
from repro.fpga.speedgrade import SpeedGrade
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult

__all__ = ["run"]


@register(
    "fig6",
    axes={"grade": (SpeedGrade.G2, SpeedGrade.G1L)},
    tags=("paper", "figures", "graded"),
)
def run(
    grade: SpeedGrade = SpeedGrade.G2, ks: Sequence[int] = PAPER_KS
) -> ExperimentResult:
    """Regenerate one Fig. 6 panel (experimental total power, W)."""
    ks = tuple(ks)
    grid = sweep_grid(grade, ks, include_nv=False)
    result = ExperimentResult(
        experiment_id="fig6",
        title=f"Total power, virtualized schemes, grade {grade} (W)",
        x_label="K",
        x_values=np.asarray(ks, dtype=float),
    )
    for label, results in grid.items():
        result.add_series(label, [r.experimental.total_w for r in results])
    vs = result.get("VS")
    result.add_note(
        f"VS experimental decreases with K (hardware optimizations): "
        f"{vs[0]:.3f} W at K=1 -> {vs[-1]:.3f} W at K={ks[-1]}"
    )
    result.add_note("model Eq. 4 predicts constant VS power; the gap is the Fig. 7 error")
    return result
