"""Closed-loop DVS governor: energy per lookup against the static grades.

The voltage experiment (:mod:`repro.experiments.voltage`) asks what a
*static* derate buys; this one closes the loop.  A
:class:`~repro.power.DvsGovernor` drives a live
:class:`~repro.serve.LookupService` through a deterministic offered-load
ramp with an injected engine stall in the middle, re-picking the
operating voltage from the *measured* duty cycle and queue wait each
batch.  Per batch we record the realized energy per served lookup and
the energy the two static policies — the -2 baseline (V = 1.0) and the
fitted -1L derate (:func:`repro.fpga.dvs.fit_voltage`) — would burn
serving the *same* admitted work, via the exact factoring of the DVS
scaling laws.

A static grade only *meets* a load point when the demand fits inside
the governor's own headroom target at that grade's clock; beyond that
it would shed traffic, so it is marked infeasible there rather than
credited with an energy number for work it did not serve.  The
acceptance claim is that the governed trajectory never burns more per
lookup than the best *feasible* static grade at any load point — and
that inside the fault window the governor demonstrably trades
throughput for watts (served rate falls with the shed, voltage and
power follow it down).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import energy_per_packet_nj
from repro.faults.injectors import EngineStall
from repro.faults.plan import FaultPlan, FaultWindow
from repro.fpga.dvs import (
    NOMINAL_VOLTAGE,
    OperatingPoint,
    fit_voltage,
    frequency_scale,
)
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.power import PowerTelemetrySampler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.power.governor import DvsGovernor, GovernorPolicy
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.serve.service import LookupService
from repro.virt.schemes import Scheme

__all__ = ["BatchRecord", "ramp_run", "run"]

#: offered-load ramp: up through the band, down again (fractions of
#: nominal capacity); each step serves ``batches_per_step`` batches
DEFAULT_RAMP = (0.3, 0.45, 0.6, 0.75, 0.6, 0.4)

#: the stall covers the step after the peak: engine 1 at quarter speed
_STALL_ENGINE = 1
_STALL_SCALE = 0.25


@dataclass(frozen=True)
class BatchRecord:
    """One governed batch of the ramp, with its static counterfactuals.

    ``static_nominal_nj`` / ``static_derate_nj`` are energy per served
    lookup had the same admitted work been served at the fixed -2 /
    fitted -1L operating point; a static grade whose headroom-adjusted
    capacity cannot carry the batch's demand is infeasible there and
    carries ``None`` instead.
    """

    batch_index: int
    offered_load: float
    voltage: float
    frequency_mhz: float
    duty_cycle: float
    served_fraction: float
    total_w: float
    governed_nj: float
    static_nominal_nj: float | None
    static_derate_nj: float | None
    in_fault_window: bool


def _static_energy_nj(
    sampler: PowerTelemetrySampler,
    point: OperatingPoint,
    static_point: OperatingPoint,
    rate_mhz: float,
    demand_fraction: float,
    headroom: float,
    n_engines: int,
) -> float | None:
    """Energy/lookup of a static policy serving the same admitted work.

    The sampler's scaling laws factor exactly (static x V³, dynamic x
    V²·fmax with the fmax factor cancelling for fixed absolute work),
    so the static point's power is recoverable from the live sample.
    Returns ``None`` when the demand does not fit the static grade's
    headroom-adjusted capacity — it would shed, so it does not meet
    this load point.
    """
    if demand_fraction > headroom * frequency_scale(static_point.voltage):
        return None
    sample = sampler.last_sample
    if sample is None or rate_mhz <= 0.0:
        return None
    dynamic_w = sample.total_w - sample.static_w
    static_w = (
        sample.static_w / point.static_scale * static_point.static_scale
    )
    dynamic_w = (
        dynamic_w / point.dynamic_scale * static_point.dynamic_scale
    )
    return energy_per_packet_nj(static_w + dynamic_w, rate_mhz, n_engines)


def ramp_run(
    k: int = 4,
    ramp: Sequence[float] = DEFAULT_RAMP,
    batches_per_step: int = 3,
    batch_size: int = 600,
    n_prefixes: int = 150,
    seed: int = 23,
    policy: GovernorPolicy | None = None,
    warmup_batches: int = 6,
) -> tuple[list[BatchRecord], LookupService, DvsGovernor]:
    """Serve the governed load ramp and record every batch.

    Deterministic: tables, batches and the fault schedule all derive
    from ``seed``; the stall covers the step after the peak.  The
    ``warmup_batches`` unrecorded batches at the first load let the
    slew-limited descent from the nominal cold-start voltage finish
    before scoring begins.  Returns the per-batch records plus the
    service and governor for callers that want the registry or the
    decision log.
    """
    ramp = tuple(ramp)
    policy = policy or GovernorPolicy()
    # the stall covers the step right after the peak: the clean peak
    # exercises the raise path, the stalled descent the shed path
    peak = max(range(len(ramp)), key=lambda i: ramp[i])
    fault_step = min(peak + 1, len(ramp) - 1)
    fault_lo = warmup_batches + fault_step * batches_per_step
    fault_hi = fault_lo + batches_per_step
    plan = FaultPlan(
        (
            FaultWindow(
                fault_lo,
                batches_per_step,
                EngineStall(_STALL_ENGINE, _STALL_SCALE),
            ),
        )
    )
    tables = generate_virtual_tables(
        k, 0.5, SyntheticTableConfig(n_prefixes=n_prefixes, seed=seed)
    )
    sampler = PowerTelemetrySampler(Scheme.VS, k)
    service = LookupService(
        tables,
        Scheme.VS,
        offered_load_fraction=ramp[0],
        fault_plan=plan,
        power_sampler=sampler,
        registry=MetricsRegistry(enabled=True),
        tracer=Tracer(enabled=False),
    )
    governor = DvsGovernor(policy=policy)
    governor.attach(service)
    derate_point = OperatingPoint(fit_voltage()[0])
    nominal_point = OperatingPoint(NOMINAL_VOLTAGE)
    rng = np.random.default_rng(seed)
    records: list[BatchRecord] = []
    per_vn = max(1, batch_size // k)
    for _ in range(warmup_batches):
        addresses = rng.integers(0, 2**32, size=per_vn * k, dtype=np.uint32)
        vnids = np.repeat(np.arange(k, dtype=np.int64), per_vn)
        service.serve(addresses, vnids)
    for load in ramp:
        service.set_offered_load(load)
        for _ in range(batches_per_step):
            addresses = rng.integers(0, 2**32, size=per_vn * k, dtype=np.uint32)
            vnids = np.repeat(np.arange(k, dtype=np.int64), per_vn)
            batch_index = service.batches_served
            _, trace = service.serve(addresses, vnids)
            point = service.operating_point
            served = (
                trace.n_admitted / trace.n_packets if trace.n_packets else 0.0
            )
            # served rate in "MHz of lookups" per engine: invariant
            # under the governor's re-clocking (f·fs x rho/fs = f·rho)
            rate_mhz = service.frequency_mhz * service.offered_load_fraction * served
            demand = load * served
            governed = governor.realized_energy_nj(service, trace)
            records.append(
                BatchRecord(
                    batch_index=batch_index,
                    offered_load=load,
                    voltage=point.voltage,
                    frequency_mhz=service.frequency_mhz,
                    duty_cycle=trace.mean_duty_cycle(),
                    served_fraction=served,
                    total_w=sampler.last_sample.total_w
                    if sampler.last_sample
                    else 0.0,
                    governed_nj=governed if governed is not None else 0.0,
                    static_nominal_nj=_static_energy_nj(
                        sampler, point, nominal_point, rate_mhz, demand,
                        policy.headroom, service.n_engines,
                    ),
                    static_derate_nj=_static_energy_nj(
                        sampler, point, derate_point, rate_mhz, demand,
                        policy.headroom, service.n_engines,
                    ),
                    in_fault_window=fault_lo <= batch_index < fault_hi,
                )
            )
    return records, service, governor


@register("governor", tags=("governor",))
def run(
    k: int = 4,
    ramp: Sequence[float] = DEFAULT_RAMP,
    batches_per_step: int = 3,
    batch_size: int = 600,
    n_prefixes: int = 150,
    seed: int = 23,
) -> ExperimentResult:
    """Governed ramp: voltage trace and energy vs both static grades."""
    records, service, governor = ramp_run(
        k=k,
        ramp=ramp,
        batches_per_step=batches_per_step,
        batch_size=batch_size,
        n_prefixes=n_prefixes,
        seed=seed,
    )
    derate_v = fit_voltage()[0]
    result = ExperimentResult(
        experiment_id="governor",
        title=(
            f"Closed-loop DVS governor: K={k} VS load ramp with an "
            f"engine stall on the post-peak step"
        ),
        x_label="batch",
        x_values=np.array([float(r.batch_index) for r in records]),
    )
    result.add_series("offered_load", [r.offered_load for r in records])
    result.add_series("volts", [r.voltage for r in records])
    result.add_series("frequency_mhz", [r.frequency_mhz for r in records])
    result.add_series("served_fraction", [r.served_fraction for r in records])
    result.add_series("total_w", [r.total_w for r in records])
    result.add_series("governed_nj", [r.governed_nj for r in records])
    result.add_series(
        "static_nominal_nj",
        [r.static_nominal_nj if r.static_nominal_nj is not None else float("nan")
         for r in records],
    )
    result.add_series(
        "static_derate_nj",
        [r.static_derate_nj if r.static_derate_nj is not None else float("nan")
         for r in records],
    )
    # the acceptance claim, scored at each load point's steady state
    # (the last batch of each step — earlier batches may still be
    # slewing toward the step's target voltage)
    steady = records[batches_per_step - 1 :: batches_per_step]
    worst_margin = min(
        min(
            b
            for b in (r.static_nominal_nj, r.static_derate_nj)
            if b is not None
        )
        - r.governed_nj
        for r in steady
    )
    fault = [r for r in records if r.in_fault_window]
    pre_fault = [r for r in records if not r.in_fault_window and r.batch_index > 0]
    result.add_note(
        f"governor band {governor.policy.v_min:.2f}-"
        f"{governor.policy.v_max:.2f} V, headroom "
        f"{governor.policy.headroom:.2f}; static derate fitted at "
        f"{derate_v:.4f} V"
    )
    result.add_note(
        f"worst energy margin vs best feasible static grade: "
        f"{worst_margin:+.3f} nJ/lookup "
        f"({'governed never worse' if worst_margin >= 0 else 'VIOLATED'})"
    )
    if fault:
        result.add_note(
            f"fault window (engine {_STALL_ENGINE} at x{_STALL_SCALE} "
            f"speed) served {min(r.served_fraction for r in fault):.3f} of "
            f"offered load at {min(r.total_w for r in fault):.3f} W floor "
            f"vs {max(r.total_w for r in pre_fault):.3f} W peak outside — "
            f"throughput traded for watts"
        )
    actions = [d.action for d in governor.decisions]
    result.add_note(
        f"{len(governor.decisions)} decisions: "
        f"{actions.count('raise')} raise / {actions.count('lower')} lower / "
        f"{actions.count('hold')} hold"
    )
    del service
    return result
