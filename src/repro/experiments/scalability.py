"""Scalability walls (paper Sections IV-B/IV-C and VI-A discussion).

The paper bounds its sweep at K = 15 "since in the case of
virtualized-separate, the I/O pin requirement exceeded" and notes the
merged scheme is gated by memory and throughput instead.  This
experiment maps those walls: for each scheme it finds the largest K
that places on the XC6VLX760 across a range of table sizes, and labels
the gating resource.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator
from repro.errors import ReproError, ResourceExhaustedError, TimingError
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.virt.schemes import Scheme

__all__ = ["run", "max_k"]

#: generous search ceiling — walls are far below this
_K_CEILING = 64


def max_k(
    scheme: Scheme,
    table: SyntheticTableConfig,
    *,
    alpha: float | None = None,
    grade: SpeedGrade = SpeedGrade.G2,
) -> tuple[int, str]:
    """Largest K that implements, plus the resource that stops K+1."""
    estimator = ScenarioEstimator()
    last_ok = 0
    gate = "none (search ceiling)"
    for k in range(1, _K_CEILING + 1):
        try:
            estimator.evaluate(
                ScenarioConfig(scheme=scheme, k=k, alpha=alpha, grade=grade, table=table)
            )
            last_ok = k
        except ResourceExhaustedError as exc:
            gate = exc.resource
            break
        except TimingError:
            gate = "timing closure"
            break
        except ReproError as exc:
            gate = type(exc).__name__
            break
    return last_ok, gate


@register("scalability", tags=("extras",))
def run(sizes: Sequence[int] = (1000, 3725, 10000)) -> ExperimentResult:
    """Max supportable K per scheme vs table size on the XC6VLX760."""
    sizes = tuple(sizes)
    result = ExperimentResult(
        experiment_id="scalability",
        title="Scalability walls: max K per scheme vs table size (XC6VLX760)",
        x_label="prefixes",
        x_values=np.asarray(sizes, dtype=float),
    )
    variants = (
        ("VS", Scheme.VS, None),
        ("VM(a=80%)", Scheme.VM, 0.8),
        ("VM(a=20%)", Scheme.VM, 0.2),
    )
    gates: dict[str, list[str]] = {label: [] for label, _, _ in variants}
    for label, scheme, alpha in variants:
        ks = []
        for size in sizes:
            table = SyntheticTableConfig(n_prefixes=size, seed=99)
            k, gate = max_k(scheme, table, alpha=alpha)
            ks.append(k)
            gates[label].append(gate)
        result.add_series(f"max_K {label}", ks)
    for label, _, _ in variants:
        for size, gate in zip(sizes, gates[label]):
            result.add_note(f"{label} @ {size} prefixes: gated by {gate}")
    result.add_note(
        "paper: VS is pin-limited (K=15 on 1200 pins); merged is gated by "
        "BRAM/timing and degrades with table size and low alpha"
    )
    return result
