"""Table II — Virtex-6 XC6VLX760 device specs.

Renders the catalog entry in the paper's units and cross-checks each
row against the published values.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.catalog import XC6VLX760
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult

__all__ = ["run", "PAPER_TABLE2"]

#: the paper's Table II rows (resource → amount, in the paper's units)
PAPER_TABLE2 = {
    "logic_cells_K": 758,
    "max_distributed_ram_Mb": 8,
    "block_ram_Mb": 26,
    "max_io_pins": 1200,
}


@register("table2", tags=("paper", "tables"))
def run() -> ExperimentResult:
    """Regenerate Table II from the device catalog."""
    device = XC6VLX760
    measured = {
        # marketing-style units: Kb counts rounded at 1000 Kb/Mb, the
        # convention under which 25 920 Kb of BRAM is "26 Mb"
        "logic_cells_K": device.logic_cells // 1000,
        "max_distributed_ram_Mb": round(device.distributed_ram_kbits / 1000),
        "block_ram_Mb": round(device.bram_kbits / 1000),
        "max_io_pins": device.max_io_pins,
    }
    rows = list(PAPER_TABLE2)
    result = ExperimentResult(
        experiment_id="table2",
        title="Virtex-6 XC6VLX760 device specs (Table II)",
        x_label="row",
        x_values=np.arange(len(rows), dtype=float),
    )
    result.add_series("paper", [PAPER_TABLE2[r] for r in rows])
    result.add_series("catalog", [measured[r] for r in rows])
    for i, row in enumerate(rows):
        marker = "OK" if PAPER_TABLE2[row] == measured[row] else "MISMATCH"
        result.add_note(f"{row}: paper={PAPER_TABLE2[row]} catalog={measured[row]} [{marker}]")
    return result
