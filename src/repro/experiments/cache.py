"""Content-addressed on-disk cache for experiment results.

Every concrete run is keyed by a SHA-256 *spec hash* over the
experiment id, its expanded axis parameters and a model-version salt
(:data:`CACHE_SALT`).  Unchanged experiments are therefore served from
``out/.cache/`` instantly on re-run; bumping the salt (done whenever
the power models change behaviour) invalidates every entry at once.

Results are stored as JSON — :class:`ExperimentResult` round-trips
losslessly because Python's JSON encoder emits ``repr``-exact floats.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from collections.abc import Mapping
from typing import Any

import numpy as np

from repro import __version__
from repro.reporting.result import ExperimentResult

__all__ = [
    "CACHE_SALT",
    "DEFAULT_CACHE_DIR",
    "spec_hash",
    "canonical_params",
    "result_to_dict",
    "result_from_dict",
    "ResultCache",
]

#: cache-key salt: package version + a schema generation bumped on
#: model changes that alter results without changing the spec
CACHE_SALT = f"repro-{__version__}-engine-v1"

#: default on-disk location, relative to the working directory
DEFAULT_CACHE_DIR = os.path.join("out", ".cache")


def _canonical(value: Any) -> Any:
    """Reduce a parameter value to a JSON-stable representation."""
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # dataclass-like configs (SyntheticTableConfig, ...) hash by repr
    return repr(value)


def canonical_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """JSON-stable form of a run's expanded axis parameters."""
    return {name: _canonical(value) for name, value in sorted(params.items())}


def spec_hash(experiment_id: str, params: Mapping[str, Any], salt: str = CACHE_SALT) -> str:
    """Content hash identifying one concrete run of one experiment."""
    payload = json.dumps(
        {"id": experiment_id, "params": canonical_params(params), "salt": salt},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Serialize a result to a JSON-compatible dict."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "x_values": np.asarray(result.x_values, dtype=float).tolist(),
        "series": [
            {"label": s.label, "values": np.asarray(s.values, dtype=float).tolist()}
            for s in result.series
        ],
        "notes": list(result.notes),
    }


def result_from_dict(payload: Mapping[str, Any]) -> ExperimentResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    result = ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        x_label=payload["x_label"],
        x_values=np.asarray(payload["x_values"], dtype=float),
    )
    for series in payload["series"]:
        result.add_series(series["label"], series["values"])
    for note in payload["notes"]:
        result.add_note(note)
    return result


class ResultCache:
    """Content-addressed experiment-result store under ``root``.

    Entries live at ``<root>/<hash[:2]>/<hash>.json`` so directories
    stay small.  A disabled cache ignores both reads and writes, which
    is how ``--no-cache`` is implemented.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR, *, enabled: bool = True) -> None:
        self.root = root
        self.enabled = enabled

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> ExperimentResult | None:
        """Cached result for ``key``, or ``None`` on miss/disabled."""
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        try:
            return result_from_dict(payload)
        except (KeyError, TypeError):
            return None  # stale/corrupt entry: treat as a miss

    def put(self, key: str, result: ExperimentResult) -> None:
        """Store ``result`` under ``key`` (atomic rename)."""
        if not self.enabled:
            return
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(result_to_dict(result), handle)
        os.replace(tmp, path)
