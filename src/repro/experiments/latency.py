"""Latency transparency: per-packet latency vs offered load.

The paper requires virtualization to preserve "the throughput and
latency requirements guaranteed originally" (Section I).  Throughput
is Fig. 8's axis; this experiment supplies the latency side: mean
lookup latency (pipeline + M/D/1 queueing) per scheme as the offered
aggregate load grows.  The separate scheme spreads load over K
engines and stays near the bare pipeline latency; the merged engine's
single queue saturates first — the latency face of its Section IV-C
throughput-sharing limit.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator
from repro.errors import CapacityError
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.virt.queueing import scheme_latency_ns
from repro.virt.schemes import Scheme

__all__ = ["run"]


@register("latency", tags=("extras",))
def run(
    k: int = 8,
    load_fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9, 0.95),
    grade: SpeedGrade = SpeedGrade.G2,
    table: SyntheticTableConfig | None = None,
) -> ExperimentResult:
    """Mean lookup latency vs offered load (fraction of VM capacity)."""
    table = table or SyntheticTableConfig(n_prefixes=1000, seed=99)
    loads = tuple(load_fractions)
    estimator = ScenarioEstimator()
    vs = estimator.evaluate(ScenarioConfig(scheme=Scheme.VS, k=k, table=table, grade=grade))
    vm = estimator.evaluate(
        ScenarioConfig(scheme=Scheme.VM, k=k, alpha=0.8, table=table, grade=grade)
    )
    # express offered load as fractions of the *merged* engine's
    # capacity so both schemes see identical absolute traffic
    vm_capacity = vm.throughput_gbps
    result = ExperimentResult(
        experiment_id="latency",
        title=f"Mean lookup latency vs offered load, K={k}, grade {grade} (ns)",
        x_label="load_fraction_of_VM_capacity",
        x_values=np.asarray(loads, dtype=float),
    )
    series: dict[str, list[float]] = {
        "VS_total_ns": [],
        "VM_total_ns": [],
        "VS_queueing_ns": [],
        "VM_queueing_ns": [],
    }
    for fraction in loads:
        aggregate = fraction * vm_capacity
        vs_report = scheme_latency_ns(
            "VS", aggregate, vs.throughput_gbps / k, k, vs.frequency_mhz
        )
        try:
            vm_report = scheme_latency_ns(
                "VM", aggregate, vm_capacity, 1, vm.frequency_mhz
            )
            vm_total, vm_queue = vm_report.total_ns, vm_report.queueing_ns
        except CapacityError:
            vm_total = vm_queue = float("nan")
        series["VS_total_ns"].append(vs_report.total_ns)
        series["VM_total_ns"].append(vm_total)
        series["VS_queueing_ns"].append(vs_report.queueing_ns)
        series["VM_queueing_ns"].append(vm_queue)
    for label, values in series.items():
        result.add_series(label, values)
    result.add_note(
        f"pipeline floor: VS {series['VS_total_ns'][0] - series['VS_queueing_ns'][0]:.1f} ns, "
        f"VM {(series['VM_total_ns'][0] - series['VM_queueing_ns'][0]):.1f} ns"
    )
    result.add_note(
        "the merged engine's single queue drives latency up as load nears "
        "its capacity; separate engines stay near the pipeline floor"
    )
    return result
